//! Byte-offset source spans and human-readable positions for
//! diagnostics.

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The same span shifted `delta` bytes to the right (used when
    /// splicing included sources into a larger virtual buffer).
    pub fn offset(self, delta: usize) -> Span {
        Span {
            start: self.start + delta,
            end: self.end + delta,
        }
    }

    /// The smallest span covering both inputs.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extracts the spanned text.
    pub fn slice<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start.min(src.len())..self.end.min(src.len())]
    }
}

/// 1-based line and column of a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// Computes the line/column of `offset` in `src`.
pub fn line_col(src: &str, offset: usize) -> LineCol {
    let offset = offset.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in src.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// Renders a one-line source excerpt with a caret under the span.
pub fn excerpt(src: &str, span: Span) -> String {
    let lc = line_col(src, span.start);
    let line_start = src[..span.start.min(src.len())]
        .rfind('\n')
        .map_or(0, |i| i + 1);
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    let line = &src[line_start..line_end];
    let caret_pos = span.start.saturating_sub(line_start);
    let caret_len = (span.end - span.start).clamp(1, line.len().saturating_sub(caret_pos).max(1));
    format!(
        "{line}\n{}{} (line {}, col {})",
        " ".repeat(caret_pos),
        "^".repeat(caret_len),
        lc.line,
        lc.col
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let s = Span::new(3, 5).merge(Span::new(10, 12));
        assert_eq!(s, Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 2 });
        assert_eq!(line_col(src, 6), LineCol { line: 3, col: 1 });
    }

    #[test]
    fn excerpt_points_at_span() {
        let src = "x := 1;\ny := oops;\n";
        let pos = src.find("oops").unwrap();
        let e = excerpt(src, Span::new(pos, pos + 4));
        assert!(e.contains("y := oops;"));
        assert!(e.contains("^^^^"));
        assert!(e.contains("line 2"));
    }

    #[test]
    fn slice_extracts_text() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }
}
