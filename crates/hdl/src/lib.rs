//! # mems-hdl — an analog hardware description language
//!
//! A clean-room implementation of the HDL-A subset used in
//! Romanowicz et al., *Modeling and Simulation of Electromechanical
//! Transducers in Microsystems using an Analog Hardware Description
//! Language* (ED&TC 1997). The paper's Listing 1 compiles verbatim:
//!
//! ```
//! use mems_hdl::model::HdlModel;
//!
//! # fn main() -> Result<(), mems_hdl::HdlError> {
//! let listing1 = r#"
//! ENTITY eletran IS
//!  GENERIC (A, d, er : analog);
//!  PIN (a, b : electrical; c, d : mechanical1);
//! END ENTITY eletran;
//! ARCHITECTURE a OF eletran IS
//! VARIABLE e0, x : analog;
//! STATE V, S : analog;
//! BEGIN
//!   RELATION
//!     PROCEDURAL FOR init =>
//!       e0 := 8.8542e-12;
//!     PROCEDURAL FOR ac, transient =>
//!       V := [a, b].v;
//!       S := [c, d].tv;
//!       x := integ(S);
//!       [a, b].i %= e0*er*A/(d + x)*ddt(V);
//!       [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
//!   END RELATION;
//! END ARCHITECTURE a;
//! "#;
//! let model = HdlModel::compile(listing1, "eletran", None)?;
//! let inst = model.instantiate("x1", &[("a", 1.0e-4), ("d", 0.15e-3), ("er", 1.0)])?;
//! assert_eq!(inst.model().pins.len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! ## Architecture
//!
//! - [`lexer`] / [`parser`] / [`ast`] — front end with spanned errors;
//! - [`nature`] — Table 1 physical disciplines (across/through
//!   quantities per domain);
//! - [`sema`] / [`compile`] — name resolution into a slot-indexed
//!   [`compile::CompiledModel`];
//! - [`eval`] — dual-number interpreter: real gradients for DC and
//!   transient Newton iterations, complex gradients for exact AC
//!   small-signal linearization (`ddt → jω`, `integ → 1/(jω)`);
//! - [`bytecode`] — the same semantics compiled to a flat
//!   stack-machine tape executed over reusable register banks (the
//!   default evaluator: no per-node gradient allocation on the
//!   Newton hot path);
//! - [`model`] — elaboration (`init` blocks, generic binding, table
//!   folding) and the [`model::Instance`] API the simulator hosts;
//! - [`symbolic`] — expression differentiation for the energy
//!   methodology;
//! - [`print`] — canonical pretty-printing (model generation).
//!
//! ## Language notes
//!
//! Keywords are case-insensitive. Statements: `:=` assignment, `%=`
//! through-quantity contribution, `IF/ELSIF/ELSE`, `ASSERT … REPORT`,
//! `REPORT`. Operators `integ(expr [, ic])` and `ddt(expr)` carry
//! per-call-site history. `UNKNOWN` objects plus `EQUATION` blocks add
//! implicit algebraic equations (DAE support). A model without an
//! explicit `dc`/`ac` block reuses its `transient` block with the
//! appropriate operator semantics, matching common analog-HDL
//! practice.

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod model;
pub mod nature;
pub mod parser;
pub mod print;
pub mod sema;
pub mod span;
pub mod symbolic;
pub mod token;

pub use error::{HdlError, Result};
pub use model::{EvalMode, HdlModel, Instance};
pub use nature::{Nature, QuantityKind};
