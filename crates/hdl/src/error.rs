//! Error types for the HDL front end and runtime.

use crate::span::{excerpt, Span};
use std::fmt;

/// Errors produced while lexing, parsing, analyzing, elaborating or
/// evaluating HDL-A models.
#[derive(Debug, Clone, PartialEq)]
pub enum HdlError {
    /// Lexical error.
    Lex {
        /// What went wrong.
        message: String,
        /// Where.
        span: Span,
    },
    /// Syntax error.
    Parse {
        /// What went wrong.
        message: String,
        /// Where.
        span: Span,
    },
    /// Semantic error (unknown names, nature mismatches, …).
    Sema {
        /// What went wrong.
        message: String,
        /// Where.
        span: Span,
    },
    /// Elaboration error (missing generics, bad table data, …).
    Elab(String),
    /// Run-time evaluation error (non-finite value, failed assert, …).
    Eval(String),
}

impl HdlError {
    /// The source span, when the error has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            HdlError::Lex { span, .. }
            | HdlError::Parse { span, .. }
            | HdlError::Sema { span, .. } => Some(*span),
            _ => None,
        }
    }

    /// Formats the error with a source excerpt and caret.
    pub fn render(&self, src: &str) -> String {
        match self.span() {
            Some(span) => format!("{self}\n{}", excerpt(src, span)),
            None => self.to_string(),
        }
    }
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::Lex { message, .. } => write!(f, "lex error: {message}"),
            HdlError::Parse { message, .. } => write!(f, "parse error: {message}"),
            HdlError::Sema { message, .. } => write!(f, "semantic error: {message}"),
            HdlError::Elab(m) => write!(f, "elaboration error: {m}"),
            HdlError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for HdlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, HdlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_excerpt() {
        let e = HdlError::Parse {
            message: "expected `;`".into(),
            span: Span::new(5, 6),
        };
        let r = e.render("x := 1\ny := 2;");
        assert!(r.contains("parse error"));
        assert!(r.contains('^'));
    }

    #[test]
    fn non_spanned_errors_render_plainly() {
        let e = HdlError::Eval("division by zero".into());
        assert_eq!(e.render("src"), "evaluation error: division by zero");
        assert!(e.span().is_none());
    }
}
