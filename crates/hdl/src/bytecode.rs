//! Flat bytecode for compiled models: the behavioral hot path.
//!
//! The tree-walking evaluator in [`crate::eval`] re-walks the
//! [`CStmt`] list and allocates a fresh dense gradient per expression
//! node on every Newton iteration. This module compiles each analysis
//! program once into a linear stack-machine tape ([`Tape`]) and
//! executes it over a preallocated register bank ([`RegBank`]) whose
//! value/gradient buffers are reused across iterations, time steps,
//! and `.STEP`/`.MC` batch points.
//!
//! Equivalence with the tree walk is a hard contract (enforced by the
//! differential harness in `tests/bytecode_equivalence.rs`): the VM
//! reuses the same scalar kernels ([`crate::eval::plan_ddt`] /
//! [`plan_integ`] / [`chain_coeffs`] / [`pow_coeffs`] /
//! [`fold_binop`]), applies them through in-place [`AdScalar`]
//! operations that perform the identical floating-point operations in
//! the identical order, and reproduces the tree walk's runtime errors
//! (unassigned reads, non-finite contributions, failed assertions)
//! with the same messages.
//!
//! Constant subexpressions (literals only — generics bind per
//! instance and stay symbolic) are folded at compile time through
//! [`fold_binop`]/[`fold_builtin`], whose selection semantics are
//! aligned with the runtime evaluator so folding cannot diverge from
//! interpretation even on NaN operands.

use crate::ast::{BinOp, ObjectKind, UnOp};
use crate::compile::{fold_binop, fold_builtin, Builtin, CExpr, CStmt, CompiledModel};
use crate::error::{HdlError, Result};
use crate::eval::{
    chain_coeffs, plan_ddt, plan_integ, pow_coeffs, AdScalar, Analysis, DdtPlan, EvalEnv,
    InstanceState, IntegPlan,
};
use mems_numerics::pwl::Pwl1;

/// One stack-machine instruction.
///
/// Pushes grow the evaluation stack by one; operators consume their
/// operands in place (the result lands in the first operand's slot),
/// so no *operator* allocates a gradient buffer. The remaining
/// allocations sit at the [`EvalEnv`] boundary, whose contract is
/// by-value: `Across` receives an owned scalar from the environment,
/// and `Contribute`/`Residual` hand one over — a handful per pass
/// (one per branch reference/contribution), versus the tree walk's
/// one per expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push a literal (or compile-time-folded) constant.
    Const(f64),
    /// Push a generic parameter by slot.
    Generic(u32),
    /// Push an object register (runtime error when unassigned).
    /// `UNKNOWN` objects also flow through here: their registers are
    /// seeded from [`EvalEnv::unknown`] before execution.
    Object(u32),
    /// Push the across quantity of a branch.
    Across(u32),
    /// Push the analysis time (0 in DC/AC).
    Time,
    /// Negate the top of stack.
    Neg,
    /// Logical-not the top of stack (0/1 constant result).
    Not,
    /// Binary operator over the top two entries.
    Bin(BinOp),
    /// One-argument builtin.
    Call1(Builtin),
    /// Two-argument builtin.
    Call2(Builtin),
    /// Three-argument builtin (`limit`).
    Call3(Builtin),
    /// `ddt` call site over the top of stack.
    Ddt {
        /// History slot.
        site: u32,
    },
    /// `integ` call site over the top of stack.
    Integ {
        /// History slot.
        site: u32,
        /// Initial condition.
        ic: f64,
    },
    /// `table1d` lookup over the top of stack.
    Table {
        /// Table slot.
        site: u32,
    },
    /// Pop into an object register (marks it assigned).
    Store(u32),
    /// Pop a through contribution into a branch.
    Contribute(u32),
    /// Pop `rhs` then `lhs`; emit the residual `lhs − rhs`.
    Residual(u32),
    /// Pop a condition; error with the message when it is zero.
    Assert(u32),
    /// Emit a diagnostic message.
    Report(u32),
    /// Pop a condition; jump to the operand when it is zero.
    JumpIfZero(u32),
    /// Unconditional jump.
    Jump(u32),
}

/// A compiled analysis program: linear instruction list plus the
/// interned `ASSERT`/`REPORT` messages and the stack high-water mark.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tape {
    ops: Vec<Op>,
    messages: Vec<String>,
    max_stack: usize,
}

impl Tape {
    /// The instruction list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Deepest evaluation-stack use of any execution path.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }
}

/// The compiled tapes of one [`CompiledModel`]: the three analysis
/// programs plus (when expressible) the `init` program.
#[derive(Debug, Clone, PartialEq)]
pub struct BytecodeModel {
    /// DC program tape.
    pub dc: Tape,
    /// AC program tape.
    pub ac: Tape,
    /// Transient program tape.
    pub tran: Tape,
    /// `init` program tape, executed with plain-`f64` semantics by
    /// [`run_init_tape`] at every (re-)elaboration — the hot spot of
    /// `set_generics` re-instantiation in parametric batches. `None`
    /// when the program uses constructs the init VM cannot express
    /// (contributions, residuals, branch/time/history reads);
    /// [`crate::model`] then falls back to the tree interpreter,
    /// which reports those with its own diagnostics.
    pub init: Option<Tape>,
    /// `table1d` breakpoint fold tape: all breakpoint expressions of
    /// all tables compiled onto the plain-`f64` VM, run by
    /// [`run_table_fold`] at every (re-)elaboration — the other half
    /// of the per-point `set_generics` cost. `None` when there are no
    /// tables or a breakpoint reaches for run-time quantities (the
    /// tree folder then reports its "not a constant expression"
    /// diagnostic).
    pub table_fold: Option<TableFoldTape>,
}

impl BytecodeModel {
    /// Compiles all programs of a model.
    pub fn compile(model: &CompiledModel) -> Self {
        BytecodeModel {
            dc: compile_program(&model.dc_program),
            ac: compile_program(&model.ac_program),
            tran: compile_program(&model.tran_program),
            init: compile_init_program(&model.init_program),
            table_fold: compile_table_fold(model),
        }
    }

    /// The tape the given analysis runs (same selection rule as the
    /// tree walk).
    pub fn tape(&self, analysis: Analysis) -> &Tape {
        match analysis {
            Analysis::Dc => &self.dc,
            Analysis::Transient { .. } => &self.tran,
            Analysis::Ac { .. } => &self.ac,
        }
    }
}

/// Compiles one statement list into a tape.
pub fn compile_program(program: &[CStmt]) -> Tape {
    let mut c = Compiler {
        tape: Tape::default(),
        depth: 0,
    };
    c.block(program);
    debug_assert_eq!(c.depth, 0, "statements must be stack-neutral");
    c.tape
}

struct Compiler {
    tape: Tape,
    depth: usize,
}

impl Compiler {
    /// Emits an op, tracking the stack effect.
    fn op(&mut self, op: Op, stack_effect: isize) {
        self.tape.ops.push(op);
        self.depth = self
            .depth
            .checked_add_signed(stack_effect)
            .expect("stack underflow in bytecode compiler");
        self.tape.max_stack = self.tape.max_stack.max(self.depth);
    }

    fn msg(&mut self, text: &str) -> u32 {
        if let Some(i) = self.tape.messages.iter().position(|m| m == text) {
            return i as u32;
        }
        self.tape.messages.push(text.to_string());
        (self.tape.messages.len() - 1) as u32
    }

    fn block(&mut self, stmts: &[CStmt]) {
        for stmt in stmts {
            match stmt {
                CStmt::Assign { object, value } => {
                    self.expr(value);
                    self.op(Op::Store(*object as u32), -1);
                }
                CStmt::Contribute { branch, value } => {
                    self.expr(value);
                    self.op(Op::Contribute(*branch as u32), -1);
                }
                CStmt::If { arms, otherwise } => self.if_stmt(arms, otherwise),
                CStmt::Assert { cond, message } => {
                    self.expr(cond);
                    let m = self.msg(message);
                    self.op(Op::Assert(m), -1);
                }
                CStmt::Report { message } => {
                    let m = self.msg(message);
                    self.op(Op::Report(m), 0);
                }
                CStmt::Residual { index, lhs, rhs } => {
                    self.expr(lhs);
                    self.expr(rhs);
                    self.op(Op::Residual(*index as u32), -2);
                }
            }
        }
    }

    fn if_stmt(&mut self, arms: &[(CExpr, Vec<CStmt>)], otherwise: &[CStmt]) {
        let mut end_jumps: Vec<usize> = Vec::new();
        let mut statically_taken = false;
        for (cond, body) in arms {
            // A constant condition either selects this arm at compile
            // time (ending arm evaluation, like the tree walk's first
            // nonzero condition) or drops it entirely. Folded
            // conditions contain no call sites, so skipping their
            // evaluation loses no side effects.
            if let Some(v) = try_fold(cond) {
                if v != 0.0 {
                    self.block(body);
                    statically_taken = true;
                    break;
                }
                continue;
            }
            self.expr(cond);
            let jz = self.tape.ops.len();
            self.op(Op::JumpIfZero(u32::MAX), -1);
            self.block(body);
            let jend = self.tape.ops.len();
            self.op(Op::Jump(u32::MAX), 0);
            end_jumps.push(jend);
            let here = self.tape.ops.len() as u32;
            self.tape.ops[jz] = Op::JumpIfZero(here);
        }
        if !statically_taken {
            self.block(otherwise);
        }
        let end = self.tape.ops.len() as u32;
        for j in end_jumps {
            self.tape.ops[j] = Op::Jump(end);
        }
    }

    /// Emits code leaving exactly one new stack entry for `e`,
    /// collapsing constant subtrees into a single [`Op::Const`].
    fn expr(&mut self, e: &CExpr) {
        if let Some(v) = try_fold(e) {
            self.op(Op::Const(v), 1);
            return;
        }
        match e {
            // Foldable heads are handled above; reaching one of these
            // arms means at least one operand is runtime-dependent.
            CExpr::Const(v) => self.op(Op::Const(*v), 1),
            CExpr::Generic(i) => self.op(Op::Generic(*i as u32), 1),
            CExpr::Object(i) => self.op(Op::Object(*i as u32), 1),
            CExpr::Across(b) => self.op(Op::Across(*b as u32), 1),
            CExpr::Time => self.op(Op::Time, 1),
            CExpr::Unary(op, inner) => {
                self.expr(inner);
                match op {
                    UnOp::Neg => self.op(Op::Neg, 0),
                    UnOp::Not => self.op(Op::Not, 0),
                }
            }
            CExpr::Binary(op, a, b) => {
                self.expr(a);
                self.expr(b);
                self.op(Op::Bin(*op), -1);
            }
            CExpr::Call(builtin, args) => {
                for a in args {
                    self.expr(a);
                }
                match args.len() {
                    1 => self.op(Op::Call1(*builtin), 0),
                    2 => self.op(Op::Call2(*builtin), -1),
                    3 => self.op(Op::Call3(*builtin), -2),
                    n => unreachable!("builtin with arity {n}"),
                }
            }
            CExpr::Ddt { site, arg } => {
                self.expr(arg);
                self.op(Op::Ddt { site: *site as u32 }, 0);
            }
            CExpr::Integ { site, arg, ic } => {
                self.expr(arg);
                self.op(
                    Op::Integ {
                        site: *site as u32,
                        ic: *ic,
                    },
                    0,
                );
            }
            CExpr::Table { site, arg } => {
                self.expr(arg);
                self.op(Op::Table { site: *site as u32 }, 0);
            }
        }
    }
}

/// Compiles the `init` program when every statement is expressible on
/// the plain-`f64` init VM: assignments, conditionals, assertions,
/// and reports over constant-foldable expressions (constants,
/// generics, earlier objects). Programs reaching for run-time
/// quantities return `None` and keep the tree interpreter, so its
/// "unsupported statement"/"not a constant expression" diagnostics
/// are preserved verbatim.
pub fn compile_init_program(program: &[CStmt]) -> Option<Tape> {
    fn stmt_ok(s: &CStmt) -> bool {
        match s {
            CStmt::Assign { value, .. } => expr_ok(value),
            CStmt::If { arms, otherwise } => {
                arms.iter()
                    .all(|(c, body)| expr_ok(c) && body.iter().all(stmt_ok))
                    && otherwise.iter().all(stmt_ok)
            }
            CStmt::Assert { cond, .. } => expr_ok(cond),
            CStmt::Report { .. } => true,
            CStmt::Contribute { .. } | CStmt::Residual { .. } => false,
        }
    }
    if program.iter().all(stmt_ok) {
        Some(compile_program(program))
    } else {
        None
    }
}

/// `true` when the expression is expressible on the plain-`f64` VM:
/// constants, generics, object reads, and pure operators over them.
fn expr_ok(e: &CExpr) -> bool {
    match e {
        CExpr::Const(_) | CExpr::Generic(_) | CExpr::Object(_) => true,
        CExpr::Unary(_, inner) => expr_ok(inner),
        CExpr::Binary(_, a, b) => expr_ok(a) && expr_ok(b),
        CExpr::Call(_, args) => args.iter().all(expr_ok),
        CExpr::Across(_)
        | CExpr::Time
        | CExpr::Ddt { .. }
        | CExpr::Integ { .. }
        | CExpr::Table { .. } => false,
    }
}

/// The compiled `table1d` breakpoint folder: every breakpoint
/// expression of every table, in declaration order (`x` then `y` per
/// breakpoint), on one expression-only tape. Executing the tape
/// leaves all folded values on the stack in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct TableFoldTape {
    tape: Tape,
    /// Breakpoint count per table, in table-slot order.
    counts: Vec<usize>,
}

/// Compiles the model's table breakpoints onto the plain-`f64` VM.
/// `None` when the model has no tables or any breakpoint is not a
/// constant-foldable expression (the tree folder keeps its
/// diagnostics in that case).
pub fn compile_table_fold(model: &CompiledModel) -> Option<TableFoldTape> {
    if model.tables.is_empty() {
        return None;
    }
    let all_ok = model
        .tables
        .iter()
        .all(|t| t.breakpoints.iter().all(|(x, y)| expr_ok(x) && expr_ok(y)));
    if !all_ok {
        return None;
    }
    let mut c = Compiler {
        tape: Tape::default(),
        depth: 0,
    };
    let mut counts = Vec::with_capacity(model.tables.len());
    for spec in &model.tables {
        counts.push(spec.breakpoints.len());
        for (bx, by) in &spec.breakpoints {
            c.expr(bx);
            c.expr(by);
        }
    }
    Some(TableFoldTape {
        tape: c.tape,
        counts,
    })
}

/// Folds all table breakpoints through the compiled tape, returning
/// `(xs, ys)` per table in slot order — the bytecode twin of the
/// per-breakpoint `fold_with_objects` walk in [`crate::model`].
///
/// # Errors
///
/// [`HdlError::Elab`] on reads of unassigned objects, with the same
/// message as the tree folder.
pub fn run_table_fold(
    fold: &TableFoldTape,
    generics: &[f64],
    values: &[Option<f64>],
) -> Result<Vec<(Vec<f64>, Vec<f64>)>> {
    // Expression-only tape: executes linearly (no stores, no jumps),
    // leaving one value per compiled expression on the stack. Typical
    // tables fit the inline buffer, keeping the hot path alloc-free.
    let mut inline = [0.0f64; 64];
    let mut heap: Vec<f64>;
    let stack: &mut [f64] = if fold.tape.max_stack <= inline.len() {
        &mut inline
    } else {
        heap = vec![0.0f64; fold.tape.max_stack];
        &mut heap
    };
    let mut sp = 0usize;
    for op in &fold.tape.ops {
        match op {
            Op::Const(v) => {
                stack[sp] = *v;
                sp += 1;
            }
            Op::Generic(i) => {
                stack[sp] = generics[*i as usize];
                sp += 1;
            }
            Op::Object(i) => {
                stack[sp] = values[*i as usize].ok_or_else(|| {
                    HdlError::Elab("initializer references an object with no value yet".into())
                })?;
                sp += 1;
            }
            Op::Neg => stack[sp - 1] = -stack[sp - 1],
            Op::Not => stack[sp - 1] = f64::from(stack[sp - 1] == 0.0),
            Op::Bin(op) => {
                stack[sp - 2] = fold_binop(*op, stack[sp - 2], stack[sp - 1]);
                sp -= 1;
            }
            Op::Call1(b) => stack[sp - 1] = fold_builtin(*b, &stack[sp - 1..sp]),
            Op::Call2(b) => {
                stack[sp - 2] = fold_builtin(*b, &stack[sp - 2..sp]);
                sp -= 1;
            }
            Op::Call3(b) => {
                stack[sp - 3] = fold_builtin(*b, &stack[sp - 3..sp]);
                sp -= 2;
            }
            other => unreachable!("{other:?} cannot appear in a table-fold tape"),
        }
    }
    let mut out = Vec::with_capacity(fold.counts.len());
    let mut at = 0usize;
    for &count in &fold.counts {
        let mut xs = Vec::with_capacity(count);
        let mut ys = Vec::with_capacity(count);
        for k in 0..count {
            xs.push(stack[at + 2 * k]);
            ys.push(stack[at + 2 * k + 1]);
        }
        at += 2 * count;
        out.push((xs, ys));
    }
    Ok(out)
}

/// Executes an `init` tape with plain-`f64` semantics over the
/// per-instance object value vector (`None` = not yet assigned),
/// mirroring the tree interpreter (`run_init_program` in
/// [`crate::model`]) error for error: same unassigned-read message,
/// same assertion message, reports ignored.
///
/// # Errors
///
/// [`HdlError::Elab`] on reads of unassigned objects and failed
/// assertions — bit-compatible with the tree interpreter, which the
/// differential tests in `tests/bytecode_equivalence.rs` enforce.
pub fn run_init_tape(
    model: &CompiledModel,
    tape: &Tape,
    generics: &[f64],
    values: &mut [Option<f64>],
) -> Result<()> {
    let mut stack = vec![0.0f64; tape.max_stack];
    let ops = &tape.ops;
    let mut pc = 0usize;
    let mut sp = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::Const(v) => {
                stack[sp] = *v;
                sp += 1;
            }
            Op::Generic(i) => {
                stack[sp] = generics[*i as usize];
                sp += 1;
            }
            Op::Object(i) => {
                stack[sp] = values[*i as usize].ok_or_else(|| {
                    HdlError::Elab("initializer references an object with no value yet".into())
                })?;
                sp += 1;
            }
            Op::Neg => stack[sp - 1] = -stack[sp - 1],
            Op::Not => stack[sp - 1] = f64::from(stack[sp - 1] == 0.0),
            Op::Bin(op) => {
                stack[sp - 2] = fold_binop(*op, stack[sp - 2], stack[sp - 1]);
                sp -= 1;
            }
            Op::Call1(b) => stack[sp - 1] = fold_builtin(*b, &stack[sp - 1..sp]),
            Op::Call2(b) => {
                stack[sp - 2] = fold_builtin(*b, &stack[sp - 2..sp]);
                sp -= 1;
            }
            Op::Call3(b) => {
                stack[sp - 3] = fold_builtin(*b, &stack[sp - 3..sp]);
                sp -= 2;
            }
            Op::Store(i) => {
                sp -= 1;
                values[*i as usize] = Some(stack[sp]);
            }
            Op::Assert(m) => {
                sp -= 1;
                if stack[sp] == 0.0 {
                    return Err(HdlError::Elab(format!(
                        "init assertion failed in `{}`: {}",
                        model.name, tape.messages[*m as usize]
                    )));
                }
            }
            Op::Report(_) => {}
            Op::JumpIfZero(target) => {
                sp -= 1;
                if stack[sp] == 0.0 {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::Jump(target) => {
                pc = *target as usize;
                continue;
            }
            other => unreachable!("{other:?} cannot appear in an init tape"),
        }
        pc += 1;
    }
    Ok(())
}

/// Folds a literal-constant expression to its runtime value, or
/// `None` when any part is runtime-dependent. Uses
/// [`fold_binop`]/[`fold_builtin`], which match the runtime
/// evaluator's value semantics operator by operator.
fn try_fold(e: &CExpr) -> Option<f64> {
    Some(match e {
        CExpr::Const(v) => *v,
        CExpr::Unary(UnOp::Neg, inner) => -try_fold(inner)?,
        CExpr::Unary(UnOp::Not, inner) => f64::from(try_fold(inner)? == 0.0),
        CExpr::Binary(op, a, b) => fold_binop(*op, try_fold(a)?, try_fold(b)?),
        CExpr::Call(builtin, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(try_fold(a)?);
            }
            fold_builtin(*builtin, &vals)
        }
        _ => return None,
    })
}

/// Reusable evaluation storage: object registers plus the expression
/// stack, all preallocated at the instance's gradient width. One bank
/// serves every evaluation pass of an instance (per AD scalar type).
#[derive(Debug, Clone)]
pub struct RegBank<S> {
    objects: Vec<S>,
    assigned: Vec<bool>,
    stack: Vec<S>,
    n_grad: usize,
}

impl<S: AdScalar> Default for RegBank<S> {
    fn default() -> Self {
        RegBank {
            objects: Vec::new(),
            assigned: Vec::new(),
            stack: Vec::new(),
            n_grad: 0,
        }
    }
}

impl<S: AdScalar> RegBank<S> {
    /// Sizes the bank for a model/tape/gradient-width combination,
    /// reusing existing buffers whenever the width matches.
    fn prepare(&mut self, n_objects: usize, max_stack: usize, n: usize) {
        if self.n_grad != n {
            self.objects.clear();
            self.stack.clear();
            self.n_grad = n;
        }
        let zero = S::constant(0.0, n);
        self.objects.resize(n_objects, zero.clone());
        if self.stack.len() < max_stack {
            self.stack.resize(max_stack, zero);
        }
        self.assigned.clear();
        self.assigned.resize(n_objects, false);
    }
}

/// Executes one analysis pass of `model` through its bytecode,
/// mirroring [`crate::eval::run_pass`] contract for contract: same
/// [`EvalEnv`] callbacks, same [`InstanceState`] scratch updates, same
/// errors.
///
/// # Errors
///
/// Returns [`HdlError::Eval`] on non-finite contributions, failed
/// assertions, or reads of never-assigned variables — the same
/// conditions (and messages) as the tree walk.
#[allow(clippy::too_many_arguments)]
pub fn run_pass_bytecode<S: AdScalar>(
    model: &CompiledModel,
    code: &BytecodeModel,
    analysis: Analysis,
    generics: &[f64],
    init_values: &[Option<f64>],
    tables: &[Pwl1],
    state: &mut InstanceState,
    bank: &mut RegBank<S>,
    env: &mut dyn EvalEnv<S>,
) -> Result<()> {
    let n = env.n_grad();
    let tape = code.tape(analysis);
    bank.prepare(model.objects.len(), tape.max_stack, n);

    // Object register initialization — the bytecode twin of the slot
    // setup in `run_pass`.
    for (i, obj) in model.objects.iter().enumerate() {
        match obj.kind {
            ObjectKind::Constant | ObjectKind::Variable => match init_values[i] {
                Some(v) => {
                    bank.objects[i].set_constant(v);
                    bank.assigned[i] = true;
                }
                None => bank.assigned[i] = false,
            },
            ObjectKind::State => {
                bank.objects[i].set_constant(state.committed[i]);
                bank.assigned[i] = true;
            }
            ObjectKind::Unknown => {
                bank.objects[i] = env.unknown(obj.unknown_index.expect("unknown has index"));
                bank.assigned[i] = true;
            }
        }
    }
    state.reports.clear();

    let time = match analysis {
        Analysis::Transient { t, .. } => t,
        _ => 0.0,
    };
    let ops = &tape.ops;
    let mut pc = 0usize;
    let mut sp = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::Const(v) => {
                bank.stack[sp].set_constant(*v);
                sp += 1;
            }
            Op::Generic(i) => {
                bank.stack[sp].set_constant(generics[*i as usize]);
                sp += 1;
            }
            Op::Object(i) => {
                let i = *i as usize;
                if !bank.assigned[i] {
                    return Err(HdlError::Eval(format!(
                        "read of unassigned variable `{}` in model `{}`",
                        model.objects[i].name, model.name
                    )));
                }
                let obj = &bank.objects[i];
                bank.stack[sp].clone_from(obj);
                sp += 1;
            }
            Op::Across(b) => {
                bank.stack[sp] = env.across(*b as usize);
                sp += 1;
            }
            Op::Time => {
                bank.stack[sp].set_constant(time);
                sp += 1;
            }
            Op::Neg => bank.stack[sp - 1].neg_assign(),
            Op::Not => {
                let v = f64::from(bank.stack[sp - 1].value() == 0.0);
                bank.stack[sp - 1].set_constant(v);
            }
            Op::Bin(op) => {
                let (lo, hi) = bank.stack.split_at_mut(sp - 1);
                let a = &mut lo[sp - 2];
                let b = &hi[0];
                match op {
                    BinOp::Add => a.add_assign(b),
                    BinOp::Sub => a.sub_assign(b),
                    BinOp::Mul => a.mul_assign(b),
                    BinOp::Div => a.div_assign(b),
                    BinOp::Pow => {
                        let (f, dfa, dfb) = pow_coeffs(a.value(), b.value());
                        a.chain2_assign(f, dfa, dfb, b);
                    }
                    // Boolean-valued: constant 0/1, zero gradient.
                    _ => a.set_constant(fold_binop(*op, a.value(), b.value())),
                }
                sp -= 1;
            }
            Op::Call1(b) => {
                let x = &mut bank.stack[sp - 1];
                let (f, df) = chain_coeffs(*b, x.value());
                match b {
                    Builtin::Sgn | Builtin::Floor | Builtin::Ceil => x.set_constant(f),
                    _ => x.chain_assign(f, df),
                }
            }
            Op::Call2(b) => {
                let (lo, hi) = bank.stack.split_at_mut(sp - 1);
                let a = &mut lo[sp - 2];
                let b2 = &hi[0];
                match b {
                    Builtin::Atan2 => {
                        let y = a.value();
                        let x = b2.value();
                        let denom = x * x + y * y;
                        a.chain2_assign(y.atan2(x), x / denom, -y / denom, b2);
                    }
                    Builtin::Pow => {
                        let (f, dfa, dfb) = pow_coeffs(a.value(), b2.value());
                        a.chain2_assign(f, dfa, dfb, b2);
                    }
                    // Selection semantics matching the tree walk: the
                    // kept operand's gradient passes through; NaN
                    // comparisons select the second operand.
                    Builtin::Min => {
                        if a.value() <= b2.value() {
                            // keep `a` (gradient passes through)
                        } else {
                            a.clone_from(b2);
                        }
                    }
                    Builtin::Max => {
                        if a.value() >= b2.value() {
                            // keep `a`
                        } else {
                            a.clone_from(b2);
                        }
                    }
                    other => unreachable!("{other:?} is not a two-argument builtin"),
                }
                sp -= 1;
            }
            Op::Call3(b) => {
                debug_assert_eq!(*b, Builtin::Limit);
                let v0 = bank.stack[sp - 3].value();
                let lo_v = bank.stack[sp - 2].value();
                let hi_v = bank.stack[sp - 1].value();
                if v0 < lo_v {
                    let (lo, hi) = bank.stack.split_at_mut(sp - 2);
                    lo[sp - 3].clone_from(&hi[0]);
                } else if v0 > hi_v {
                    let (lo, hi) = bank.stack.split_at_mut(sp - 1);
                    lo[sp - 3].clone_from(&hi[0]);
                }
                sp -= 2;
            }
            Op::Ddt { site } => {
                let site = *site as usize;
                let x = &mut bank.stack[sp - 1];
                match plan_ddt(analysis, &state.ddt_sites[site], x.value()) {
                    DdtPlan::DcZero => {
                        state.scratch_ddt[site] = (x.value(), 0.0);
                        x.set_constant(0.0);
                    }
                    DdtPlan::Chain { f, df } => {
                        state.scratch_ddt[site] = (x.value(), f);
                        x.chain_assign(f, df);
                    }
                    DdtPlan::Ac { omega } => x.ac_ddt_assign(omega),
                }
            }
            Op::Integ { site, ic } => {
                let site = *site as usize;
                let x = &mut bank.stack[sp - 1];
                match plan_integ(analysis, &state.integ_sites[site], x.value(), *ic) {
                    IntegPlan::DcConst { y } => {
                        state.scratch_integ[site] = (y, x.value());
                        x.set_constant(y);
                    }
                    IntegPlan::Chain { f, gain } => {
                        state.scratch_integ[site] = (f, x.value());
                        x.chain_assign(f, gain);
                    }
                    IntegPlan::Ac { omega, y0 } => x.ac_integ_assign(omega, y0),
                }
            }
            Op::Table { site } => {
                let x = &mut bank.stack[sp - 1];
                let table = &tables[*site as usize];
                let f = table.eval(x.value());
                let df = table.deriv(x.value());
                x.chain_assign(f, df);
            }
            Op::Store(i) => {
                sp -= 1;
                let i = *i as usize;
                let src = &bank.stack[sp];
                bank.objects[i].clone_from(src);
                bank.assigned[i] = true;
            }
            Op::Contribute(branch) => {
                sp -= 1;
                let v = bank.stack[sp].clone();
                if !v.is_finite() {
                    return Err(HdlError::Eval(format!(
                        "non-finite contribution in model `{}`",
                        model.name
                    )));
                }
                env.contribute(*branch as usize, v);
            }
            Op::Residual(index) => {
                {
                    let (lo, hi) = bank.stack.split_at_mut(sp - 1);
                    lo[sp - 2].sub_assign(&hi[0]);
                }
                sp -= 2;
                env.residual(*index as usize, bank.stack[sp].clone());
            }
            Op::Assert(m) => {
                sp -= 1;
                if bank.stack[sp].value() == 0.0 {
                    return Err(HdlError::Eval(format!(
                        "assertion failed in model `{}`: {}",
                        model.name, tape.messages[*m as usize]
                    )));
                }
            }
            Op::Report(m) => {
                let msg = &tape.messages[*m as usize];
                state.reports.push(msg.clone());
                env.report(msg);
            }
            Op::JumpIfZero(target) => {
                sp -= 1;
                if bank.stack[sp].value() == 0.0 {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::Jump(target) => {
                pc = *target as usize;
                continue;
            }
        }
        pc += 1;
    }

    // Record object values for commit (assigned registers only, like
    // the tree walk's `Some` slots).
    for (i, obj) in bank.objects.iter().enumerate() {
        if bank.assigned[i] {
            state.scratch_objects[i] = obj.value();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin(op: BinOp, a: CExpr, b: CExpr) -> CExpr {
        CExpr::Binary(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn constant_subtrees_collapse_to_one_op() {
        // (2 + 3) * across(0)  →  Const(5), Across(0), Mul
        let e = bin(
            BinOp::Mul,
            bin(BinOp::Add, CExpr::Const(2.0), CExpr::Const(3.0)),
            CExpr::Across(0),
        );
        let tape = compile_program(&[CStmt::Contribute {
            branch: 0,
            value: e,
        }]);
        assert_eq!(
            tape.ops(),
            &[
                Op::Const(5.0),
                Op::Across(0),
                Op::Bin(BinOp::Mul),
                Op::Contribute(0),
            ]
        );
        assert_eq!(tape.max_stack(), 2);
    }

    #[test]
    fn folding_matches_runtime_selection_semantics() {
        // min(NaN, 1) picks the second operand at runtime; the folder
        // must agree.
        let nan = f64::NAN;
        assert_eq!(
            try_fold(&CExpr::Call(
                Builtin::Min,
                vec![CExpr::Const(nan), CExpr::Const(1.0)]
            )),
            Some(1.0)
        );
        assert_eq!(
            try_fold(&CExpr::Call(
                Builtin::Max,
                vec![CExpr::Const(nan), CExpr::Const(-1.0)]
            )),
            Some(-1.0)
        );
        // limit with an inverted window must not panic (runtime
        // compares, it does not clamp — the `v0 < lo` test wins).
        assert_eq!(
            try_fold(&CExpr::Call(
                Builtin::Limit,
                vec![CExpr::Const(0.5), CExpr::Const(1.0), CExpr::Const(-1.0)]
            )),
            Some(1.0)
        );
        // Generics never fold (they bind per instance).
        assert_eq!(try_fold(&CExpr::Generic(0)), None);
    }

    #[test]
    fn if_chains_emit_patched_jumps() {
        // if across(0) { x := 1 } else { x := 2 }
        let stmt = CStmt::If {
            arms: vec![(
                CExpr::Across(0),
                vec![CStmt::Assign {
                    object: 0,
                    value: CExpr::Const(1.0),
                }],
            )],
            otherwise: vec![CStmt::Assign {
                object: 0,
                value: CExpr::Const(2.0),
            }],
        };
        let tape = compile_program(&[stmt]);
        assert_eq!(
            tape.ops(),
            &[
                Op::Across(0),
                Op::JumpIfZero(5),
                Op::Const(1.0),
                Op::Store(0),
                Op::Jump(7),
                Op::Const(2.0),
                Op::Store(0),
            ]
        );
    }

    #[test]
    fn statically_dead_arms_are_dropped() {
        // if 0 { report } elsif 1 { x := 3 } else { report } — only
        // the taken arm survives.
        let stmt = CStmt::If {
            arms: vec![
                (
                    CExpr::Const(0.0),
                    vec![CStmt::Report {
                        message: "dead".into(),
                    }],
                ),
                (
                    CExpr::Const(1.0),
                    vec![CStmt::Assign {
                        object: 0,
                        value: CExpr::Const(3.0),
                    }],
                ),
            ],
            otherwise: vec![CStmt::Report {
                message: "also dead".into(),
            }],
        };
        let tape = compile_program(&[stmt]);
        assert_eq!(tape.ops(), &[Op::Const(3.0), Op::Store(0)]);
    }

    #[test]
    fn residual_and_call_arity_track_stack_depth() {
        let stmt = CStmt::Residual {
            index: 0,
            lhs: CExpr::Call(
                Builtin::Limit,
                vec![CExpr::Across(0), CExpr::Const(-1.0), CExpr::Const(1.0)],
            ),
            rhs: CExpr::Call(Builtin::Atan2, vec![CExpr::Across(0), CExpr::Across(1)]),
        };
        let tape = compile_program(&[stmt]);
        // lhs needs 3 slots; rhs adds 2 on top of lhs's 1 → max 3.
        assert_eq!(tape.max_stack(), 3);
        assert_eq!(tape.ops().last(), Some(&Op::Residual(0)));
    }
}
