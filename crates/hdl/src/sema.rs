//! Semantic analysis: resolves the name-based AST into a
//! [`CompiledModel`] with slot indices, checking natures, name
//! collisions, context legality and equation/unknown pairing.

use crate::ast::{self, Block, Ctx, Expr, ObjectKind, Stmt};
use crate::compile::{
    fold_const, BranchInfo, Builtin, CExpr, CStmt, CompiledModel, GenericInfo, ObjectInfo, PinInfo,
    TableSpec,
};
use crate::error::{HdlError, Result};
use crate::nature::{Nature, QuantityKind};
use crate::span::Span;
use std::collections::HashMap;

/// Compiles one entity/architecture pair from a parsed module.
///
/// `arch` selects among multiple architectures; `None` picks the first
/// one declared for the entity.
///
/// # Errors
///
/// Returns [`HdlError::Sema`] for resolution and legality failures.
pub fn compile(module: &ast::Module, entity: &str, arch: Option<&str>) -> Result<CompiledModel> {
    let entity_name = entity.to_ascii_lowercase();
    let ent = module.entity(&entity_name).ok_or_else(|| HdlError::Sema {
        message: format!("no entity named `{entity_name}`"),
        span: Span::default(),
    })?;
    let arch = module
        .architecture(&entity_name, arch)
        .ok_or_else(|| HdlError::Sema {
            message: format!("no architecture for entity `{entity_name}`"),
            span: ent.span,
        })?;

    let mut ctx = Lowering::new(ent, arch)?;
    ctx.lower_relation(&arch.relation)?;
    ctx.finish()
}

struct Lowering<'a> {
    ent: &'a ast::Entity,
    arch: &'a ast::Architecture,
    generics: Vec<GenericInfo>,
    generic_slots: HashMap<String, usize>,
    pins: Vec<PinInfo>,
    pin_slots: HashMap<String, usize>,
    objects: Vec<ObjectInfo>,
    object_slots: HashMap<String, usize>,
    branches: Vec<BranchInfo>,
    n_unknowns: usize,
    n_ddt: usize,
    n_integ: usize,
    tables: Vec<TableSpec>,
    init_program: Vec<CStmt>,
    dc_program: Vec<CStmt>,
    ac_program: Vec<CStmt>,
    tran_program: Vec<CStmt>,
    has_dc_block: bool,
    has_ac_block: bool,
    /// Residual counters per context (dc, ac, transient).
    residuals: [usize; 3],
}

impl<'a> Lowering<'a> {
    fn new(ent: &'a ast::Entity, arch: &'a ast::Architecture) -> Result<Self> {
        let mut l = Lowering {
            ent,
            arch,
            generics: Vec::new(),
            generic_slots: HashMap::new(),
            pins: Vec::new(),
            pin_slots: HashMap::new(),
            objects: Vec::new(),
            object_slots: HashMap::new(),
            branches: Vec::new(),
            n_unknowns: 0,
            n_ddt: 0,
            n_integ: 0,
            tables: Vec::new(),
            init_program: Vec::new(),
            dc_program: Vec::new(),
            ac_program: Vec::new(),
            tran_program: Vec::new(),
            has_dc_block: false,
            has_ac_block: false,
            residuals: [0; 3],
        };
        l.declare_interface()?;
        l.declare_objects()?;
        Ok(l)
    }

    fn err(message: String, span: Span) -> HdlError {
        HdlError::Sema { message, span }
    }

    fn declare_interface(&mut self) -> Result<()> {
        for g in &self.ent.generics {
            if self.generic_slots.contains_key(&g.name) {
                return Err(Self::err(format!("duplicate generic `{}`", g.name), g.span));
            }
            let default = match &g.default {
                Some(e) => {
                    let ce = self.lower_const_expr(e)?;
                    Some(fold_const(&ce, &[]).map_err(|_| {
                        Self::err(
                            format!("default of generic `{}` must be constant", g.name),
                            e.span(),
                        )
                    })?)
                }
                None => None,
            };
            self.generic_slots
                .insert(g.name.clone(), self.generics.len());
            self.generics.push(GenericInfo {
                name: g.name.clone(),
                default,
            });
        }
        for p in &self.ent.pins {
            if self.pin_slots.contains_key(&p.name) {
                return Err(Self::err(format!("duplicate pin `{}`", p.name), p.span));
            }
            let nature = Nature::from_name(&p.nature)
                .ok_or_else(|| Self::err(format!("unknown nature `{}`", p.nature), p.span))?;
            self.pin_slots.insert(p.name.clone(), self.pins.len());
            self.pins.push(PinInfo {
                name: p.name.clone(),
                nature,
            });
        }
        Ok(())
    }

    fn declare_objects(&mut self) -> Result<()> {
        for d in &self.arch.decls {
            for name in &d.names {
                if self.object_slots.contains_key(name) {
                    return Err(Self::err(format!("duplicate object `{name}`"), d.span));
                }
                if self.generic_slots.contains_key(name) {
                    return Err(Self::err(
                        format!("object `{name}` shadows a generic of the same name"),
                        d.span,
                    ));
                }
                if d.kind == ObjectKind::Constant && d.init.is_none() {
                    return Err(Self::err(
                        format!("constant `{name}` needs an initializer"),
                        d.span,
                    ));
                }
                let unknown_index = if d.kind == ObjectKind::Unknown {
                    let idx = self.n_unknowns;
                    self.n_unknowns += 1;
                    Some(idx)
                } else {
                    None
                };
                self.object_slots.insert(name.clone(), self.objects.len());
                self.objects.push(ObjectInfo {
                    name: name.clone(),
                    kind: d.kind,
                    init: None, // filled below, after all names are visible
                    unknown_index,
                });
            }
        }
        // Second pass: lower initializers (may reference generics and
        // previously declared constants).
        for d in &self.arch.decls {
            if let Some(init) = &d.init {
                let ce = self.lower_expr(init, ExprPos::DeclInit)?;
                for name in &d.names {
                    let slot = self.object_slots[name];
                    self.objects[slot].init = Some(ce.clone());
                }
            }
        }
        Ok(())
    }

    fn branch_slot(&mut self, b: &ast::BranchRef) -> Result<(usize, QuantityKind)> {
        let pa = *self
            .pin_slots
            .get(&b.pin_a)
            .ok_or_else(|| Self::err(format!("unknown pin `{}`", b.pin_a), b.span))?;
        let pb = *self
            .pin_slots
            .get(&b.pin_b)
            .ok_or_else(|| Self::err(format!("unknown pin `{}`", b.pin_b), b.span))?;
        if pa == pb {
            return Err(Self::err(
                format!("branch pins must differ, got `[{0}, {0}]`", b.pin_a),
                b.span,
            ));
        }
        let na = self.pins[pa].nature;
        let nb = self.pins[pb].nature;
        if na != nb {
            return Err(Self::err(
                format!(
                    "branch `[{}, {}]` mixes natures {na} and {nb}",
                    b.pin_a, b.pin_b
                ),
                b.span,
            ));
        }
        let kind = na.quantity_kind(&b.quantity).ok_or_else(|| {
            Self::err(
                format!(
                    "`{}` is not a quantity of nature {na} (expected `{}` or `{}`)",
                    b.quantity,
                    na.across_quantity(),
                    na.through_quantity()
                ),
                b.span,
            )
        })?;
        let slot = self
            .branches
            .iter()
            .position(|info| info.pin_a == pa && info.pin_b == pb)
            .unwrap_or_else(|| {
                self.branches.push(BranchInfo {
                    pin_a: pa,
                    pin_b: pb,
                    nature: na,
                });
                self.branches.len() - 1
            });
        Ok((slot, kind))
    }

    fn lower_const_expr(&mut self, e: &Expr) -> Result<CExpr> {
        self.lower_expr(e, ExprPos::ConstOnly)
    }

    fn lower_expr(&mut self, e: &Expr, pos: ExprPos) -> Result<CExpr> {
        Ok(match e {
            Expr::Num(v, _) => CExpr::Const(*v),
            Expr::Bool(b, _) => CExpr::Const(f64::from(*b)),
            Expr::Ident(name, span) => {
                if let Some(&slot) = self.object_slots.get(name) {
                    if pos == ExprPos::ConstOnly {
                        return Err(Self::err(
                            format!("`{name}` is not allowed in a constant expression"),
                            *span,
                        ));
                    }
                    CExpr::Object(slot)
                } else if let Some(&slot) = self.generic_slots.get(name) {
                    CExpr::Generic(slot)
                } else if name == "pi" {
                    CExpr::Const(std::f64::consts::PI)
                } else if name == "time" {
                    if pos != ExprPos::Runtime {
                        return Err(Self::err(
                            "`time` is only available in procedural contexts".into(),
                            *span,
                        ));
                    }
                    CExpr::Time
                } else {
                    return Err(Self::err(format!("unknown identifier `{name}`"), *span));
                }
            }
            Expr::Branch(b) => {
                if pos != ExprPos::Runtime {
                    return Err(Self::err(
                        "branch quantities are only available in procedural contexts".into(),
                        b.span,
                    ));
                }
                let (slot, kind) = self.branch_slot(b)?;
                if kind != QuantityKind::Across {
                    return Err(Self::err(
                        format!(
                            "through quantity `{}` cannot be read; only across \
                             quantities appear in expressions",
                            b.quantity
                        ),
                        b.span,
                    ));
                }
                CExpr::Across(slot)
            }
            Expr::Unary { op, expr, .. } => {
                CExpr::Unary(*op, Box::new(self.lower_expr(expr, pos)?))
            }
            Expr::Binary { op, lhs, rhs, .. } => CExpr::Binary(
                *op,
                Box::new(self.lower_expr(lhs, pos)?),
                Box::new(self.lower_expr(rhs, pos)?),
            ),
            Expr::Call { name, args, span } => self.lower_call(name, args, *span, pos)?,
        })
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], span: Span, pos: ExprPos) -> Result<CExpr> {
        match name {
            "ddt" => {
                if pos != ExprPos::Runtime {
                    return Err(Self::err("`ddt` needs a procedural context".into(), span));
                }
                if args.len() != 1 {
                    return Err(Self::err("`ddt` takes exactly one argument".into(), span));
                }
                let site = self.n_ddt;
                self.n_ddt += 1;
                Ok(CExpr::Ddt {
                    site,
                    arg: Box::new(self.lower_expr(&args[0], pos)?),
                })
            }
            "integ" => {
                if pos != ExprPos::Runtime {
                    return Err(Self::err("`integ` needs a procedural context".into(), span));
                }
                if args.is_empty() || args.len() > 2 {
                    return Err(Self::err(
                        "`integ` takes one argument plus an optional initial condition".into(),
                        span,
                    ));
                }
                let ic = if args.len() == 2 {
                    let ce = self.lower_expr(&args[1], ExprPos::DeclInit)?;
                    // Folded against generic defaults is not possible yet;
                    // require it to be generic-free or constant: fold with
                    // zeros placeholder rejected — instead fold at
                    // elaboration. Keep the expression if constant-only.
                    fold_const(&ce, &vec![f64::NAN; self.generics.len()]).map_err(|_| {
                        Self::err(
                            "`integ` initial condition must be a constant expression".into(),
                            args[1].span(),
                        )
                    })?
                } else {
                    0.0
                };
                if ic.is_nan() {
                    return Err(Self::err(
                        "`integ` initial condition may not reference generics".into(),
                        args[1].span(),
                    ));
                }
                let site = self.n_integ;
                self.n_integ += 1;
                Ok(CExpr::Integ {
                    site,
                    arg: Box::new(self.lower_expr(&args[0], pos)?),
                    ic,
                })
            }
            "table1d" => {
                if pos != ExprPos::Runtime {
                    return Err(Self::err(
                        "`table1d` needs a procedural context".into(),
                        span,
                    ));
                }
                if args.len() < 5 || args.len().is_multiple_of(2) {
                    return Err(Self::err(
                        "`table1d(x, x0, y0, x1, y1, …)` needs an abscissa plus at \
                         least two breakpoint pairs"
                            .into(),
                        span,
                    ));
                }
                let arg = Box::new(self.lower_expr(&args[0], pos)?);
                let mut breakpoints = Vec::new();
                for pair in args[1..].chunks(2) {
                    let x = self.lower_expr(&pair[0], ExprPos::DeclInit)?;
                    let y = self.lower_expr(&pair[1], ExprPos::DeclInit)?;
                    breakpoints.push((x, y));
                }
                let site = self.tables.len();
                self.tables.push(TableSpec { breakpoints, span });
                Ok(CExpr::Table { site, arg })
            }
            "now" => {
                if !args.is_empty() {
                    return Err(Self::err("`now` takes no arguments".into(), span));
                }
                if pos != ExprPos::Runtime {
                    return Err(Self::err("`now` needs a procedural context".into(), span));
                }
                Ok(CExpr::Time)
            }
            _ => {
                let (builtin, arity) = Builtin::lookup(name)
                    .ok_or_else(|| Self::err(format!("unknown function `{name}`"), span))?;
                if args.len() != arity {
                    return Err(Self::err(
                        format!("`{name}` takes {arity} argument(s), got {}", args.len()),
                        span,
                    ));
                }
                let mut cargs = Vec::with_capacity(args.len());
                for a in args {
                    cargs.push(self.lower_expr(a, pos)?);
                }
                Ok(CExpr::Call(builtin, cargs))
            }
        }
    }

    fn lower_relation(&mut self, relation: &ast::Relation) -> Result<()> {
        for block in &relation.blocks {
            match block {
                Block::Procedural {
                    contexts,
                    stmts,
                    span,
                } => {
                    let is_init = contexts.contains(&Ctx::Init);
                    if is_init && contexts.len() > 1 {
                        return Err(Self::err(
                            "`init` cannot be combined with other contexts".into(),
                            *span,
                        ));
                    }
                    let lowered = self.lower_stmts(stmts, is_init)?;
                    if is_init {
                        self.init_program.extend(lowered);
                    } else {
                        for ctx in contexts {
                            match ctx {
                                Ctx::Dc => {
                                    self.has_dc_block = true;
                                    self.dc_program.extend(lowered.iter().cloned());
                                }
                                Ctx::Ac => {
                                    self.has_ac_block = true;
                                    self.ac_program.extend(lowered.iter().cloned());
                                }
                                Ctx::Transient => self.tran_program.extend(lowered.iter().cloned()),
                                Ctx::Init => unreachable!("checked above"),
                            }
                        }
                    }
                }
                Block::Equation {
                    contexts,
                    equations,
                    span,
                } => {
                    if contexts.contains(&Ctx::Init) {
                        return Err(Self::err(
                            "equation blocks cannot run in `init`".into(),
                            *span,
                        ));
                    }
                    // Lower each equation once so `integ`/`ddt` call
                    // sites are shared across the contexts of this
                    // block (one history slot per textual call site).
                    let mut lowered = Vec::with_capacity(equations.len());
                    for eq in equations {
                        lowered.push((
                            self.lower_expr(&eq.lhs, ExprPos::Runtime)?,
                            self.lower_expr(&eq.rhs, ExprPos::Runtime)?,
                            eq.span,
                        ));
                    }
                    for ctx in contexts {
                        let ctx_idx = match ctx {
                            Ctx::Dc => 0,
                            Ctx::Ac => 1,
                            Ctx::Transient => 2,
                            Ctx::Init => unreachable!("checked above"),
                        };
                        for (lhs, rhs, eq_span) in &lowered {
                            let index = self.residuals[ctx_idx];
                            self.residuals[ctx_idx] += 1;
                            if index >= self.n_unknowns {
                                return Err(Self::err(
                                    format!(
                                        "more equations than UNKNOWN objects \
                                         ({}) in context `{}`",
                                        self.n_unknowns,
                                        ctx.name()
                                    ),
                                    *eq_span,
                                ));
                            }
                            let stmt = CStmt::Residual {
                                index,
                                lhs: lhs.clone(),
                                rhs: rhs.clone(),
                            };
                            match ctx {
                                Ctx::Dc => {
                                    self.has_dc_block = true;
                                    self.dc_program.push(stmt);
                                }
                                Ctx::Ac => {
                                    self.has_ac_block = true;
                                    self.ac_program.push(stmt);
                                }
                                Ctx::Transient => self.tran_program.push(stmt),
                                Ctx::Init => unreachable!("checked above"),
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn lower_stmts(&mut self, stmts: &[Stmt], init_ctx: bool) -> Result<Vec<CStmt>> {
        let pos = if init_ctx {
            ExprPos::InitBlock
        } else {
            ExprPos::Runtime
        };
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(match s {
                Stmt::Assign {
                    target,
                    value,
                    span,
                } => {
                    let slot = *self
                        .object_slots
                        .get(target)
                        .ok_or_else(|| Self::err(format!("unknown object `{target}`"), *span))?;
                    match self.objects[slot].kind {
                        ObjectKind::Variable | ObjectKind::State => {}
                        ObjectKind::Constant => {
                            return Err(Self::err(
                                format!("cannot assign to constant `{target}`"),
                                *span,
                            ))
                        }
                        ObjectKind::Unknown => {
                            return Err(Self::err(
                                format!(
                                    "cannot assign to unknown `{target}`; constrain it \
                                     with an EQUATION block instead"
                                ),
                                *span,
                            ))
                        }
                    }
                    CStmt::Assign {
                        object: slot,
                        value: self.lower_expr(value, pos)?,
                    }
                }
                Stmt::Contribute {
                    branch,
                    value,
                    span,
                } => {
                    if init_ctx {
                        return Err(Self::err(
                            "contributions are not allowed in `init`".into(),
                            *span,
                        ));
                    }
                    let (slot, kind) = self.branch_slot(branch)?;
                    if kind != QuantityKind::Through {
                        return Err(Self::err(
                            format!(
                                "only through quantities can be contributed; `{}` is \
                                 the across quantity of {}",
                                branch.quantity, self.branches[slot].nature
                            ),
                            *span,
                        ));
                    }
                    CStmt::Contribute {
                        branch: slot,
                        value: self.lower_expr(value, pos)?,
                    }
                }
                Stmt::If {
                    arms, otherwise, ..
                } => {
                    let mut carms = Vec::with_capacity(arms.len());
                    for (cond, body) in arms {
                        carms.push((
                            self.lower_expr(cond, pos)?,
                            self.lower_stmts(body, init_ctx)?,
                        ));
                    }
                    CStmt::If {
                        arms: carms,
                        otherwise: self.lower_stmts(otherwise, init_ctx)?,
                    }
                }
                Stmt::Assert { cond, message, .. } => CStmt::Assert {
                    cond: self.lower_expr(cond, pos)?,
                    message: message.clone(),
                },
                Stmt::Report { message, .. } => CStmt::Report {
                    message: message.clone(),
                },
            });
        }
        Ok(out)
    }

    fn finish(self) -> Result<CompiledModel> {
        // Equation/unknown pairing: every non-init context that has any
        // program content must provide one residual per unknown.
        if self.n_unknowns > 0 {
            for (idx, name) in [(0, "dc"), (1, "ac"), (2, "transient")] {
                let provided = self.residuals[idx];
                // dc/ac may fall back to the transient program.
                let effective = if provided == 0 && !self.context_has_blocks(idx) {
                    self.residuals[2]
                } else {
                    provided
                };
                if effective != self.n_unknowns {
                    return Err(Self::err(
                        format!(
                            "context `{name}` provides {effective} equation(s) for \
                             {} unknown(s)",
                            self.n_unknowns
                        ),
                        self.arch.span,
                    ));
                }
            }
        }

        let mut dc_program = self.dc_program;
        let mut ac_program = self.ac_program;
        // Fallback rule: contexts without explicit blocks reuse the
        // transient program (ddt→0 / integ→IC give DC semantics; the
        // AC evaluator maps ddt→jω).
        if !self.has_dc_block {
            dc_program = self.tran_program.clone();
        }
        if !self.has_ac_block {
            ac_program = self.tran_program.clone();
        }

        Ok(CompiledModel {
            name: self.ent.name.clone(),
            arch: self.arch.name.clone(),
            generics: self.generics,
            pins: self.pins,
            branches: self.branches,
            objects: self.objects,
            n_unknowns: self.n_unknowns,
            n_ddt_sites: self.n_ddt,
            n_integ_sites: self.n_integ,
            tables: self.tables,
            init_program: self.init_program,
            dc_program,
            ac_program,
            tran_program: self.tran_program,
        })
    }

    fn context_has_blocks(&self, ctx_idx: usize) -> bool {
        match ctx_idx {
            0 => self.has_dc_block,
            1 => self.has_ac_block,
            _ => true,
        }
    }
}

/// Where an expression appears, for legality checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExprPos {
    /// Fully constant (generic defaults).
    ConstOnly,
    /// Declaration initializers: generics and constants, no run-time
    /// quantities.
    DeclInit,
    /// `init` block: like `DeclInit` but may also read variables.
    InitBlock,
    /// Procedural dc/ac/transient code: everything allowed.
    Runtime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

    fn compile_src(src: &str, entity: &str) -> Result<CompiledModel> {
        compile(&parse(src).unwrap(), entity, None)
    }

    #[test]
    fn compiles_listing1() {
        let m = compile_src(LISTING1, "eletran").unwrap();
        assert_eq!(m.name, "eletran");
        assert_eq!(m.generics.len(), 3);
        assert_eq!(m.pins.len(), 4);
        assert_eq!(m.pins[2].nature, Nature::MechanicalTranslation);
        assert_eq!(m.branches.len(), 2);
        assert_eq!(m.objects.len(), 4);
        assert_eq!(m.n_ddt_sites, 1);
        assert_eq!(m.n_integ_sites, 1);
        assert_eq!(m.n_unknowns, 0);
        assert_eq!(m.init_program.len(), 1);
        // ac and transient share the same five statements.
        assert_eq!(m.ac_program.len(), 5);
        assert_eq!(m.tran_program.len(), 5);
        // No explicit dc block → fallback to transient program.
        assert_eq!(m.dc_program, m.tran_program);
    }

    #[test]
    fn generic_and_pin_namespaces_are_separate() {
        // Listing 1 itself uses `d` as both a generic and a pin.
        let m = compile_src(LISTING1, "eletran").unwrap();
        assert!(m.generic_index("d").is_some());
        assert!(m.pin_index("d").is_some());
    }

    #[test]
    fn rejects_unknown_nature() {
        let src = "ENTITY x IS PIN (p, q : warp); END ENTITY x;
                   ARCHITECTURE a OF x IS BEGIN RELATION END RELATION; END ARCHITECTURE a;";
        let err = compile_src(src, "x").unwrap_err();
        assert!(err.to_string().contains("unknown nature"));
    }

    #[test]
    fn rejects_reading_through_quantity() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      y := [p, q].i;
  END RELATION;
END ARCHITECTURE a;"#;
        let err = compile_src(src, "x").unwrap_err();
        assert!(err.to_string().contains("cannot be read"));
    }

    #[test]
    fn rejects_contributing_across_quantity() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [p, q].v %= 1.0;
  END RELATION;
END ARCHITECTURE a;"#;
        let err = compile_src(src, "x").unwrap_err();
        assert!(err.to_string().contains("through quantities"));
    }

    #[test]
    fn rejects_nature_mismatch_in_branch() {
        let src = r#"
ENTITY x IS PIN (p : electrical; m : mechanical1); END ENTITY x;
ARCHITECTURE a OF x IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [p, m].i %= 1.0;
  END RELATION;
END ARCHITECTURE a;"#;
        let err = compile_src(src, "x").unwrap_err();
        assert!(err.to_string().contains("mixes natures"));
    }

    #[test]
    fn rejects_wrong_quantity_for_nature() {
        let src = r#"
ENTITY x IS PIN (c, d : mechanical1); END ENTITY x;
ARCHITECTURE a OF x IS
VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      y := [c, d].v;
  END RELATION;
END ARCHITECTURE a;"#;
        let err = compile_src(src, "x").unwrap_err();
        assert!(err.to_string().contains("not a quantity"));
    }

    #[test]
    fn rejects_assignment_to_constant_and_unknown() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
CONSTANT c : analog := 1.0;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      c := 2.0;
  END RELATION;
END ARCHITECTURE a;"#;
        assert!(compile_src(src, "x")
            .unwrap_err()
            .to_string()
            .contains("constant"));
    }

    #[test]
    fn unknown_needs_matching_equations() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
UNKNOWN u : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= u;
  END RELATION;
END ARCHITECTURE a;"#;
        let err = compile_src(src, "x").unwrap_err();
        assert!(err.to_string().contains("equation"));
    }

    #[test]
    fn equation_blocks_pair_with_unknowns() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
UNKNOWN u : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= u;
    EQUATION FOR dc, ac, transient =>
      u * u + u == [p, q].v;
  END RELATION;
END ARCHITECTURE a;"#;
        let m = compile_src(src, "x").unwrap();
        assert_eq!(m.n_unknowns, 1);
        assert!(matches!(
            m.dc_program.last(),
            Some(CStmt::Residual { index: 0, .. })
        ));
    }

    #[test]
    fn contributions_forbidden_in_init() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      [p, q].i %= 1.0;
  END RELATION;
END ARCHITECTURE a;"#;
        let err = compile_src(src, "x").unwrap_err();
        assert!(err.to_string().contains("init"));
    }

    #[test]
    fn ddt_forbidden_in_init() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      y := ddt(1.0);
  END RELATION;
END ARCHITECTURE a;"#;
        assert!(compile_src(src, "x").is_err());
    }

    #[test]
    fn table1d_requires_constant_breakpoints() {
        let src = r#"
ENTITY x IS GENERIC (g : analog); PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= table1d([p, q].v, 0.0, 0.0, 1.0, g);
  END RELATION;
END ARCHITECTURE a;"#;
        // Breakpoints may reference generics (folded at elaboration).
        let m = compile_src(src, "x").unwrap();
        assert_eq!(m.tables.len(), 1);
        // But not branch quantities.
        let bad = src.replace("1.0, g", "1.0, [p, q].v");
        assert!(compile_src(&bad, "x").is_err());
    }

    #[test]
    fn pi_and_time_resolve() {
        let src = r#"
ENTITY x IS PIN (p, q : electrical); END ENTITY x;
ARCHITECTURE a OF x IS
VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      y := sin(2.0 * pi * time);
      [p, q].i %= y;
  END RELATION;
END ARCHITECTURE a;"#;
        let m = compile_src(src, "x").unwrap();
        assert_eq!(m.tran_program.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let src = "ENTITY x IS GENERIC (g, g : analog); END ENTITY x;
                   ARCHITECTURE a OF x IS BEGIN RELATION END RELATION; END ARCHITECTURE a;";
        assert!(compile_src(src, "x")
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn missing_entity_reports_cleanly() {
        let err = compile_src(
            "ENTITY y IS END ENTITY y;
            ARCHITECTURE a OF y IS BEGIN RELATION END RELATION; END ARCHITECTURE a;",
            "zz",
        )
        .unwrap_err();
        assert!(err.to_string().contains("no entity"));
    }
}
