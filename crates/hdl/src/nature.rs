//! Physical natures and their branch quantities.
//!
//! This module encodes Table 1 of the paper (generalized variables
//! for different physical domains). Each nature names its *across*
//! (effort) and *through* (flow) quantities; `mems-spice` shares this
//! vocabulary, and the force–current analogy in `mems-core` maps
//! mechanical elements onto electrical primitives using it.

use std::fmt;

/// A physical discipline a pin can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Nature {
    /// Electrical: across = voltage `v` [V], through = current `i` [A].
    Electrical,
    /// Translational mechanics (the paper's `mechanical1`):
    /// across = velocity `tv` [m/s], through = force `f` [N].
    MechanicalTranslation,
    /// Rotational mechanics: across = angular velocity `av` [rad/s],
    /// through = torque `trq` [N·m].
    MechanicalRotation,
    /// Hydraulic: across = pressure `p` [Pa], through = volume flow
    /// rate `flow` [m³/s].
    Hydraulic,
    /// Thermal: across = temperature `temp` [K], through = heat flow
    /// `hflow` [W].
    Thermal,
    /// Magnetic: across = magnetomotive force `mmf` [A·turns],
    /// through = flux rate `phidot` [Wb/s].
    Magnetic,
}

impl Nature {
    /// All natures, in Table 1 order (electrical and the mechanical
    /// pair first, as the paper lists them).
    pub const ALL: [Nature; 6] = [
        Nature::MechanicalTranslation,
        Nature::MechanicalRotation,
        Nature::Electrical,
        Nature::Hydraulic,
        Nature::Thermal,
        Nature::Magnetic,
    ];

    /// Parses the source-level nature name used in `PIN` declarations.
    pub fn from_name(name: &str) -> Option<Nature> {
        Some(match name {
            "electrical" => Nature::Electrical,
            "mechanical1" | "mechanical" | "translational" => Nature::MechanicalTranslation,
            "mechanical_rot" | "rotational" => Nature::MechanicalRotation,
            "hydraulic" | "fluidic" => Nature::Hydraulic,
            "thermal" | "thermal1" => Nature::Thermal,
            "magnetic" => Nature::Magnetic,
            _ => return None,
        })
    }

    /// Canonical source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Nature::Electrical => "electrical",
            Nature::MechanicalTranslation => "mechanical1",
            Nature::MechanicalRotation => "mechanical_rot",
            Nature::Hydraulic => "hydraulic",
            Nature::Thermal => "thermal",
            Nature::Magnetic => "magnetic",
        }
    }

    /// Name of the across quantity accessor, e.g. `v` in `[a, b].v`.
    ///
    /// Under the force–current analogy the paper adopts, the across
    /// quantity of a mechanical pin is the *velocity* (Table 1's flow
    /// variable): mechanical and electrical nets then share topology.
    pub fn across_quantity(self) -> &'static str {
        match self {
            Nature::Electrical => "v",
            Nature::MechanicalTranslation => "tv",
            Nature::MechanicalRotation => "av",
            Nature::Hydraulic => "p",
            Nature::Thermal => "temp",
            Nature::Magnetic => "mmf",
        }
    }

    /// Name of the through quantity accessor, e.g. `i` in
    /// `[a, b].i %= …`.
    ///
    /// Under the force–current analogy, the through quantity of a
    /// mechanical pin is the *force* (Table 1's effort variable).
    pub fn through_quantity(self) -> &'static str {
        match self {
            Nature::Electrical => "i",
            Nature::MechanicalTranslation => "f",
            Nature::MechanicalRotation => "trq",
            Nature::Hydraulic => "flow",
            Nature::Thermal => "hflow",
            Nature::Magnetic => "phidot",
        }
    }

    /// Human-readable effort name and SI unit (Table 1, "Effort" row).
    pub fn effort_desc(self) -> (&'static str, &'static str) {
        match self {
            Nature::Electrical => ("voltage", "V"),
            Nature::MechanicalTranslation => ("force", "N"),
            Nature::MechanicalRotation => ("torque", "N·m"),
            Nature::Hydraulic => ("pressure", "Pa"),
            Nature::Thermal => ("temperature", "K"),
            Nature::Magnetic => ("magnetomotive force", "A"),
        }
    }

    /// Human-readable flow name and SI unit (Table 1, "Flow" row).
    pub fn flow_desc(self) -> (&'static str, &'static str) {
        match self {
            Nature::Electrical => ("current", "A"),
            Nature::MechanicalTranslation => ("velocity", "m/s"),
            Nature::MechanicalRotation => ("angular velocity", "rad/s"),
            Nature::Hydraulic => ("volume flow rate", "m³/s"),
            Nature::Thermal => ("heat flow", "W"),
            Nature::Magnetic => ("flux rate", "Wb/s"),
        }
    }

    /// Human-readable state name and SI unit (Table 1, "State" row).
    ///
    /// The state variable is the time integral of the flow for the
    /// force–current convention used throughout the paper.
    pub fn state_desc(self) -> (&'static str, &'static str) {
        match self {
            Nature::Electrical => ("charge", "C"),
            Nature::MechanicalTranslation => ("translation", "m"),
            Nature::MechanicalRotation => ("angle", "rad"),
            Nature::Hydraulic => ("volume", "m³"),
            Nature::Thermal => ("heat", "J"),
            Nature::Magnetic => ("flux linkage", "Wb"),
        }
    }

    /// Human-readable momentum name and SI unit (Table 1, "Momentum"
    /// row).
    pub fn momentum_desc(self) -> (&'static str, &'static str) {
        match self {
            Nature::Electrical => ("flux linkage", "Wb"),
            Nature::MechanicalTranslation => ("momentum", "kg·m/s"),
            Nature::MechanicalRotation => ("angular momentum", "kg·m²/s"),
            Nature::Hydraulic => ("pressure momentum", "Pa·s"),
            Nature::Thermal => ("(none)", "-"),
            Nature::Magnetic => ("(none)", "-"),
        }
    }

    /// Resolves a branch quantity name against this nature.
    pub fn quantity_kind(self, q: &str) -> Option<QuantityKind> {
        if q == self.across_quantity() {
            Some(QuantityKind::Across)
        } else if q == self.through_quantity() {
            Some(QuantityKind::Through)
        } else {
            None
        }
    }
}

impl fmt::Display for Nature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a branch access names the across or the through quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantityKind {
    /// Effort difference between two pins (readable).
    Across,
    /// Flow through the branch (contributable).
    Through,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_resolve() {
        assert_eq!(Nature::from_name("electrical"), Some(Nature::Electrical));
        assert_eq!(
            Nature::from_name("mechanical1"),
            Some(Nature::MechanicalTranslation)
        );
        assert_eq!(Nature::from_name("bogus"), None);
    }

    #[test]
    fn quantity_resolution_matches_listing1() {
        // Listing 1 reads [a,b].v and [c,d].tv, contributes .i and .f.
        let e = Nature::Electrical;
        let m = Nature::MechanicalTranslation;
        assert_eq!(e.quantity_kind("v"), Some(QuantityKind::Across));
        assert_eq!(e.quantity_kind("i"), Some(QuantityKind::Through));
        assert_eq!(m.quantity_kind("tv"), Some(QuantityKind::Across));
        assert_eq!(m.quantity_kind("f"), Some(QuantityKind::Through));
        assert_eq!(e.quantity_kind("f"), None);
        assert_eq!(m.quantity_kind("v"), None);
    }

    #[test]
    fn round_trip_names() {
        for n in Nature::ALL {
            assert_eq!(Nature::from_name(n.name()), Some(n));
        }
    }

    #[test]
    fn table1_descriptions_are_complete() {
        for n in Nature::ALL {
            assert!(!n.effort_desc().0.is_empty());
            assert!(!n.flow_desc().0.is_empty());
            assert!(!n.state_desc().0.is_empty());
            assert!(!n.momentum_desc().0.is_empty());
        }
    }

    #[test]
    fn effort_flow_product_is_power_dimensionally() {
        // Spot-check the Table 1 pairs used by the paper's examples.
        assert_eq!(Nature::Electrical.effort_desc().1, "V");
        assert_eq!(Nature::Electrical.flow_desc().1, "A");
        assert_eq!(Nature::MechanicalTranslation.effort_desc().1, "N");
        assert_eq!(Nature::MechanicalTranslation.flow_desc().1, "m/s");
    }
}
