//! Public façade: parse → compile → elaborate → evaluate.
//!
//! ```
//! use mems_hdl::model::HdlModel;
//!
//! # fn main() -> Result<(), mems_hdl::HdlError> {
//! let src = r#"
//! ENTITY res IS
//!   GENERIC (r : analog := 1.0e3);
//!   PIN (p, q : electrical);
//! END ENTITY res;
//! ARCHITECTURE a OF res IS
//! BEGIN
//!   RELATION
//!     PROCEDURAL FOR dc, ac, transient =>
//!       [p, q].i %= [p, q].v / r;
//!   END RELATION;
//! END ARCHITECTURE a;
//! "#;
//! let model = HdlModel::compile(src, "res", None)?;
//! let instance = model.instantiate("r1", &[("r", 2.0e3)])?;
//! assert_eq!(instance.generics()[0], 2.0e3);
//! # Ok(())
//! # }
//! ```

use crate::ast::ObjectKind;
use crate::bytecode::{run_init_tape, run_pass_bytecode, run_table_fold, BytecodeModel, RegBank};
use crate::compile::{fold_binop, fold_builtin, CExpr, CStmt, CompiledModel};
use crate::error::{HdlError, Result};
use crate::eval::{run_pass, Analysis, DualComplex, DualReal, EvalEnv, InstanceState};
use crate::parser::parse;
use crate::sema;
use mems_numerics::ode::IntegrationMethod;
use mems_numerics::pwl::Pwl1;
use std::sync::Arc;

/// Which evaluator an [`Instance`] runs its analysis passes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// The flat bytecode VM with reusable register banks (default —
    /// the per-Newton-iteration hot path).
    #[default]
    Bytecode,
    /// The reference tree-walking interpreter (differential testing,
    /// benchmarking).
    TreeWalk,
}

/// A compiled HDL-A model ready for instantiation.
#[derive(Debug, Clone)]
pub struct HdlModel {
    compiled: Arc<CompiledModel>,
    bytecode: Arc<BytecodeModel>,
    source: Arc<str>,
}

impl HdlModel {
    /// Parses `src` and compiles `entity` (first architecture unless
    /// `arch` names one).
    ///
    /// # Errors
    ///
    /// Propagates lex/parse/sema errors; call
    /// [`HdlError::render`] with the same source to get a
    /// caret-annotated message.
    pub fn compile(src: &str, entity: &str, arch: Option<&str>) -> Result<Self> {
        let module = parse(src)?;
        let compiled = sema::compile(&module, entity, arch)?;
        let bytecode = BytecodeModel::compile(&compiled);
        Ok(HdlModel {
            compiled: Arc::new(compiled),
            bytecode: Arc::new(bytecode),
            source: Arc::from(src),
        })
    }

    /// The compiled representation.
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    /// The compiled bytecode tapes.
    pub fn bytecode(&self) -> &BytecodeModel {
        &self.bytecode
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Elaborates an instance, binding generics.
    ///
    /// Unspecified generics fall back to their declared defaults.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::Elab`] for unknown/missing generics, table
    /// breakpoints that do not form a strictly increasing axis, or
    /// failures in the `init` program.
    pub fn instantiate(&self, name: &str, generics: &[(&str, f64)]) -> Result<Instance> {
        let bound = self.bind_generics(generics)?;
        let init_values = self.init_values_with(&bound, true)?;
        let tables = self.fold_tables_with(&bound, &init_values, true)?;

        // Seed committed state values from their initializers.
        let mut state = InstanceState::for_model(&self.compiled);
        for (i, obj) in self.compiled.objects.iter().enumerate() {
            if obj.kind == ObjectKind::State {
                state.committed[i] = init_values[i].unwrap_or(0.0);
            }
        }

        Ok(Instance {
            model: Arc::clone(&self.compiled),
            bytecode: Arc::clone(&self.bytecode),
            name: name.to_string(),
            generics: bound,
            init_values,
            tables,
            state,
            mode: EvalMode::default(),
            bank_real: RegBank::default(),
            bank_complex: RegBank::default(),
        })
    }

    /// Binds generic values in declaration order, falling back to
    /// declared defaults.
    ///
    /// # Errors
    ///
    /// [`HdlError::Elab`] for unknown generics and for generics with
    /// neither a value nor a default.
    fn bind_generics(&self, generics: &[(&str, f64)]) -> Result<Vec<f64>> {
        let mut values: Vec<Option<f64>> =
            self.compiled.generics.iter().map(|g| g.default).collect();
        for (gname, gval) in generics {
            let idx = self.compiled.generic_index(gname).ok_or_else(|| {
                HdlError::Elab(format!(
                    "model `{}` has no generic `{gname}`",
                    self.compiled.name
                ))
            })?;
            values[idx] = Some(*gval);
        }
        let mut bound = Vec::with_capacity(values.len());
        for (g, v) in self.compiled.generics.iter().zip(values) {
            bound.push(v.ok_or_else(|| {
                HdlError::Elab(format!(
                    "generic `{}` of `{}` has no value and no default",
                    g.name, self.compiled.name
                ))
            })?);
        }
        Ok(bound)
    }

    /// Computes the per-object init-value vector for bound generics:
    /// declaration initializers folded in order, then the `init`
    /// program — through the compiled init tape when `use_bytecode`
    /// (and the program compiled; the default in
    /// [`HdlModel::instantiate`]), otherwise through the reference
    /// tree interpreter. Public so the differential test harness can
    /// compare both paths value for value and error for error.
    ///
    /// # Errors
    ///
    /// Initializer folding failures, unassigned-object reads, and
    /// failed `init` assertions — identical between both evaluators.
    pub fn init_values_with(&self, bound: &[f64], use_bytecode: bool) -> Result<Vec<Option<f64>>> {
        let mut init_values: Vec<Option<f64>> = vec![None; self.compiled.objects.len()];
        for (i, obj) in self.compiled.objects.iter().enumerate() {
            if let Some(init) = &obj.init {
                let v = fold_with_objects(init, bound, &init_values).map_err(|e| {
                    HdlError::Elab(format!(
                        "initializer of `{}` in `{}`: {e}",
                        obj.name, self.compiled.name
                    ))
                })?;
                init_values[i] = Some(v);
            }
        }
        match &self.bytecode.init {
            Some(tape) if use_bytecode => {
                run_init_tape(&self.compiled, tape, bound, &mut init_values)?;
            }
            _ => run_init_program(
                &self.compiled.init_program,
                bound,
                &mut init_values,
                &self.compiled,
            )?,
        }
        Ok(init_values)
    }

    /// Elaborates the model's `table1d` breakpoint tables for bound
    /// generics — through the compiled fold tape when `use_bytecode`
    /// (and every breakpoint compiled; the default in
    /// [`HdlModel::instantiate`]), otherwise through the reference
    /// tree folder. Public so the differential harness can compare
    /// both paths breakpoint for breakpoint and error for error.
    ///
    /// # Errors
    ///
    /// Unassigned-object reads, non-constant breakpoint expressions
    /// (tree path only — such models never compile a fold tape), and
    /// non-increasing axes — identical messages on both paths.
    pub fn fold_tables_with(
        &self,
        bound: &[f64],
        init_values: &[Option<f64>],
        use_bytecode: bool,
    ) -> Result<Vec<Pwl1>> {
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = match &self.bytecode.table_fold {
            Some(fold) if use_bytecode => run_table_fold(fold, bound, init_values)?,
            _ => {
                let mut out = Vec::with_capacity(self.compiled.tables.len());
                for spec in &self.compiled.tables {
                    let mut xs = Vec::with_capacity(spec.breakpoints.len());
                    let mut ys = Vec::with_capacity(spec.breakpoints.len());
                    for (bx, by) in &spec.breakpoints {
                        xs.push(fold_with_objects(bx, bound, init_values)?);
                        ys.push(fold_with_objects(by, bound, init_values)?);
                    }
                    out.push((xs, ys));
                }
                out
            }
        };
        let mut tables = Vec::with_capacity(pairs.len());
        for (xs, ys) in pairs {
            tables.push(Pwl1::new(xs, ys).map_err(|e| {
                HdlError::Elab(format!(
                    "invalid table1d breakpoints in `{}`: {e}",
                    self.compiled.name
                ))
            })?);
        }
        Ok(tables)
    }
}

/// An elaborated model instance with bound generics and history.
#[derive(Debug, Clone)]
pub struct Instance {
    model: Arc<CompiledModel>,
    bytecode: Arc<BytecodeModel>,
    name: String,
    generics: Vec<f64>,
    init_values: Vec<Option<f64>>,
    tables: Vec<Pwl1>,
    /// Run-time state (histories, committed values, reports).
    pub state: InstanceState,
    mode: EvalMode,
    bank_real: RegBank<DualReal>,
    bank_complex: RegBank<DualComplex>,
}

impl Instance {
    /// The compiled model this instance elaborates.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// Instance name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bound generic values, in declaration order.
    pub fn generics(&self) -> &[f64] {
        &self.generics
    }

    /// Number of extra scalar unknowns this instance adds to the
    /// enclosing system.
    pub fn n_unknowns(&self) -> usize {
        self.model.n_unknowns
    }

    /// The evaluator this instance runs with.
    pub fn eval_mode(&self) -> EvalMode {
        self.mode
    }

    /// Selects the evaluator (bytecode VM by default; the tree walk
    /// is kept for differential testing and benchmarking).
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.mode = mode;
    }

    /// Evaluates one real-gradient analysis pass under the selected
    /// evaluator.
    fn eval_real(&mut self, analysis: Analysis, env: &mut dyn EvalEnv<DualReal>) -> Result<()> {
        match self.mode {
            EvalMode::Bytecode => run_pass_bytecode(
                &self.model,
                &self.bytecode,
                analysis,
                &self.generics,
                &self.init_values,
                &self.tables,
                &mut self.state,
                &mut self.bank_real,
                env,
            ),
            EvalMode::TreeWalk => run_pass(
                &self.model,
                analysis,
                &self.generics,
                &self.init_values,
                &self.tables,
                &mut self.state,
                env,
            ),
        }
    }

    /// Evaluates the DC program.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (non-finite values, assertions).
    pub fn eval_dc(&mut self, env: &mut dyn EvalEnv<DualReal>) -> Result<()> {
        self.eval_real(Analysis::Dc, env)
    }

    /// Evaluates the transient program at time `t` with step `h`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn eval_transient(
        &mut self,
        t: f64,
        h: f64,
        method: IntegrationMethod,
        env: &mut dyn EvalEnv<DualReal>,
    ) -> Result<()> {
        self.eval_real(Analysis::Transient { t, h, method }, env)
    }

    /// Evaluates the AC program at angular frequency `omega`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn eval_ac(&mut self, omega: f64, env: &mut dyn EvalEnv<DualComplex>) -> Result<()> {
        let analysis = Analysis::Ac { omega };
        match self.mode {
            EvalMode::Bytecode => run_pass_bytecode(
                &self.model,
                &self.bytecode,
                analysis,
                &self.generics,
                &self.init_values,
                &self.tables,
                &mut self.state,
                &mut self.bank_complex,
                env,
            ),
            EvalMode::TreeWalk => run_pass(
                &self.model,
                analysis,
                &self.generics,
                &self.init_values,
                &self.tables,
                &mut self.state,
                env,
            ),
        }
    }

    /// Commits the latest converged DC evaluation as initial history.
    pub fn commit_dc(&mut self) {
        self.state.commit_dc();
    }

    /// Commits the latest converged transient evaluation (step `h`).
    pub fn commit_transient(&mut self, h: f64) {
        self.state.commit_transient(h);
    }
}

/// Folds a constant expression allowing reads of already-folded
/// objects (constants in declaration order).
fn fold_with_objects(expr: &CExpr, generics: &[f64], objects: &[Option<f64>]) -> Result<f64> {
    Ok(match expr {
        CExpr::Const(v) => *v,
        CExpr::Generic(i) => generics[*i],
        CExpr::Object(i) => objects[*i].ok_or_else(|| {
            HdlError::Elab("initializer references an object with no value yet".into())
        })?,
        CExpr::Unary(op, e) => {
            let v = fold_with_objects(e, generics, objects)?;
            match op {
                crate::ast::UnOp::Neg => -v,
                crate::ast::UnOp::Not => f64::from(v == 0.0),
            }
        }
        CExpr::Binary(op, a, b) => fold_binop(
            *op,
            fold_with_objects(a, generics, objects)?,
            fold_with_objects(b, generics, objects)?,
        ),
        CExpr::Call(b, args) => {
            let vals: Vec<f64> = args
                .iter()
                .map(|a| fold_with_objects(a, generics, objects))
                .collect::<Result<_>>()?;
            fold_builtin(*b, &vals)
        }
        other => {
            return Err(HdlError::Elab(format!(
                "not a constant expression: {other:?}"
            )))
        }
    })
}

/// Runs the `init` program with plain f64 semantics, updating
/// `init_values` in place.
fn run_init_program(
    program: &[CStmt],
    generics: &[f64],
    init_values: &mut Vec<Option<f64>>,
    model: &CompiledModel,
) -> Result<()> {
    for stmt in program {
        match stmt {
            CStmt::Assign { object, value } => {
                let v = fold_with_objects(value, generics, init_values)?;
                init_values[*object] = Some(v);
            }
            CStmt::If { arms, otherwise } => {
                let mut taken = false;
                for (cond, body) in arms {
                    if fold_with_objects(cond, generics, init_values)? != 0.0 {
                        run_init_program(body, generics, init_values, model)?;
                        taken = true;
                        break;
                    }
                }
                if !taken {
                    run_init_program(otherwise, generics, init_values, model)?;
                }
            }
            CStmt::Assert { cond, message } => {
                if fold_with_objects(cond, generics, init_values)? == 0.0 {
                    return Err(HdlError::Elab(format!(
                        "init assertion failed in `{}`: {message}",
                        model.name
                    )));
                }
            }
            CStmt::Report { .. } => {}
            other => {
                return Err(HdlError::Elab(format!(
                    "unsupported statement in init program: {other:?}"
                )))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_numerics::Complex64;

    /// The paper's Listing 1.
    const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

    /// Test double for the simulator side: two unknowns, slot 0 = the
    /// electrical across, slot 1 = the mechanical across.
    struct MockEnv {
        v_elec: f64,
        v_mech: f64,
        contributions: Vec<(usize, DualReal)>,
        residuals: Vec<(usize, DualReal)>,
        unknowns: Vec<f64>,
        reports: Vec<String>,
    }

    impl MockEnv {
        fn new(v_elec: f64, v_mech: f64) -> Self {
            MockEnv {
                v_elec,
                v_mech,
                contributions: Vec::new(),
                residuals: Vec::new(),
                unknowns: Vec::new(),
                reports: Vec::new(),
            }
        }

        fn contribution(&self, branch: usize) -> &DualReal {
            &self
                .contributions
                .iter()
                .rev()
                .find(|(b, _)| *b == branch)
                .expect("branch contributed")
                .1
        }
    }

    impl EvalEnv<DualReal> for MockEnv {
        fn n_grad(&self) -> usize {
            2 + self.unknowns.len()
        }
        fn across(&self, branch: usize) -> DualReal {
            match branch {
                0 => DualReal::variable(self.v_elec, self.n_grad(), 0),
                1 => DualReal::variable(self.v_mech, self.n_grad(), 1),
                _ => panic!("unexpected branch"),
            }
        }
        fn unknown(&self, index: usize) -> DualReal {
            DualReal::variable(self.unknowns[index], self.n_grad(), 2 + index)
        }
        fn contribute(&mut self, branch: usize, value: DualReal) {
            self.contributions.push((branch, value));
        }
        fn residual(&mut self, index: usize, value: DualReal) {
            self.residuals.push((index, value));
        }
        fn report(&mut self, message: &str) {
            self.reports.push(message.to_string());
        }
    }

    fn eletran() -> Instance {
        HdlModel::compile(LISTING1, "eletran", None)
            .unwrap()
            .instantiate("x1", &[("a", 1.0e-4), ("d", 0.15e-3), ("er", 1.0)])
            .unwrap()
    }

    const E0: f64 = 8.8542e-12;
    const AREA: f64 = 1.0e-4;
    const GAP: f64 = 0.15e-3;

    #[test]
    fn init_block_sets_e0() {
        let inst = eletran();
        // Object order: e0, x, V, S.
        assert_eq!(inst.init_values[0], Some(E0));
        assert_eq!(inst.init_values[1], None);
    }

    #[test]
    fn dc_force_matches_table3_expression() {
        let mut inst = eletran();
        let mut env = MockEnv::new(10.0, 0.0);
        inst.eval_dc(&mut env).unwrap();
        // Branch 0 = electrical, current = C·dV/dt = 0 at DC.
        let i = env.contribution(0);
        assert_eq!(i.v, 0.0);
        // Branch 1 = mechanical, force = −ε0·εr·A·V²/(2(d+x)²), x = 0.
        let f = env.contribution(1);
        let expect = -E0 * AREA * 100.0 / (2.0 * GAP * GAP);
        assert!(
            (f.v - expect).abs() < expect.abs() * 1e-12,
            "{} vs {expect}",
            f.v
        );
        // ∂F/∂V = −ε0·A·V/(d+x)² — the (negated) transduction factor.
        let dfdv = f.g[0];
        let gamma = E0 * AREA * 10.0 / (GAP * GAP);
        assert!((dfdv + gamma).abs() < gamma * 1e-12, "{dfdv} vs -{gamma}");
    }

    #[test]
    fn transient_current_is_c_dvdt() {
        let mut inst = eletran();
        // Prime history at V = 0.
        let mut env0 = MockEnv::new(0.0, 0.0);
        inst.eval_dc(&mut env0).unwrap();
        inst.commit_dc();
        // One BE step to V = 1 V over h = 1 µs: i = C·ΔV/h.
        let h = 1e-6;
        let mut env = MockEnv::new(1.0, 0.0);
        inst.eval_transient(h, h, IntegrationMethod::BackwardEuler, &mut env)
            .unwrap();
        let c0 = E0 * AREA / GAP;
        let i = env.contribution(0);
        let expect = c0 * 1.0 / h;
        assert!((i.v - expect).abs() < expect * 1e-9, "{} vs {expect}", i.v);
        // ∂i/∂V = C/h (through the ddt site).
        assert!((i.g[0] - c0 / h).abs() < c0 / h * 1e-9);
    }

    #[test]
    fn displacement_integrates_velocity() {
        let mut inst = eletran();
        let mut env0 = MockEnv::new(0.0, 0.0);
        inst.eval_dc(&mut env0).unwrap();
        inst.commit_dc();
        // Constant velocity 1 µm/s for 3 BE steps of 1 ms: x = 3 nm
        // (gap grows), so capacitance shrinks.
        let h = 1e-3;
        let vel = 1e-6;
        for k in 1..=3 {
            let mut env = MockEnv::new(10.0, vel);
            inst.eval_transient(k as f64 * h, h, IntegrationMethod::BackwardEuler, &mut env)
                .unwrap();
            inst.commit_transient(h);
        }
        // x committed inside the instance: read back through force.
        let mut env = MockEnv::new(10.0, 0.0);
        inst.eval_dc(&mut env).unwrap();
        let f = env.contribution(1);
        let x = 3.0 * h * vel;
        let expect = -E0 * AREA * 100.0 / (2.0 * (GAP + x) * (GAP + x));
        assert!(
            (f.v - expect).abs() < expect.abs() * 1e-9,
            "{} vs {expect}",
            f.v
        );
    }

    #[test]
    fn ac_linearization_gives_jwc_admittance() {
        let mut inst = eletran();
        // Operating point: V = 10 V.
        let mut env0 = MockEnv::new(10.0, 0.0);
        inst.eval_dc(&mut env0).unwrap();
        inst.commit_dc();

        struct AcEnv {
            contributions: Vec<(usize, DualComplex)>,
        }
        impl EvalEnv<DualComplex> for AcEnv {
            fn n_grad(&self) -> usize {
                2
            }
            fn across(&self, branch: usize) -> DualComplex {
                match branch {
                    0 => DualComplex::variable(10.0, 2, 0),
                    1 => DualComplex::variable(0.0, 2, 1),
                    _ => panic!(),
                }
            }
            fn unknown(&self, _index: usize) -> DualComplex {
                unreachable!()
            }
            fn contribute(&mut self, branch: usize, value: DualComplex) {
                self.contributions.push((branch, value));
            }
            fn residual(&mut self, _index: usize, _value: DualComplex) {}
            fn report(&mut self, _message: &str) {}
        }

        let omega = 2.0 * std::f64::consts::PI * 1000.0;
        let mut env = AcEnv {
            contributions: Vec::new(),
        };
        inst.eval_ac(omega, &mut env).unwrap();
        let c0 = E0 * AREA / GAP;
        // Electrical branch: ∂i/∂v = jωC.
        let (_, i) = &env.contributions[0];
        let di_dv = i.g[0];
        assert!((di_dv - Complex64::new(0.0, omega * c0)).abs() < omega * c0 * 1e-9);
        // Mechanical branch: ∂F/∂v = −Γ (real), ∂F/∂(velocity) via
        // integ: −k_soft/(jω) where k_soft = ∂F/∂x.
        let (_, f) = &env.contributions[1];
        let gamma = E0 * AREA * 10.0 / (GAP * GAP);
        assert!((f.g[0].re + gamma).abs() < gamma * 1e-9);
        // ∂F/∂x = +ε0·A·V²/(d+x)³ = k_soft; ∂F/∂(vel) = k_soft/(jω) = −j·k_soft/ω.
        let k_soft = E0 * AREA * 100.0 / (GAP * GAP * GAP);
        let expect = Complex64::new(0.0, -k_soft / omega);
        let got = f.g[1];
        assert!(
            (got - expect).abs() < k_soft / omega * 1e-9,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn missing_generic_is_reported() {
        let model = HdlModel::compile(LISTING1, "eletran", None).unwrap();
        let err = model.instantiate("x1", &[("a", 1.0)]).unwrap_err();
        assert!(err.to_string().contains("no value and no default"));
        let err = model.instantiate("x1", &[("zz", 1.0)]).unwrap_err();
        assert!(err.to_string().contains("no generic"));
    }

    #[test]
    fn table_model_evaluates_with_slope_jacobian() {
        let src = r#"
ENTITY twoseg IS
  PIN (p, q : electrical);
END ENTITY twoseg;
ARCHITECTURE a OF twoseg IS
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= table1d([p, q].v, 0.0, 0.0, 1.0, 2.0, 2.0, 3.0);
  END RELATION;
END ARCHITECTURE a;
"#;
        let model = HdlModel::compile(src, "twoseg", None).unwrap();
        let mut inst = model.instantiate("t1", &[]).unwrap();
        let mut env = MockEnv::new(0.5, 0.0);
        inst.eval_dc(&mut env).unwrap();
        let i = env.contribution(0);
        assert!((i.v - 1.0).abs() < 1e-12);
        assert!((i.g[0] - 2.0).abs() < 1e-12);
        // Second segment has slope 1.
        let mut env = MockEnv::new(1.5, 0.0);
        inst.eval_dc(&mut env).unwrap();
        let i = env.contribution(0);
        assert!((i.v - 2.5).abs() < 1e-12);
        assert!((i.g[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equation_block_residuals_flow_to_env() {
        let src = r#"
ENTITY sq IS
  GENERIC (k : analog := 1.0);
  PIN (p, q : electrical);
END ENTITY sq;
ARCHITECTURE a OF sq IS
UNKNOWN u : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= u;
    EQUATION FOR dc, ac, transient =>
      u * u == k * [p, q].v;
  END RELATION;
END ARCHITECTURE a;
"#;
        let model = HdlModel::compile(src, "sq", None).unwrap();
        let mut inst = model.instantiate("s1", &[("k", 4.0)]).unwrap();
        assert_eq!(inst.n_unknowns(), 1);
        let mut env = MockEnv::new(9.0, 0.0);
        env.unknowns = vec![5.0];
        inst.eval_dc(&mut env).unwrap();
        // Residual = u² − k·v = 25 − 36 = −11.
        let (_, r) = &env.residuals[0];
        assert!((r.v + 11.0).abs() < 1e-12);
        // ∂res/∂u = 2u = 10 (gradient slot 2).
        assert!((r.g[2] - 10.0).abs() < 1e-12);
        // ∂res/∂v = −k = −4.
        assert!((r.g[0] + 4.0).abs() < 1e-12);
        // The current contribution is u itself.
        let i = env.contribution(0);
        assert_eq!(i.v, 5.0);
        assert_eq!(i.g[2], 1.0);
    }

    #[test]
    fn assert_statement_fails_eval() {
        let src = r#"
ENTITY guard IS
  GENERIC (gap : analog := 1.0e-6);
  PIN (c, d : mechanical1);
END ENTITY guard;
ARCHITECTURE a OF guard IS
VARIABLE x : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      x := integ([c, d].tv);
      ASSERT x < gap REPORT "gap closed";
      [c, d].f %= 0.0;
  END RELATION;
END ARCHITECTURE a;
"#;
        let model = HdlModel::compile(src, "guard", None).unwrap();
        let mut inst = model.instantiate("g1", &[("gap", 1.0e-9)]).unwrap();
        let mut env0 = MockEnv::new(0.0, 0.0);
        inst.eval_dc(&mut env0).unwrap();
        inst.commit_dc();
        // Integrate a large velocity so x exceeds the gap. The model
        // has a single (mechanical) branch, so it gets mock slot 0.
        let h = 1.0;
        let mut env = MockEnv::new(1.0, 0.0);
        let err = inst
            .eval_transient(h, h, IntegrationMethod::BackwardEuler, &mut env)
            .unwrap_err();
        assert!(err.to_string().contains("gap closed"));
    }

    #[test]
    fn trapezoidal_first_step_falls_back_to_be() {
        let mut inst = eletran();
        let mut env0 = MockEnv::new(0.0, 0.0);
        inst.eval_dc(&mut env0).unwrap();
        inst.commit_dc();
        let h = 1e-6;
        let mut env = MockEnv::new(1.0, 0.0);
        // TR needs dx_prev; first step after DC commit has it (= 0),
        // so TR is usable: i = 2C/h·ΔV − C·0.
        inst.eval_transient(h, h, IntegrationMethod::Trapezoidal, &mut env)
            .unwrap();
        let c0 = E0 * AREA / GAP;
        let i = env.contribution(0);
        assert!((i.v - 2.0 * c0 / h).abs() < c0 / h * 1e-9);
    }

    #[test]
    fn reports_are_collected() {
        let src = r#"
ENTITY noisy IS PIN (p, q : electrical); END ENTITY noisy;
ARCHITECTURE a OF noisy IS
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      REPORT "hello from the model";
      [p, q].i %= 0.0;
  END RELATION;
END ARCHITECTURE a;
"#;
        let model = HdlModel::compile(src, "noisy", None).unwrap();
        let mut inst = model.instantiate("n1", &[]).unwrap();
        let mut env = MockEnv::new(0.0, 0.0);
        inst.eval_dc(&mut env).unwrap();
        assert_eq!(env.reports, vec!["hello from the model"]);
        assert_eq!(inst.state.reports, vec!["hello from the model"]);
    }
}
