//! Recursive-descent parser for the HDL-A subset.
//!
//! Grammar (informally; keywords case-insensitive):
//!
//! ```text
//! module      := (entity | architecture)*
//! entity      := ENTITY id IS [GENERIC ( groups );] [PIN ( pin_groups );]
//!                END [ENTITY] [id] ;
//! groups      := group (; group)*          group := id (, id)* : ANALOG [:= expr]
//! pin_groups  := pgroup (; pgroup)*        pgroup := id (, id)* : id
//! architecture:= ARCHITECTURE id OF id IS decl* BEGIN relation END [ARCHITECTURE] [id] ;
//! decl        := (VARIABLE|STATE|CONSTANT|UNKNOWN) id (, id)* : ANALOG [:= expr] ;
//! relation    := RELATION block* END RELATION ;
//! block       := PROCEDURAL FOR ctxs => stmt*
//!              | EQUATION  FOR ctxs => (expr == expr ;)*
//! stmt        := id := expr ;
//!              | branch %= expr ;
//!              | IF expr THEN stmt* (ELSIF expr THEN stmt*)* [ELSE stmt*] END IF ;
//!              | ASSERT expr [REPORT string] ;
//!              | REPORT string ;
//! branch      := [ id , id ] . id
//! expr        := or-level precedence climbing, `**` right-assoc
//! ```

use crate::ast::*;
use crate::error::{HdlError, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword as Kw, Token, TokenKind as Tk};

/// Parses a full module (any number of entities and architectures).
///
/// # Errors
///
/// Returns [`HdlError::Lex`] or [`HdlError::Parse`] with a source span
/// on malformed input.
pub fn parse(src: &str) -> Result<Module> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut module = Module::default();
    loop {
        match p.peek() {
            Tk::Eof => return Ok(module),
            Tk::Keyword(Kw::Entity) => module.entities.push(p.entity()?),
            Tk::Keyword(Kw::Architecture) => module.architectures.push(p.architecture()?),
            other => return Err(p.error(format!("expected ENTITY or ARCHITECTURE, found {other}"))),
        }
    }
}

/// Parses a single expression (used by tests and the symbolic layer).
///
/// # Errors
///
/// Returns a parse error unless the whole input is one expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(Tk::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tk {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tk {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: String) -> HdlError {
        HdlError::Parse {
            message,
            span: self.span(),
        }
    }

    fn expect(&mut self, kind: Tk) -> Result<Token> {
        if *self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<Token> {
        self.expect(Tk::Keyword(kw))
    }

    fn eat(&mut self, kind: &Tk) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&Tk::Keyword(kw))
    }

    fn ident(&mut self) -> Result<(String, Span)> {
        match self.peek().clone() {
            Tk::Ident(s) => {
                let sp = self.span();
                self.bump();
                Ok((s, sp))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    // ---------------------------------------------------------- entity

    fn entity(&mut self) -> Result<Entity> {
        let start = self.span();
        self.expect_kw(Kw::Entity)?;
        let (name, _) = self.ident()?;
        self.expect_kw(Kw::Is)?;
        let mut generics = Vec::new();
        let mut pins = Vec::new();
        if self.eat_kw(Kw::Generic) {
            self.expect(Tk::LParen)?;
            loop {
                generics.extend(self.generic_group()?);
                if !self.eat(&Tk::Semicolon) {
                    break;
                }
                // Allow trailing semicolon before `)`.
                if *self.peek() == Tk::RParen {
                    break;
                }
            }
            self.expect(Tk::RParen)?;
            self.expect(Tk::Semicolon)?;
        }
        if self.eat_kw(Kw::Pin) {
            self.expect(Tk::LParen)?;
            loop {
                pins.extend(self.pin_group()?);
                if !self.eat(&Tk::Semicolon) {
                    break;
                }
                if *self.peek() == Tk::RParen {
                    break;
                }
            }
            self.expect(Tk::RParen)?;
            self.expect(Tk::Semicolon)?;
        }
        self.expect_kw(Kw::End)?;
        self.eat_kw(Kw::Entity);
        if let Tk::Ident(trailer) = self.peek().clone() {
            if trailer != name {
                return Err(self.error(format!(
                    "END ENTITY name `{trailer}` does not match `{name}`"
                )));
            }
            self.bump();
        }
        self.expect(Tk::Semicolon)?;
        Ok(Entity {
            name,
            generics,
            pins,
            span: start.merge(self.prev_span()),
        })
    }

    fn generic_group(&mut self) -> Result<Vec<GenericDecl>> {
        let mut names = Vec::new();
        loop {
            let (n, sp) = self.ident()?;
            names.push((n, sp));
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        self.expect(Tk::Colon)?;
        self.expect_kw(Kw::Analog)?;
        let default = if self.eat(&Tk::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(names
            .into_iter()
            .map(|(name, span)| GenericDecl {
                name,
                default: default.clone(),
                span,
            })
            .collect())
    }

    fn pin_group(&mut self) -> Result<Vec<PinDecl>> {
        let mut names = Vec::new();
        loop {
            let (n, sp) = self.ident()?;
            names.push((n, sp));
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        self.expect(Tk::Colon)?;
        let (nature, _) = self.ident()?;
        Ok(names
            .into_iter()
            .map(|(name, span)| PinDecl {
                name,
                nature: nature.clone(),
                span,
            })
            .collect())
    }

    // ---------------------------------------------------- architecture

    fn architecture(&mut self) -> Result<Architecture> {
        let start = self.span();
        self.expect_kw(Kw::Architecture)?;
        let (name, _) = self.ident()?;
        self.expect_kw(Kw::Of)?;
        let (entity, _) = self.ident()?;
        self.expect_kw(Kw::Is)?;
        let mut decls = Vec::new();
        loop {
            let kind = match self.peek() {
                Tk::Keyword(Kw::Variable) => ObjectKind::Variable,
                Tk::Keyword(Kw::State) => ObjectKind::State,
                Tk::Keyword(Kw::Constant) => ObjectKind::Constant,
                Tk::Keyword(Kw::Unknown) => ObjectKind::Unknown,
                _ => break,
            };
            let dstart = self.span();
            self.bump();
            let mut names = Vec::new();
            loop {
                let (n, _) = self.ident()?;
                names.push(n);
                if !self.eat(&Tk::Comma) {
                    break;
                }
            }
            self.expect(Tk::Colon)?;
            self.expect_kw(Kw::Analog)?;
            let init = if self.eat(&Tk::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tk::Semicolon)?;
            decls.push(ObjectDecl {
                kind,
                names,
                init,
                span: dstart.merge(self.prev_span()),
            });
        }
        self.expect_kw(Kw::Begin)?;
        let relation = self.relation()?;
        self.expect_kw(Kw::End)?;
        self.eat_kw(Kw::Architecture);
        if let Tk::Ident(trailer) = self.peek().clone() {
            if trailer != name {
                return Err(self.error(format!(
                    "END ARCHITECTURE name `{trailer}` does not match `{name}`"
                )));
            }
            self.bump();
        }
        self.expect(Tk::Semicolon)?;
        Ok(Architecture {
            name,
            entity,
            decls,
            relation,
            span: start.merge(self.prev_span()),
        })
    }

    fn relation(&mut self) -> Result<Relation> {
        self.expect_kw(Kw::Relation)?;
        let mut blocks = Vec::new();
        loop {
            match self.peek() {
                Tk::Keyword(Kw::Procedural) => {
                    let span = self.span();
                    self.bump();
                    self.expect_kw(Kw::For)?;
                    let contexts = self.context_list()?;
                    self.expect(Tk::Arrow)?;
                    let stmts = self.stmts_until_block_end()?;
                    blocks.push(Block::Procedural {
                        contexts,
                        stmts,
                        span,
                    });
                }
                Tk::Keyword(Kw::Equation) => {
                    let span = self.span();
                    self.bump();
                    self.expect_kw(Kw::For)?;
                    let contexts = self.context_list()?;
                    self.expect(Tk::Arrow)?;
                    let mut equations = Vec::new();
                    while !matches!(
                        self.peek(),
                        Tk::Keyword(Kw::Procedural)
                            | Tk::Keyword(Kw::Equation)
                            | Tk::Keyword(Kw::End)
                    ) {
                        let estart = self.span();
                        let lhs = self.expr()?;
                        self.expect(Tk::EqEq)?;
                        let rhs = self.expr()?;
                        self.expect(Tk::Semicolon)?;
                        equations.push(EquationStmt {
                            lhs,
                            rhs,
                            span: estart.merge(self.prev_span()),
                        });
                    }
                    blocks.push(Block::Equation {
                        contexts,
                        equations,
                        span,
                    });
                }
                _ => break,
            }
        }
        self.expect_kw(Kw::End)?;
        self.expect_kw(Kw::Relation)?;
        self.expect(Tk::Semicolon)?;
        Ok(Relation { blocks })
    }

    fn context_list(&mut self) -> Result<Vec<Ctx>> {
        let mut ctxs = Vec::new();
        loop {
            let (name, sp) = self.ident()?;
            let ctx = Ctx::from_name(&name).ok_or_else(|| HdlError::Parse {
                message: format!(
                    "unknown analysis context `{name}` (expected init, dc, ac, transient)"
                ),
                span: sp,
            })?;
            ctxs.push(ctx);
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        Ok(ctxs)
    }

    fn stmts_until_block_end(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !matches!(
            self.peek(),
            Tk::Keyword(Kw::Procedural)
                | Tk::Keyword(Kw::Equation)
                | Tk::Keyword(Kw::End)
                | Tk::Keyword(Kw::Elsif)
                | Tk::Keyword(Kw::Else)
        ) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            Tk::Ident(name) => {
                self.bump();
                self.expect(Tk::Assign)?;
                let value = self.expr()?;
                self.expect(Tk::Semicolon)?;
                Ok(Stmt::Assign {
                    target: name,
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
            Tk::LBracket => {
                let branch = self.branch_ref()?;
                self.expect(Tk::Contribute)?;
                let value = self.expr()?;
                self.expect(Tk::Semicolon)?;
                Ok(Stmt::Contribute {
                    branch,
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
            Tk::Keyword(Kw::If) => self.if_stmt(),
            Tk::Keyword(Kw::Assert) => {
                self.bump();
                let cond = self.expr()?;
                let message = if self.eat_kw(Kw::Report) {
                    match self.peek().clone() {
                        Tk::Str(s) => {
                            self.bump();
                            s
                        }
                        other => return Err(self.error(format!("expected string, found {other}"))),
                    }
                } else {
                    "assertion failed".to_string()
                };
                self.expect(Tk::Semicolon)?;
                Ok(Stmt::Assert {
                    cond,
                    message,
                    span: start.merge(self.prev_span()),
                })
            }
            Tk::Keyword(Kw::Report) => {
                self.bump();
                let message = match self.peek().clone() {
                    Tk::Str(s) => {
                        self.bump();
                        s
                    }
                    other => return Err(self.error(format!("expected string, found {other}"))),
                };
                self.expect(Tk::Semicolon)?;
                Ok(Stmt::Report {
                    message,
                    span: start.merge(self.prev_span()),
                })
            }
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.expect_kw(Kw::If)?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect_kw(Kw::Then)?;
        let body = self.stmts_until_block_end()?;
        arms.push((cond, body));
        let mut otherwise = Vec::new();
        loop {
            if self.eat_kw(Kw::Elsif) {
                let c = self.expr()?;
                self.expect_kw(Kw::Then)?;
                let b = self.stmts_until_block_end()?;
                arms.push((c, b));
            } else if self.eat_kw(Kw::Else) {
                otherwise = self.stmts_until_block_end()?;
                break;
            } else {
                break;
            }
        }
        self.expect_kw(Kw::End)?;
        self.expect_kw(Kw::If)?;
        self.expect(Tk::Semicolon)?;
        Ok(Stmt::If {
            arms,
            otherwise,
            span: start.merge(self.prev_span()),
        })
    }

    fn branch_ref(&mut self) -> Result<BranchRef> {
        let start = self.span();
        self.expect(Tk::LBracket)?;
        let (pin_a, _) = self.ident()?;
        self.expect(Tk::Comma)?;
        let (pin_b, _) = self.ident()?;
        self.expect(Tk::RBracket)?;
        self.expect(Tk::Dot)?;
        let (quantity, _) = self.ident()?;
        Ok(BranchRef {
            pin_a,
            pin_b,
            quantity,
            span: start.merge(self.prev_span()),
        })
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Kw::And) {
            let rhs = self.not_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if *self.peek() == Tk::Keyword(Kw::Not) {
            let start = self.span();
            self.bump();
            let e = self.not_expr()?;
            let span = start.merge(e.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
                span,
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // NB: `==` is reserved for EQUATION statements; inside
        // expressions equality is VHDL-style `=`.
        let op = match self.peek() {
            Tk::Eq => BinOp::Eq,
            Tk::NotEq => BinOp::Ne,
            Tk::Lt => BinOp::Lt,
            Tk::Le => BinOp::Le,
            Tk::Gt => BinOp::Gt,
            Tk::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tk::Plus => BinOp::Add,
                Tk::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tk::Star => BinOp::Mul,
                Tk::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Tk::Minus => {
                let start = self.span();
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span());
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    span,
                })
            }
            Tk::Plus => {
                self.bump();
                self.unary()
            }
            _ => self.power(),
        }
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.primary()?;
        if self.eat(&Tk::StarStar) {
            // Right associative: 2**3**2 = 2**(3**2).
            let exp = self.unary()?;
            let span = base.span().merge(exp.span());
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
                span,
            });
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tk::Number(n) => {
                self.bump();
                Ok(Expr::Num(n, start))
            }
            Tk::Keyword(Kw::True) => {
                self.bump();
                Ok(Expr::Bool(true, start))
            }
            Tk::Keyword(Kw::False) => {
                self.bump();
                Ok(Expr::Bool(false, start))
            }
            Tk::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tk::RParen)?;
                Ok(e)
            }
            Tk::LBracket => Ok(Expr::Branch(self.branch_ref()?)),
            Tk::Ident(name) => {
                if *self.peek2() == Tk::LParen {
                    self.bump();
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tk::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tk::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tk::RParen)?;
                    Ok(Expr::Call {
                        name,
                        args,
                        span: start.merge(self.prev_span()),
                    })
                } else {
                    self.bump();
                    Ok(Expr::Ident(name, start))
                }
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 1, verbatim up to whitespace.
    pub const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

    #[test]
    fn parses_listing1_verbatim() {
        let m = parse(LISTING1).unwrap();
        assert_eq!(m.entities.len(), 1);
        assert_eq!(m.architectures.len(), 1);
        let e = &m.entities[0];
        assert_eq!(e.name, "eletran");
        assert_eq!(
            e.generics
                .iter()
                .map(|g| g.name.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "d", "er"]
        );
        assert_eq!(e.pins.len(), 4);
        assert_eq!(e.pins[0].nature, "electrical");
        assert_eq!(e.pins[3].nature, "mechanical1");
        let a = &m.architectures[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.entity, "eletran");
        assert_eq!(a.decls.len(), 2);
        assert_eq!(a.decls[0].kind, ObjectKind::Variable);
        assert_eq!(a.decls[1].kind, ObjectKind::State);
        assert_eq!(a.relation.blocks.len(), 2);
        match &a.relation.blocks[1] {
            Block::Procedural {
                contexts, stmts, ..
            } => {
                assert_eq!(contexts, &vec![Ctx::Ac, Ctx::Transient]);
                assert_eq!(stmts.len(), 5);
                assert!(matches!(stmts[4], Stmt::Contribute { .. }));
            }
            other => panic!("unexpected block {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul_chain() {
        // -a*b parses as (-a)*b.
        let e = parse_expr("-a*b").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => {
                assert!(matches!(*lhs, Expr::Unary { op: UnOp::Neg, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let e = parse_expr("2 ** 3 ** 2").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Pow,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_reads_in_expressions() {
        let e = parse_expr("[a, b].v * 2.0").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => match *lhs {
                Expr::Branch(b) => {
                    assert_eq!(b.pin_a, "a");
                    assert_eq!(b.pin_b, "b");
                    assert_eq!(b.quantity, "v");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elsif_else() {
        let src = r#"
ENTITY t IS PIN (p, q : electrical); END ENTITY t;
ARCHITECTURE a OF t IS
VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      IF [p, q].v > 1.0 THEN
        y := 1.0;
      ELSIF [p, q].v < -1.0 THEN
        y := -1.0;
      ELSE
        y := 0.0;
      END IF;
      [p, q].i %= y;
  END RELATION;
END ARCHITECTURE a;
"#;
        let m = parse(src).unwrap();
        match &m.architectures[0].relation.blocks[0] {
            Block::Procedural { stmts, .. } => match &stmts[0] {
                Stmt::If {
                    arms, otherwise, ..
                } => {
                    assert_eq!(arms.len(), 2);
                    assert_eq!(otherwise.len(), 1);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assert_and_report() {
        let src = r#"
ENTITY t IS PIN (p, q : electrical); END ENTITY t;
ARCHITECTURE a OF t IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      ASSERT [p, q].v < 100.0 REPORT "overvoltage";
      REPORT "evaluated";
      [p, q].i %= 0.0;
  END RELATION;
END ARCHITECTURE a;
"#;
        let m = parse(src).unwrap();
        match &m.architectures[0].relation.blocks[0] {
            Block::Procedural { stmts, .. } => {
                assert!(
                    matches!(&stmts[0], Stmt::Assert { message, .. } if message == "overvoltage")
                );
                assert!(
                    matches!(&stmts[1], Stmt::Report { message, .. } if message == "evaluated")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equation_block_with_unknown() {
        let src = r#"
ENTITY sq IS GENERIC (k : analog := 2.0); PIN (p, q : electrical); END ENTITY sq;
ARCHITECTURE a OF sq IS
UNKNOWN u : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= u;
    EQUATION FOR dc, ac, transient =>
      u * u == k * [p, q].v;
  END RELATION;
END ARCHITECTURE a;
"#;
        let m = parse(src).unwrap();
        let default = m.entities[0].generics[0].default.as_ref().unwrap();
        assert!(default.structurally_eq(&Expr::num(2.0)));
        match &m.architectures[0].relation.blocks[1] {
            Block::Equation {
                equations,
                contexts,
                ..
            } => {
                assert_eq!(equations.len(), 1);
                assert_eq!(contexts.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mismatched_end_name_is_rejected() {
        let src = "ENTITY foo IS END ENTITY bar;";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn error_spans_point_at_problem() {
        let src = "ENTITY e IS GENERIC (a : analog) END ENTITY e;";
        let err = parse(src).unwrap_err();
        // Missing `;` after the generic clause.
        let rendered = err.render(src);
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn empty_call_and_nested_calls() {
        let e = parse_expr("max(min(a, b), abs(-c))").unwrap();
        match e {
            Expr::Call { name, args, .. } => {
                assert_eq!(name, "max");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }
}
