//! Hand-written lexer for the HDL-A subset.
//!
//! The language is case-insensitive; identifiers are lowercased during
//! lexing. Comments run from `--` (VHDL style) or `//` to end of line.

use crate::error::{HdlError, Result};
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Lexes `src` into a token vector terminated by an `Eof` token.
///
/// # Errors
///
/// Returns [`HdlError::Lex`] on malformed numbers, unterminated
/// strings, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start),
                });
                return Ok(out);
            };
            let kind = match c {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semicolon),
                b'.' => {
                    // Distinguish member access from a leading-dot number like `.5`.
                    if self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
                        self.number(start)?
                    } else {
                        self.single(TokenKind::Dot)
                    }
                }
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => {
                    self.pos += 1;
                    if self.peek() == Some(b'*') {
                        self.pos += 1;
                        TokenKind::StarStar
                    } else {
                        TokenKind::Star
                    }
                }
                b'/' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::NotEq
                    } else {
                        TokenKind::Slash
                    }
                }
                b':' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::Assign
                    } else {
                        TokenKind::Colon
                    }
                }
                b'%' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::Contribute
                    } else {
                        return Err(self.err(start, "expected `%=`"));
                    }
                }
                b'=' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'>') => {
                            self.pos += 1;
                            TokenKind::Arrow
                        }
                        Some(b'=') => {
                            self.pos += 1;
                            TokenKind::EqEq
                        }
                        _ => TokenKind::Eq,
                    }
                }
                b'<' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                b'"' => self.string(start)?,
                c if c.is_ascii_digit() => self.number(start)?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(start),
                c => return Err(self.err(start, &format!("unexpected character `{}`", c as char))),
            };
            out.push(Token {
                kind,
                span: Span::new(start, self.pos),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'-') if self.bytes.get(self.pos + 1) == Some(&b'-') => {
                    self.skip_to_eol();
                }
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'/') => {
                    self.skip_to_eol();
                }
                _ => return,
            }
        }
    }

    fn skip_to_eol(&mut self) {
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == b'\n' {
                break;
            }
        }
    }

    fn ident(&mut self, start: usize) -> TokenKind {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = self.src[start..self.pos].to_ascii_lowercase();
        match Keyword::from_ident(&text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(text),
        }
    }

    fn number(&mut self, start: usize) -> Result<TokenKind> {
        // digits [. digits] [(e|E) [+|-] digits]
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
        {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        } else if self.peek() == Some(b'.')
            && !self
                .bytes
                .get(self.pos + 1)
                .is_some_and(|c| c.is_ascii_alphabetic())
        {
            // Trailing dot as in `2.`: consume it (but not `2.v`).
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mark = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `2end`): back off.
                self.pos = mark;
            }
        }
        let text = &self.src[start..self.pos];
        let trimmed = text.strip_suffix('.').unwrap_or(text);
        trimmed
            .parse::<f64>()
            .map(TokenKind::Number)
            .map_err(|_| self.err(start, &format!("malformed number `{text}`")))
    }

    fn string(&mut self, start: usize) -> Result<TokenKind> {
        self.pos += 1; // opening quote
        let content_start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let content = self.src[content_start..self.pos].to_string();
                self.pos += 1;
                return Ok(TokenKind::Str(content));
            }
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
        Err(self.err(start, "unterminated string literal"))
    }

    fn err(&self, start: usize, msg: &str) -> HdlError {
        HdlError::Lex {
            message: msg.to_string(),
            span: Span::new(start, (start + 1).min(self.src.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_listing1_fragment() {
        let toks = kinds("[a, b].i %= e0*er*A/(d + x)*ddt(V);");
        assert_eq!(
            toks,
            vec![
                TokenKind::LBracket,
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::RBracket,
                TokenKind::Dot,
                TokenKind::Ident("i".into()),
                TokenKind::Contribute,
                TokenKind::Ident("e0".into()),
                TokenKind::Star,
                TokenKind::Ident("er".into()),
                TokenKind::Star,
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::LParen,
                TokenKind::Ident("d".into()),
                TokenKind::Plus,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Star,
                TokenKind::Ident("ddt".into()),
                TokenKind::LParen,
                TokenKind::Ident("v".into()),
                TokenKind::RParen,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(
            kinds("8.8542e-12"),
            vec![TokenKind::Number(8.8542e-12), TokenKind::Eof]
        );
        assert_eq!(
            kinds("1.0E-4"),
            vec![TokenKind::Number(1.0e-4), TokenKind::Eof]
        );
        assert_eq!(
            kinds("2e3"),
            vec![TokenKind::Number(2000.0), TokenKind::Eof]
        );
        assert_eq!(kinds("42"), vec![TokenKind::Number(42.0), TokenKind::Eof]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5), TokenKind::Eof]);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("ENTITY entity Entity"),
            vec![
                TokenKind::Keyword(Keyword::Entity),
                TokenKind::Keyword(Keyword::Entity),
                TokenKind::Keyword(Keyword::Entity),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_lowercased() {
        assert_eq!(
            kinds("Volt V_2"),
            vec![
                TokenKind::Ident("volt".into()),
                TokenKind::Ident("v_2".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("x := 1; -- VHDL comment\ny := 2; // C++ comment\nz");
        assert_eq!(toks.len(), 10);
        assert_eq!(toks[8], TokenKind::Ident("z".into()));
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds(":= %= => == = /= <= >= ** < >"),
            vec![
                TokenKind::Assign,
                TokenKind::Contribute,
                TokenKind::Arrow,
                TokenKind::EqEq,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::StarStar,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds("\"gap closed\""),
            vec![TokenKind::Str("gap closed".into()), TokenKind::Eof]
        );
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("#").is_err());
        assert!(lex("%").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn minus_is_not_comment_start() {
        let toks = kinds("a - b");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }
}
