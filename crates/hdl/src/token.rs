//! Token definitions for the HDL-A lexer.

use crate::span::Span;
use std::fmt;

/// Keywords of the language (case-insensitive in source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Entity,
    Is,
    Generic,
    Pin,
    End,
    Architecture,
    Of,
    Begin,
    Variable,
    State,
    Constant,
    Unknown,
    Analog,
    Relation,
    Procedural,
    Equation,
    For,
    If,
    Then,
    Elsif,
    Else,
    Assert,
    Report,
    And,
    Or,
    Not,
    True,
    False,
}

impl Keyword {
    /// Parses a keyword from a (lowercased) identifier.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "entity" => Keyword::Entity,
            "is" => Keyword::Is,
            "generic" => Keyword::Generic,
            "pin" => Keyword::Pin,
            "end" => Keyword::End,
            "architecture" => Keyword::Architecture,
            "of" => Keyword::Of,
            "begin" => Keyword::Begin,
            "variable" => Keyword::Variable,
            "state" => Keyword::State,
            "constant" => Keyword::Constant,
            "unknown" => Keyword::Unknown,
            "analog" => Keyword::Analog,
            "relation" => Keyword::Relation,
            "procedural" => Keyword::Procedural,
            "equation" => Keyword::Equation,
            "for" => Keyword::For,
            "if" => Keyword::If,
            "then" => Keyword::Then,
            "elsif" => Keyword::Elsif,
            "else" => Keyword::Else,
            "assert" => Keyword::Assert,
            "report" => Keyword::Report,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            "true" => Keyword::True,
            "false" => Keyword::False,
            _ => return None,
        })
    }

    /// Canonical (upper-case) spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Entity => "ENTITY",
            Keyword::Is => "IS",
            Keyword::Generic => "GENERIC",
            Keyword::Pin => "PIN",
            Keyword::End => "END",
            Keyword::Architecture => "ARCHITECTURE",
            Keyword::Of => "OF",
            Keyword::Begin => "BEGIN",
            Keyword::Variable => "VARIABLE",
            Keyword::State => "STATE",
            Keyword::Constant => "CONSTANT",
            Keyword::Unknown => "UNKNOWN",
            Keyword::Analog => "ANALOG",
            Keyword::Relation => "RELATION",
            Keyword::Procedural => "PROCEDURAL",
            Keyword::Equation => "EQUATION",
            Keyword::For => "FOR",
            Keyword::If => "IF",
            Keyword::Then => "THEN",
            Keyword::Elsif => "ELSIF",
            Keyword::Else => "ELSE",
            Keyword::Assert => "ASSERT",
            Keyword::Report => "REPORT",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
        }
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (lowercased; the language is case-insensitive).
    Ident(String),
    /// Reserved word.
    Keyword(Keyword),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string literal (content, unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `:=`
    Assign,
    /// `%=`
    Contribute,
    /// `=>`
    Arrow,
    /// `==`
    EqEq,
    /// `=`
    Eq,
    /// `/=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Assign => write!(f, "`:=`"),
            TokenKind::Contribute => write!(f, "`%=`"),
            TokenKind::Arrow => write!(f, "`=>`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::NotEq => write!(f, "`/=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::StarStar => write!(f, "`**`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}
