//! Abstract syntax tree of the HDL-A subset.
//!
//! The tree is name-based (resolution happens in [`crate::sema`]) so
//! it can also serve as the target of programmatic model *generation*:
//! the energy methodology in `mems-core` and the PXT code generator
//! build these nodes directly and render them with [`crate::print`].

use crate::span::Span;

/// A parsed compilation unit: entities and architectures in source
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Entity declarations.
    pub entities: Vec<Entity>,
    /// Architecture bodies.
    pub architectures: Vec<Architecture>,
}

impl Module {
    /// Finds an entity by (lowercased) name.
    pub fn entity(&self, name: &str) -> Option<&Entity> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Finds an architecture of `entity`, optionally by name.
    pub fn architecture(&self, entity: &str, arch: Option<&str>) -> Option<&Architecture> {
        self.architectures
            .iter()
            .find(|a| a.entity == entity && arch.is_none_or(|n| a.name == n))
    }
}

/// `ENTITY name IS GENERIC (…); PIN (…); END ENTITY name;`
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Entity name (lowercased).
    pub name: String,
    /// Generic parameters in declaration order.
    pub generics: Vec<GenericDecl>,
    /// Pins in declaration order.
    pub pins: Vec<PinDecl>,
    /// Source span of the declaration.
    pub span: Span,
}

/// One generic parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericDecl {
    /// Parameter name (lowercased).
    pub name: String,
    /// Optional default value expression (must be constant).
    pub default: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// One pin with its nature name (resolved in sema).
#[derive(Debug, Clone, PartialEq)]
pub struct PinDecl {
    /// Pin name (lowercased).
    pub name: String,
    /// Nature name as written (e.g. `electrical`, `mechanical1`).
    pub nature: String,
    /// Source span.
    pub span: Span,
}

/// `ARCHITECTURE name OF entity IS decls BEGIN relation END;`
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    /// Architecture name (lowercased).
    pub name: String,
    /// Name of the entity this body implements.
    pub entity: String,
    /// Object declarations (variables, states, constants, unknowns).
    pub decls: Vec<ObjectDecl>,
    /// The relation section.
    pub relation: Relation,
    /// Source span.
    pub span: Span,
}

/// Kinds of declared objects in an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// Plain variable; recomputed in every evaluation pass.
    Variable,
    /// State variable; keeps its value across time steps (readable
    /// before assignment, yielding the previous value).
    State,
    /// Named constant; must have an initializer.
    Constant,
    /// Extra scalar unknown solved by the enclosing simulator via
    /// `EQUATION` residuals (the paper's implicit "equation block").
    Unknown,
}

/// One object declaration line (possibly declaring several names).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDecl {
    /// Kind of object.
    pub kind: ObjectKind,
    /// Declared names (lowercased).
    pub names: Vec<String>,
    /// Optional initializer (required for constants).
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// The `RELATION … END RELATION;` section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Procedural and equation blocks in source order.
    pub blocks: Vec<Block>,
}

/// Analysis contexts a block can be bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ctx {
    /// One-time elaboration (constant set-up).
    Init,
    /// DC operating point.
    Dc,
    /// Small-signal AC.
    Ac,
    /// Time-domain transient.
    Transient,
}

impl Ctx {
    /// Parses a context name.
    pub fn from_name(s: &str) -> Option<Ctx> {
        Some(match s {
            "init" => Ctx::Init,
            "dc" => Ctx::Dc,
            "ac" => Ctx::Ac,
            "transient" | "tran" => Ctx::Transient,
            _ => return None,
        })
    }

    /// Canonical source spelling.
    pub fn name(self) -> &'static str {
        match self {
            Ctx::Init => "init",
            Ctx::Dc => "dc",
            Ctx::Ac => "ac",
            Ctx::Transient => "transient",
        }
    }
}

/// A block inside `RELATION`.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// `PROCEDURAL FOR ctx, … => stmts`
    Procedural {
        /// Contexts this block participates in.
        contexts: Vec<Ctx>,
        /// Statements.
        stmts: Vec<Stmt>,
        /// Source span of the header.
        span: Span,
    },
    /// `EQUATION FOR ctx, … => lhs == rhs; …`
    Equation {
        /// Contexts this block participates in.
        contexts: Vec<Ctx>,
        /// Implicit equations (`lhs == rhs`).
        equations: Vec<EquationStmt>,
        /// Source span of the header.
        span: Span,
    },
}

/// One implicit equation `lhs == rhs;`.
#[derive(Debug, Clone, PartialEq)]
pub struct EquationStmt {
    /// Left-hand side.
    pub lhs: Expr,
    /// Right-hand side.
    pub rhs: Expr,
    /// Source span.
    pub span: Span,
}

/// Procedural statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name := expr;`
    Assign {
        /// Target object name.
        target: String,
        /// Value expression.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `[a, b].q %= expr;`
    Contribute {
        /// Branch the contribution flows through.
        branch: BranchRef,
        /// Contribution expression.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `IF c THEN … ELSIF c THEN … ELSE … END IF;`
    If {
        /// `(condition, body)` pairs: the IF arm plus each ELSIF arm.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// ELSE body (empty when absent).
        otherwise: Vec<Stmt>,
        /// Source span.
        span: Span,
    },
    /// `ASSERT cond REPORT "msg";` — run-time validity check (the
    /// paper: "the validity of boundary conditions may be verified in
    /// these models during run-time").
    Assert {
        /// Condition that must hold.
        cond: Expr,
        /// Message reported on failure.
        message: String,
        /// Source span.
        span: Span,
    },
    /// `REPORT "msg";` — diagnostic print.
    Report {
        /// Message text.
        message: String,
        /// Source span.
        span: Span,
    },
}

/// A branch between two pins with a quantity accessor, `[a, b].q`.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchRef {
    /// First (positive) pin name.
    pub pin_a: String,
    /// Second (negative) pin name.
    pub pin_b: String,
    /// Quantity name (`v`, `i`, `tv`, `f`, …).
    pub quantity: String,
    /// Source span.
    pub span: Span,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators (arithmetic, comparison, logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `=` / `==`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Returns `true` for comparison or logical operators (whose
    /// results are boolean-valued 0/1 with zero derivative).
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Identifier (generic, variable, state, constant, or unknown).
    Ident(String, Span),
    /// Branch quantity read, `[a, b].v`.
    Branch(BranchRef),
    /// Function call (builtins only; `integ`, `ddt`, math, `table1d`).
    Call {
        /// Function name (lowercased).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s) | Expr::Bool(_, s) | Expr::Ident(_, s) => *s,
            Expr::Branch(b) => b.span,
            Expr::Call { span, .. } | Expr::Unary { span, .. } | Expr::Binary { span, .. } => *span,
        }
    }

    /// Convenience constructor: numeric literal without position.
    pub fn num(v: f64) -> Expr {
        Expr::Num(v, Span::default())
    }

    /// Convenience constructor: identifier without position.
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(name.to_ascii_lowercase(), Span::default())
    }

    /// Convenience constructor: binary node without position.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span: Span::default(),
        }
    }

    /// Convenience constructor: `lhs + rhs`.
    // These are static constructors on an AST type, not arithmetic on
    // values — the `ops` traits don't fit (no `self`, span-less).
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// Convenience constructor: `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }

    /// Convenience constructor: `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }

    /// Convenience constructor: `lhs / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, lhs, rhs)
    }

    /// Convenience constructor: unary negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(e: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(e),
            span: Span::default(),
        }
    }

    /// Convenience constructor: function call without position.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.to_ascii_lowercase(),
            args,
            span: Span::default(),
        }
    }

    /// Structural equality ignoring spans (used by golden tests and
    /// the symbolic simplifier).
    pub fn structurally_eq(&self, other: &Expr) -> bool {
        match (self, other) {
            (Expr::Num(a, _), Expr::Num(b, _)) => a == b || (a.is_nan() && b.is_nan()),
            (Expr::Bool(a, _), Expr::Bool(b, _)) => a == b,
            (Expr::Ident(a, _), Expr::Ident(b, _)) => a == b,
            (Expr::Branch(a), Expr::Branch(b)) => {
                a.pin_a == b.pin_a && a.pin_b == b.pin_b && a.quantity == b.quantity
            }
            (
                Expr::Call {
                    name: n1, args: a1, ..
                },
                Expr::Call {
                    name: n2, args: a2, ..
                },
            ) => {
                n1 == n2
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(x, y)| x.structurally_eq(y))
            }
            (
                Expr::Unary {
                    op: o1, expr: e1, ..
                },
                Expr::Unary {
                    op: o2, expr: e2, ..
                },
            ) => o1 == o2 && e1.structurally_eq(e2),
            (
                Expr::Binary {
                    op: o1,
                    lhs: l1,
                    rhs: r1,
                    ..
                },
                Expr::Binary {
                    op: o2,
                    lhs: l2,
                    rhs: r2,
                    ..
                },
            ) => o1 == o2 && l1.structurally_eq(l2) && r1.structurally_eq(r2),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_round_trip() {
        for c in [Ctx::Init, Ctx::Dc, Ctx::Ac, Ctx::Transient] {
            assert_eq!(Ctx::from_name(c.name()), Some(c));
        }
        assert_eq!(Ctx::from_name("tran"), Some(Ctx::Transient));
        assert_eq!(Ctx::from_name("nope"), None);
    }

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::mul(Expr::ident("A"), Expr::num(2.0));
        match &e {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => match lhs.as_ref() {
                Expr::Ident(n, _) => assert_eq!(n, "a"),
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn structural_equality_ignores_spans() {
        let a = Expr::Num(1.0, Span::new(0, 1));
        let b = Expr::Num(1.0, Span::new(5, 6));
        assert!(a.structurally_eq(&b));
        assert!(!a.structurally_eq(&Expr::num(2.0)));
        let c1 = Expr::call("sin", vec![Expr::ident("x")]);
        let c2 = Expr::call("SIN", vec![Expr::ident("X")]);
        assert!(c1.structurally_eq(&c2));
    }

    #[test]
    fn boolean_operator_classification() {
        assert!(BinOp::Lt.is_boolean());
        assert!(BinOp::And.is_boolean());
        assert!(!BinOp::Add.is_boolean());
        assert!(!BinOp::Pow.is_boolean());
    }

    #[test]
    fn module_lookup() {
        let m = Module {
            entities: vec![Entity {
                name: "eletran".into(),
                generics: vec![],
                pins: vec![],
                span: Span::default(),
            }],
            architectures: vec![Architecture {
                name: "a".into(),
                entity: "eletran".into(),
                decls: vec![],
                relation: Relation::default(),
                span: Span::default(),
            }],
        };
        assert!(m.entity("eletran").is_some());
        assert!(m.architecture("eletran", None).is_some());
        assert!(m.architecture("eletran", Some("a")).is_some());
        assert!(m.architecture("eletran", Some("b")).is_none());
        assert!(m.entity("nope").is_none());
    }
}
