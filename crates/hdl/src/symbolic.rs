//! Symbolic differentiation and simplification on the AST.
//!
//! This mechanizes the paper's modeling recipe ("derive the energy in
//! the transducer with respect to the state variable of each port to
//! obtain the respective effort variable"): `mems-core` builds the
//! internal-energy expression symbolically, differentiates it here,
//! and emits the resulting effort expressions as HDL-A source.

use crate::ast::{BinOp, Expr, UnOp};
use crate::error::{HdlError, Result};

/// Differentiates `e` with respect to the identifier `var`.
///
/// Supports the algebraic subset used by energy expressions:
/// arithmetic, `**` with constant exponent, `sqrt`, `exp`, `ln`,
/// `sin`, `cos`, `tan`, `tanh`, `abs` (away from 0) and `pow`.
///
/// # Errors
///
/// Returns [`HdlError::Elab`] for constructs without a simple
/// symbolic derivative (branch reads, `ddt`/`integ`, comparisons).
pub fn diff(e: &Expr, var: &str) -> Result<Expr> {
    let var = var.to_ascii_lowercase();
    diff_inner(e, &var)
}

fn diff_inner(e: &Expr, var: &str) -> Result<Expr> {
    Ok(match e {
        Expr::Num(..) | Expr::Bool(..) => Expr::num(0.0),
        Expr::Ident(name, _) => {
            if name == var {
                Expr::num(1.0)
            } else {
                Expr::num(0.0)
            }
        }
        Expr::Unary { op, expr, .. } => match op {
            UnOp::Neg => Expr::neg(diff_inner(expr, var)?),
            UnOp::Not => {
                return Err(HdlError::Elab(
                    "cannot differentiate a logical expression".into(),
                ))
            }
        },
        Expr::Binary { op, lhs, rhs, .. } => match op {
            BinOp::Add => Expr::add(diff_inner(lhs, var)?, diff_inner(rhs, var)?),
            BinOp::Sub => Expr::sub(diff_inner(lhs, var)?, diff_inner(rhs, var)?),
            BinOp::Mul => Expr::add(
                Expr::mul(diff_inner(lhs, var)?, rhs.as_ref().clone()),
                Expr::mul(lhs.as_ref().clone(), diff_inner(rhs, var)?),
            ),
            BinOp::Div => {
                // (u/v)' = (u'v − uv')/v²
                let u = lhs.as_ref().clone();
                let v = rhs.as_ref().clone();
                Expr::div(
                    Expr::sub(
                        Expr::mul(diff_inner(lhs, var)?, v.clone()),
                        Expr::mul(u, diff_inner(rhs, var)?),
                    ),
                    Expr::mul(v.clone(), v),
                )
            }
            BinOp::Pow => {
                // Constant exponent only: (u^c)' = c·u^(c−1)·u'.
                let c = match rhs.as_ref() {
                    Expr::Num(c, _) => *c,
                    _ => {
                        return Err(HdlError::Elab(
                            "`**` with a non-constant exponent is not differentiable \
                             symbolically here"
                                .into(),
                        ))
                    }
                };
                Expr::mul(
                    Expr::mul(
                        Expr::num(c),
                        Expr::bin(BinOp::Pow, lhs.as_ref().clone(), Expr::num(c - 1.0)),
                    ),
                    diff_inner(lhs, var)?,
                )
            }
            _ => {
                return Err(HdlError::Elab(
                    "cannot differentiate a comparison or logical expression".into(),
                ))
            }
        },
        Expr::Call { name, args, .. } => {
            let d_arg = |i: usize| diff_inner(&args[i], var);
            let arg = |i: usize| args[i].clone();
            match name.as_str() {
                "sqrt" => Expr::div(
                    d_arg(0)?,
                    Expr::mul(Expr::num(2.0), Expr::call("sqrt", vec![arg(0)])),
                ),
                "exp" => Expr::mul(Expr::call("exp", vec![arg(0)]), d_arg(0)?),
                "ln" | "log" => Expr::div(d_arg(0)?, arg(0)),
                "sin" => Expr::mul(Expr::call("cos", vec![arg(0)]), d_arg(0)?),
                "cos" => Expr::neg(Expr::mul(Expr::call("sin", vec![arg(0)]), d_arg(0)?)),
                "tan" => {
                    // 1 + tan²
                    let t = Expr::call("tan", vec![arg(0)]);
                    Expr::mul(
                        Expr::add(Expr::num(1.0), Expr::mul(t.clone(), t)),
                        d_arg(0)?,
                    )
                }
                "tanh" => {
                    let t = Expr::call("tanh", vec![arg(0)]);
                    Expr::mul(
                        Expr::sub(Expr::num(1.0), Expr::mul(t.clone(), t)),
                        d_arg(0)?,
                    )
                }
                "abs" => Expr::mul(Expr::call("sgn", vec![arg(0)]), d_arg(0)?),
                "pow" => {
                    let c = match &args[1] {
                        Expr::Num(c, _) => *c,
                        _ => {
                            return Err(HdlError::Elab(
                                "`pow` with a non-constant exponent is not \
                                 differentiable symbolically here"
                                    .into(),
                            ))
                        }
                    };
                    Expr::mul(
                        Expr::mul(
                            Expr::num(c),
                            Expr::call("pow", vec![arg(0), Expr::num(c - 1.0)]),
                        ),
                        d_arg(0)?,
                    )
                }
                other => {
                    return Err(HdlError::Elab(format!(
                        "no symbolic derivative rule for `{other}`"
                    )))
                }
            }
        }
        Expr::Branch(_) => {
            return Err(HdlError::Elab(
                "branch quantities cannot be differentiated symbolically".into(),
            ))
        }
    })
}

/// Simplifies an expression: constant folding plus identity/annihilator
/// rules (`x+0`, `x·1`, `x·0`, `x/1`, `−(−x)`, `x−0`, `0−x`, `x^1`,
/// `x^0`). Applied bottom-up to a fixed point.
pub fn simplify(e: &Expr) -> Expr {
    let mut current = e.clone();
    for _ in 0..16 {
        let next = simplify_once(&current);
        if next.structurally_eq(&current) {
            return next;
        }
        current = next;
    }
    current
}

fn is_num(e: &Expr, v: f64) -> bool {
    matches!(e, Expr::Num(x, _) if *x == v)
}

fn as_num(e: &Expr) -> Option<f64> {
    match e {
        Expr::Num(v, _) => Some(*v),
        _ => None,
    }
}

fn simplify_once(e: &Expr) -> Expr {
    match e {
        Expr::Unary { op, expr, .. } => {
            let inner = simplify_once(expr);
            match (op, &inner) {
                (UnOp::Neg, Expr::Num(v, _)) => Expr::num(-v),
                (
                    UnOp::Neg,
                    Expr::Unary {
                        op: UnOp::Neg,
                        expr: inner2,
                        ..
                    },
                ) => inner2.as_ref().clone(),
                _ => Expr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                    span: e.span(),
                },
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = simplify_once(lhs);
            let r = simplify_once(rhs);
            // Constant folding.
            if let (Some(a), Some(b)) = (as_num(&l), as_num(&r)) {
                if !op.is_boolean() {
                    return Expr::num(crate::compile::fold_binop(*op, a, b));
                }
            }
            match op {
                BinOp::Add => {
                    if is_num(&l, 0.0) {
                        return r;
                    }
                    if is_num(&r, 0.0) {
                        return l;
                    }
                }
                BinOp::Sub => {
                    if is_num(&r, 0.0) {
                        return l;
                    }
                    if is_num(&l, 0.0) {
                        return Expr::neg(r);
                    }
                    if l.structurally_eq(&r) {
                        return Expr::num(0.0);
                    }
                }
                BinOp::Mul => {
                    if is_num(&l, 0.0) || is_num(&r, 0.0) {
                        return Expr::num(0.0);
                    }
                    if is_num(&l, 1.0) {
                        return r;
                    }
                    if is_num(&r, 1.0) {
                        return l;
                    }
                    if is_num(&l, -1.0) {
                        return Expr::neg(r);
                    }
                    if is_num(&r, -1.0) {
                        return Expr::neg(l);
                    }
                }
                BinOp::Div => {
                    if is_num(&r, 1.0) {
                        return l;
                    }
                    if is_num(&l, 0.0) && !is_num(&r, 0.0) {
                        return Expr::num(0.0);
                    }
                }
                BinOp::Pow => {
                    if is_num(&r, 1.0) {
                        return l;
                    }
                    if is_num(&r, 0.0) {
                        return Expr::num(1.0);
                    }
                }
                _ => {}
            }
            Expr::bin(*op, l, r)
        }
        Expr::Call { name, args, span } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(simplify_once).collect(),
            span: *span,
        },
        other => other.clone(),
    }
}

/// Numerically evaluates a closed expression with variable bindings
/// (test helper and verification hook for the energy methodology).
///
/// # Errors
///
/// Returns [`HdlError::Eval`] for unbound identifiers or unsupported
/// nodes.
pub fn eval_closed(e: &Expr, bindings: &[(&str, f64)]) -> Result<f64> {
    Ok(match e {
        Expr::Num(v, _) => *v,
        Expr::Bool(b, _) => f64::from(*b),
        Expr::Ident(name, _) => {
            let lower = name.to_ascii_lowercase();
            bindings
                .iter()
                .find(|(k, _)| k.to_ascii_lowercase() == lower)
                .map(|(_, v)| *v)
                .ok_or_else(|| HdlError::Eval(format!("unbound identifier `{name}`")))?
        }
        Expr::Unary { op, expr, .. } => {
            let v = eval_closed(expr, bindings)?;
            match op {
                UnOp::Neg => -v,
                UnOp::Not => f64::from(v == 0.0),
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => crate::compile::fold_binop(
            *op,
            eval_closed(lhs, bindings)?,
            eval_closed(rhs, bindings)?,
        ),
        Expr::Call { name, args, .. } => {
            let vals: Vec<f64> = args
                .iter()
                .map(|a| eval_closed(a, bindings))
                .collect::<Result<_>>()?;
            match crate::compile::Builtin::lookup(name) {
                Some((b, arity)) if arity == vals.len() => crate::compile::fold_builtin(b, &vals),
                _ => {
                    return Err(HdlError::Eval(format!(
                        "cannot evaluate call to `{name}` here"
                    )))
                }
            }
        }
        Expr::Branch(_) => {
            return Err(HdlError::Eval(
                "branch quantities cannot be evaluated in a closed expression".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn d(src: &str, var: &str) -> Expr {
        simplify(&diff(&parse_expr(src).unwrap(), var).unwrap())
    }

    fn check_against_fd(src: &str, var: &str, bindings: &[(&str, f64)]) {
        let e = parse_expr(src).unwrap();
        let de = d(src, var);
        let x0 = bindings
            .iter()
            .find(|(k, _)| *k == var)
            .map(|(_, v)| *v)
            .unwrap();
        let h = 1e-6 * x0.abs().max(1e-3);
        let mut plus = bindings.to_vec();
        let mut minus = bindings.to_vec();
        for (k, v) in plus.iter_mut() {
            if *k == var {
                *v = x0 + h;
            }
        }
        for (k, v) in minus.iter_mut() {
            if *k == var {
                *v = x0 - h;
            }
        }
        let fd = (eval_closed(&e, &plus).unwrap() - eval_closed(&e, &minus).unwrap()) / (2.0 * h);
        let sym = eval_closed(&de, bindings).unwrap();
        assert!(
            (fd - sym).abs() <= 1e-5 * fd.abs().max(1.0),
            "{src} d/d{var}: fd {fd} vs sym {sym}"
        );
    }

    #[test]
    fn polynomial_rules() {
        check_against_fd("x*x*x + 2.0*x - 7.0", "x", &[("x", 1.3)]);
        check_against_fd("(x + 1.0) * (x - 2.0)", "x", &[("x", 0.4)]);
    }

    #[test]
    fn quotient_rule() {
        check_against_fd("1.0 / (d + x)", "x", &[("x", 0.2), ("d", 1.5)]);
        check_against_fd("x / (x + 1.0)", "x", &[("x", 2.0)]);
    }

    #[test]
    fn power_and_sqrt() {
        check_against_fd("x ** 3.0", "x", &[("x", 1.7)]);
        check_against_fd("sqrt(x)", "x", &[("x", 4.0)]);
        check_against_fd("pow(x, 2.0)", "x", &[("x", 3.0)]);
    }

    #[test]
    fn transcendental_rules() {
        check_against_fd("exp(2.0*x)", "x", &[("x", 0.3)]);
        check_against_fd("ln(x)", "x", &[("x", 2.5)]);
        check_against_fd("sin(x)*cos(x)", "x", &[("x", 0.8)]);
        check_against_fd("tanh(x)", "x", &[("x", 0.5)]);
    }

    #[test]
    fn transverse_electrostatic_energy_derivative() {
        // W(q, x) = q²·(d+x)/(2·e0·A): ∂W/∂x = q²/(2·e0·A) — the
        // electrostatic force in the charge formulation (Table 3 shape).
        let dw = d("q*q*(d + x) / (2.0*e0*A)", "x");
        let expect = parse_expr("q*q / (2.0*e0*A)").unwrap();
        let bindings = [
            ("q", 2.0e-9),
            ("d", 1.5e-4),
            ("x", 1.0e-8),
            ("e0", 8.8542e-12),
            ("a", 1.0e-4),
        ];
        let got = eval_closed(&dw, &bindings).unwrap();
        let want = eval_closed(&expect, &bindings).unwrap();
        assert!((got - want).abs() < want.abs() * 1e-12);
    }

    #[test]
    fn voltage_formulation_gives_attractive_force() {
        // Co-energy W*(v, x) = e0·A·v²/(2(d+x)): F = −∂W*/∂x
        // = +e0·A·v²/(2(d+x)²)… with the sign convention of Table 3
        // the plate force is −e0·A·v²/(2(d+x)²).
        let dw = d("e0*A*v*v / (2.0*(d + x))", "x");
        let bindings = [
            ("v", 10.0),
            ("d", 1.5e-4),
            ("x", 0.0),
            ("e0", 8.8542e-12),
            ("a", 1.0e-4),
        ];
        let got = eval_closed(&dw, &bindings).unwrap();
        let expect = -8.8542e-12 * 1e-4 * 100.0 / (2.0 * 1.5e-4 * 1.5e-4);
        assert!((got - expect).abs() < expect.abs() * 1e-12);
    }

    #[test]
    fn simplify_identities() {
        assert!(d("x", "x").structurally_eq(&Expr::num(1.0)));
        assert!(d("y", "x").structurally_eq(&Expr::num(0.0)));
        assert!(simplify(&parse_expr("x + 0.0").unwrap()).structurally_eq(&Expr::ident("x")));
        assert!(simplify(&parse_expr("1.0 * x").unwrap()).structurally_eq(&Expr::ident("x")));
        assert!(simplify(&parse_expr("x * 0.0").unwrap()).structurally_eq(&Expr::num(0.0)));
        assert!(simplify(&parse_expr("x - x").unwrap()).structurally_eq(&Expr::num(0.0)));
        assert!(simplify(&parse_expr("x ** 1.0").unwrap()).structurally_eq(&Expr::ident("x")));
        assert!(simplify(&parse_expr("2.0 + 3.0 * 4.0").unwrap()).structurally_eq(&Expr::num(14.0)));
    }

    #[test]
    fn unsupported_constructs_error() {
        assert!(diff(&parse_expr("x > 1.0").unwrap(), "x").is_err());
        assert!(diff(&parse_expr("x ** y").unwrap(), "x").is_err());
        assert!(diff(&parse_expr("[a, b].v").unwrap(), "x").is_err());
        assert!(diff(&parse_expr("floor(x)").unwrap(), "x").is_err());
    }

    #[test]
    fn eval_closed_errors() {
        assert!(eval_closed(&parse_expr("zz + 1.0").unwrap(), &[]).is_err());
        assert!(eval_closed(&parse_expr("[a,b].v").unwrap(), &[]).is_err());
    }
}
