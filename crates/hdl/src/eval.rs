//! The dual-number interpreter for compiled models.
//!
//! One generic tree-walking evaluator covers every analysis:
//!
//! - **DC / transient** use [`DualReal`]: a value plus a real gradient
//!   with one entry per circuit unknown, giving the Newton Jacobian
//!   row contributions directly (forward-mode AD).
//! - **AC** uses [`DualComplex`]: the value part is the DC operating
//!   point, the gradient is complex, and `ddt`/`integ` multiply
//!   gradients by `jω` / `1/(jω)` — producing the exact small-signal
//!   linearization of the behavioral model.
//!
//! The enclosing simulator implements [`EvalEnv`] to supply across
//! quantities and receive contributions/residuals.

use crate::ast::{BinOp, UnOp};
use crate::compile::{fold_binop, Builtin, CExpr, CStmt, CompiledModel};
use crate::error::{HdlError, Result};
use mems_numerics::ode::{DiffFormula, IntegFormula, IntegrationMethod};
use mems_numerics::pwl::Pwl1;
use mems_numerics::Complex64;

/// A scalar with a (dense) gradient over the circuit unknowns.
// `len` is the gradient dimension; an "empty" AD scalar has no meaning.
#[allow(clippy::len_without_is_empty)]
pub trait AdScalar: Clone + std::fmt::Debug {
    /// Gradient entry type.
    type Grad: Copy;

    /// A constant with `n` zero gradient entries.
    fn constant(v: f64, n: usize) -> Self;
    /// The value part.
    fn value(&self) -> f64;
    /// Gradient length.
    fn len(&self) -> usize;
    /// Element-wise addition.
    fn add(&self, o: &Self) -> Self;
    /// Element-wise subtraction.
    fn sub(&self, o: &Self) -> Self;
    /// Product rule.
    fn mul(&self, o: &Self) -> Self;
    /// Quotient rule.
    fn div(&self, o: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// Unary chain rule: result value `f`, gradient `df·∇self`.
    fn chain(&self, f: f64, df: f64) -> Self;
    /// Binary chain rule: value `f`, gradient `dfa·∇a + dfb·∇b`.
    fn chain2(f: f64, dfa: f64, a: &Self, dfb: f64, b: &Self) -> Self;
    /// Returns `true` when the value and all gradients are finite.
    fn is_finite(&self) -> bool;
    /// AC semantics of `ddt`: op value 0, gradients scaled by `jω`.
    ///
    /// Only meaningful for the complex dual; the real dual returns a
    /// zero constant (it never runs the AC analysis).
    fn ac_ddt(&self, omega: f64) -> Self;
    /// AC semantics of `integ`: op value `y0`, gradients scaled by
    /// `1/(jω)`.
    fn ac_integ(&self, omega: f64, y0: f64) -> Self;

    // In-place variants used by the bytecode VM in
    // [`crate::bytecode`]: semantically identical to the allocating
    // methods above (same operations in the same order, so results
    // are bit-identical), but reusing the receiver's gradient buffer.
    // The defaults delegate to the allocating methods; [`DualReal`]
    // and [`DualComplex`] override them.

    /// `self = constant(v)` reusing the gradient buffer.
    fn set_constant(&mut self, v: f64) {
        *self = Self::constant(v, self.len());
    }
    /// `self = self + o` in place.
    fn add_assign(&mut self, o: &Self) {
        *self = self.add(o);
    }
    /// `self = self − o` in place.
    fn sub_assign(&mut self, o: &Self) {
        *self = self.sub(o);
    }
    /// `self = self · o` in place (product rule).
    fn mul_assign(&mut self, o: &Self) {
        *self = self.mul(o);
    }
    /// `self = self / o` in place (quotient rule).
    fn div_assign(&mut self, o: &Self) {
        *self = self.div(o);
    }
    /// `self = −self` in place.
    fn neg_assign(&mut self) {
        *self = self.neg();
    }
    /// `self = self.chain(f, df)` in place.
    fn chain_assign(&mut self, f: f64, df: f64) {
        *self = self.chain(f, df);
    }
    /// `self = chain2(f, dfa, self, dfb, b)` in place.
    fn chain2_assign(&mut self, f: f64, dfa: f64, dfb: f64, b: &Self) {
        *self = Self::chain2(f, dfa, self, dfb, b);
    }
    /// `self = self.ac_ddt(omega)` in place.
    fn ac_ddt_assign(&mut self, omega: f64) {
        *self = self.ac_ddt(omega);
    }
    /// `self = self.ac_integ(omega, y0)` in place.
    fn ac_integ_assign(&mut self, omega: f64, y0: f64) {
        *self = self.ac_integ(omega, y0);
    }
}

/// Real-valued dual: value + gradient per unknown.
#[derive(Debug, Clone, PartialEq)]
pub struct DualReal {
    /// Value.
    pub v: f64,
    /// Gradient entries.
    pub g: Vec<f64>,
}

impl DualReal {
    /// A seeded variable: value `v`, unit gradient at `slot`.
    pub fn variable(v: f64, n: usize, slot: usize) -> Self {
        let mut g = vec![0.0; n];
        g[slot] = 1.0;
        DualReal { v, g }
    }
}

impl AdScalar for DualReal {
    type Grad = f64;

    fn constant(v: f64, n: usize) -> Self {
        DualReal { v, g: vec![0.0; n] }
    }

    fn value(&self) -> f64 {
        self.v
    }

    fn len(&self) -> usize {
        self.g.len()
    }

    fn add(&self, o: &Self) -> Self {
        DualReal {
            v: self.v + o.v,
            g: self.g.iter().zip(&o.g).map(|(a, b)| a + b).collect(),
        }
    }

    fn sub(&self, o: &Self) -> Self {
        DualReal {
            v: self.v - o.v,
            g: self.g.iter().zip(&o.g).map(|(a, b)| a - b).collect(),
        }
    }

    fn mul(&self, o: &Self) -> Self {
        DualReal {
            v: self.v * o.v,
            g: self
                .g
                .iter()
                .zip(&o.g)
                .map(|(a, b)| a * o.v + b * self.v)
                .collect(),
        }
    }

    fn div(&self, o: &Self) -> Self {
        let inv = 1.0 / o.v;
        let v = self.v * inv;
        DualReal {
            v,
            g: self
                .g
                .iter()
                .zip(&o.g)
                .map(|(a, b)| (a - v * b) * inv)
                .collect(),
        }
    }

    fn neg(&self) -> Self {
        DualReal {
            v: -self.v,
            g: self.g.iter().map(|a| -a).collect(),
        }
    }

    fn chain(&self, f: f64, df: f64) -> Self {
        DualReal {
            v: f,
            g: self.g.iter().map(|a| df * a).collect(),
        }
    }

    fn chain2(f: f64, dfa: f64, a: &Self, dfb: f64, b: &Self) -> Self {
        DualReal {
            v: f,
            g: a.g
                .iter()
                .zip(&b.g)
                .map(|(x, y)| dfa * x + dfb * y)
                .collect(),
        }
    }

    fn is_finite(&self) -> bool {
        self.v.is_finite() && self.g.iter().all(|x| x.is_finite())
    }

    fn ac_ddt(&self, _omega: f64) -> Self {
        DualReal::constant(0.0, self.len())
    }

    fn ac_integ(&self, _omega: f64, y0: f64) -> Self {
        DualReal::constant(y0, self.len())
    }

    fn set_constant(&mut self, v: f64) {
        self.v = v;
        self.g.fill(0.0);
    }

    fn add_assign(&mut self, o: &Self) {
        self.v += o.v;
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a += b;
        }
    }

    fn sub_assign(&mut self, o: &Self) {
        self.v -= o.v;
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a -= b;
        }
    }

    fn mul_assign(&mut self, o: &Self) {
        // Gradients first: the product rule reads the pre-update value.
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a = *a * o.v + *b * self.v;
        }
        self.v *= o.v;
    }

    fn div_assign(&mut self, o: &Self) {
        let inv = 1.0 / o.v;
        let v = self.v * inv;
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a = (*a - v * *b) * inv;
        }
        self.v = v;
    }

    fn neg_assign(&mut self) {
        self.v = -self.v;
        for a in &mut self.g {
            *a = -*a;
        }
    }

    fn chain_assign(&mut self, f: f64, df: f64) {
        self.v = f;
        for a in &mut self.g {
            *a *= df;
        }
    }

    fn chain2_assign(&mut self, f: f64, dfa: f64, dfb: f64, b: &Self) {
        self.v = f;
        for (x, y) in self.g.iter_mut().zip(&b.g) {
            *x = dfa * *x + dfb * *y;
        }
    }

    fn ac_ddt_assign(&mut self, _omega: f64) {
        self.set_constant(0.0);
    }

    fn ac_integ_assign(&mut self, _omega: f64, y0: f64) {
        self.set_constant(y0);
    }
}

/// Complex-gradient dual for AC small-signal analysis: the value is
/// the (real) DC operating point, the gradient carries phasors.
#[derive(Debug, Clone, PartialEq)]
pub struct DualComplex {
    /// Operating-point value.
    pub v: f64,
    /// Complex gradient entries.
    pub g: Vec<Complex64>,
}

impl DualComplex {
    /// A seeded variable: op value `v`, unit gradient at `slot`.
    pub fn variable(v: f64, n: usize, slot: usize) -> Self {
        let mut g = vec![Complex64::ZERO; n];
        g[slot] = Complex64::ONE;
        DualComplex { v, g }
    }

    /// Multiplies every gradient entry by a complex factor (used by
    /// the AC `ddt`/`integ` rules), with an explicit result value.
    pub fn scale_grads(&self, value: f64, k: Complex64) -> Self {
        DualComplex {
            v: value,
            g: self.g.iter().map(|z| *z * k).collect(),
        }
    }
}

impl AdScalar for DualComplex {
    type Grad = Complex64;

    fn constant(v: f64, n: usize) -> Self {
        DualComplex {
            v,
            g: vec![Complex64::ZERO; n],
        }
    }

    fn value(&self) -> f64 {
        self.v
    }

    fn len(&self) -> usize {
        self.g.len()
    }

    fn add(&self, o: &Self) -> Self {
        DualComplex {
            v: self.v + o.v,
            g: self.g.iter().zip(&o.g).map(|(a, b)| *a + *b).collect(),
        }
    }

    fn sub(&self, o: &Self) -> Self {
        DualComplex {
            v: self.v - o.v,
            g: self.g.iter().zip(&o.g).map(|(a, b)| *a - *b).collect(),
        }
    }

    fn mul(&self, o: &Self) -> Self {
        // First-order (small-signal) product rule around the op point.
        DualComplex {
            v: self.v * o.v,
            g: self
                .g
                .iter()
                .zip(&o.g)
                .map(|(a, b)| *a * o.v + *b * self.v)
                .collect(),
        }
    }

    fn div(&self, o: &Self) -> Self {
        let inv = 1.0 / o.v;
        let v = self.v * inv;
        DualComplex {
            v,
            g: self
                .g
                .iter()
                .zip(&o.g)
                .map(|(a, b)| (*a - *b * v) * inv)
                .collect(),
        }
    }

    fn neg(&self) -> Self {
        DualComplex {
            v: -self.v,
            g: self.g.iter().map(|a| -*a).collect(),
        }
    }

    fn chain(&self, f: f64, df: f64) -> Self {
        DualComplex {
            v: f,
            g: self.g.iter().map(|a| *a * df).collect(),
        }
    }

    fn chain2(f: f64, dfa: f64, a: &Self, dfb: f64, b: &Self) -> Self {
        DualComplex {
            v: f,
            g: a.g
                .iter()
                .zip(&b.g)
                .map(|(x, y)| *x * dfa + *y * dfb)
                .collect(),
        }
    }

    fn is_finite(&self) -> bool {
        self.v.is_finite() && self.g.iter().all(|z| z.is_finite())
    }

    fn ac_ddt(&self, omega: f64) -> Self {
        self.scale_grads(0.0, Complex64::new(0.0, omega))
    }

    fn ac_integ(&self, omega: f64, y0: f64) -> Self {
        self.scale_grads(y0, Complex64::new(0.0, omega).recip())
    }

    fn set_constant(&mut self, v: f64) {
        self.v = v;
        self.g.fill(Complex64::ZERO);
    }

    fn add_assign(&mut self, o: &Self) {
        self.v += o.v;
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a += *b;
        }
    }

    fn sub_assign(&mut self, o: &Self) {
        self.v -= o.v;
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a -= *b;
        }
    }

    fn mul_assign(&mut self, o: &Self) {
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a = *a * o.v + *b * self.v;
        }
        self.v *= o.v;
    }

    fn div_assign(&mut self, o: &Self) {
        let inv = 1.0 / o.v;
        let v = self.v * inv;
        for (a, b) in self.g.iter_mut().zip(&o.g) {
            *a = (*a - *b * v) * inv;
        }
        self.v = v;
    }

    fn neg_assign(&mut self) {
        self.v = -self.v;
        for a in &mut self.g {
            *a = -*a;
        }
    }

    fn chain_assign(&mut self, f: f64, df: f64) {
        self.v = f;
        for a in &mut self.g {
            *a = *a * df;
        }
    }

    fn chain2_assign(&mut self, f: f64, dfa: f64, dfb: f64, b: &Self) {
        self.v = f;
        for (x, y) in self.g.iter_mut().zip(&b.g) {
            *x = *x * dfa + *y * dfb;
        }
    }

    fn ac_ddt_assign(&mut self, omega: f64) {
        let k = Complex64::new(0.0, omega);
        self.v = 0.0;
        for z in &mut self.g {
            *z *= k;
        }
    }

    fn ac_integ_assign(&mut self, omega: f64, y0: f64) {
        let k = Complex64::new(0.0, omega).recip();
        self.v = y0;
        for z in &mut self.g {
            *z *= k;
        }
    }
}

/// Interface the enclosing simulator implements to host a model
/// evaluation pass.
pub trait EvalEnv<S: AdScalar> {
    /// Number of gradient entries (circuit unknowns seen by this
    /// instance: its pins' node unknowns plus its extra unknowns).
    fn n_grad(&self) -> usize;
    /// Across quantity of the branch with the given slot.
    fn across(&self, branch: usize) -> S;
    /// Value of the extra unknown with the given index.
    fn unknown(&self, index: usize) -> S;
    /// Receives a through contribution into a branch.
    fn contribute(&mut self, branch: usize, value: S);
    /// Receives an implicit-equation residual.
    fn residual(&mut self, index: usize, value: S);
    /// Receives a `REPORT` diagnostic.
    fn report(&mut self, message: &str);
}

/// Per-site `ddt` history.
#[derive(Debug, Clone, Copy, Default)]
pub struct DdtHistory {
    /// Previous argument value.
    pub x_prev: f64,
    /// Previous derivative value.
    pub dx_prev: f64,
    /// Argument value one step before `x_prev` (Gear-2).
    pub x_prev2: f64,
    /// Previous step size.
    pub h_prev: f64,
    /// Whether at least one point has been committed.
    pub primed: bool,
    /// Whether at least two points have been committed.
    pub primed2: bool,
}

/// Per-site `integ` history.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntegHistory {
    /// Committed integral value.
    pub y_prev: f64,
    /// Committed integrand value.
    pub x_prev: f64,
    /// Whether the site has been initialized (IC applied).
    pub primed: bool,
}

/// Mutable run-time storage of one model instance.
#[derive(Debug, Clone, Default)]
pub struct InstanceState {
    /// Committed values of `STATE` objects (by object slot).
    pub committed: Vec<f64>,
    /// `ddt` site histories.
    pub ddt_sites: Vec<DdtHistory>,
    /// `integ` site histories.
    pub integ_sites: Vec<IntegHistory>,
    /// Scratch: object values of the latest evaluation pass.
    pub scratch_objects: Vec<f64>,
    /// Scratch: `(x, dx/dt)` of the latest pass per ddt site.
    pub scratch_ddt: Vec<(f64, f64)>,
    /// Scratch: `(y, x)` of the latest pass per integ site.
    pub scratch_integ: Vec<(f64, f64)>,
    /// Reports emitted during the latest pass.
    pub reports: Vec<String>,
}

impl InstanceState {
    /// Allocates storage for a model.
    pub fn for_model(model: &CompiledModel) -> Self {
        InstanceState {
            committed: vec![0.0; model.objects.len()],
            ddt_sites: vec![DdtHistory::default(); model.n_ddt_sites],
            integ_sites: vec![IntegHistory::default(); model.n_integ_sites],
            scratch_objects: vec![0.0; model.objects.len()],
            scratch_ddt: vec![(0.0, 0.0); model.n_ddt_sites],
            scratch_integ: vec![(0.0, 0.0); model.n_integ_sites],
            reports: Vec::new(),
        }
    }

    /// Accepts the latest transient evaluation as the new history
    /// (call after the Newton loop converges and the step passes LTE).
    pub fn commit_transient(&mut self, h: f64) {
        for (site, scratch) in self.ddt_sites.iter_mut().zip(&self.scratch_ddt) {
            site.x_prev2 = site.x_prev;
            site.primed2 = site.primed;
            site.x_prev = scratch.0;
            site.dx_prev = scratch.1;
            site.h_prev = h;
            site.primed = true;
        }
        for (site, scratch) in self.integ_sites.iter_mut().zip(&self.scratch_integ) {
            site.y_prev = scratch.0;
            site.x_prev = scratch.1;
            site.primed = true;
        }
        self.committed.copy_from_slice(&self.scratch_objects);
    }

    /// Accepts a converged DC solution as consistent initial history:
    /// derivatives are zero at the operating point, integrals sit at
    /// their initial conditions.
    pub fn commit_dc(&mut self) {
        for (site, scratch) in self.ddt_sites.iter_mut().zip(&self.scratch_ddt) {
            site.x_prev = scratch.0;
            site.dx_prev = 0.0;
            site.x_prev2 = scratch.0;
            site.h_prev = 0.0;
            site.primed = true;
            site.primed2 = false;
        }
        for (site, scratch) in self.integ_sites.iter_mut().zip(&self.scratch_integ) {
            site.y_prev = scratch.0;
            site.x_prev = scratch.1;
            site.primed = true;
        }
        self.committed.copy_from_slice(&self.scratch_objects);
    }
}

/// Which analysis the evaluator is running.
#[derive(Debug, Clone, Copy)]
pub enum Analysis {
    /// DC operating point: `ddt → 0`, `integ → IC` (or committed value).
    Dc,
    /// Transient step at time `t` with step `h` and an implicit method.
    Transient {
        /// Absolute time of the new point.
        t: f64,
        /// Step size.
        h: f64,
        /// Integration method.
        method: IntegrationMethod,
    },
    /// Small-signal AC at angular frequency `omega`.
    Ac {
        /// Angular frequency [rad/s].
        omega: f64,
    },
}

/// Evaluates one analysis pass of a compiled model.
///
/// `generics` are the bound parameter values, `init_values` the object
/// values produced by the `init` program (NaN = not set), `tables` the
/// elaborated PWL tables.
///
/// # Errors
///
/// Returns [`HdlError::Eval`] on non-finite intermediate values,
/// failed assertions, or reads of never-assigned variables.
#[allow(clippy::too_many_arguments)]
pub fn run_pass<S: AdScalar>(
    model: &CompiledModel,
    analysis: Analysis,
    generics: &[f64],
    init_values: &[Option<f64>],
    tables: &[Pwl1],
    state: &mut InstanceState,
    env: &mut dyn EvalEnv<S>,
) -> Result<()> {
    let n = env.n_grad();
    let program = match analysis {
        Analysis::Dc => &model.dc_program,
        Analysis::Transient { .. } => &model.tran_program,
        Analysis::Ac { .. } => &model.ac_program,
    };
    // Object slot initialization.
    let mut slots: Vec<Option<S>> = Vec::with_capacity(model.objects.len());
    for (i, obj) in model.objects.iter().enumerate() {
        use crate::ast::ObjectKind::*;
        let slot = match obj.kind {
            Constant | Variable => init_values[i].map(|v| S::constant(v, n)),
            State => Some(S::constant(state.committed[i], n)),
            Unknown => Some(env.unknown(obj.unknown_index.expect("unknown has index"))),
        };
        slots.push(slot);
    }
    state.reports.clear();
    let mut ev = Evaluator {
        model,
        analysis,
        generics,
        tables,
        state,
        slots,
        env,
        n,
    };
    ev.run_block(program)?;
    // Record object values for commit.
    for (i, slot) in ev.slots.iter().enumerate() {
        if let Some(s) = slot {
            ev.state.scratch_objects[i] = s.value();
        }
    }
    Ok(())
}

struct Evaluator<'a, S: AdScalar> {
    model: &'a CompiledModel,
    analysis: Analysis,
    generics: &'a [f64],
    tables: &'a [Pwl1],
    state: &'a mut InstanceState,
    slots: Vec<Option<S>>,
    env: &'a mut dyn EvalEnv<S>,
    n: usize,
}

impl<'a, S: AdScalar> Evaluator<'a, S> {
    fn run_block(&mut self, stmts: &[CStmt]) -> Result<()> {
        for stmt in stmts {
            match stmt {
                CStmt::Assign { object, value } => {
                    let v = self.eval(value)?;
                    self.slots[*object] = Some(v);
                }
                CStmt::Contribute { branch, value } => {
                    let v = self.eval(value)?;
                    if !v.is_finite() {
                        return Err(HdlError::Eval(format!(
                            "non-finite contribution in model `{}`",
                            self.model.name
                        )));
                    }
                    self.env.contribute(*branch, v);
                }
                CStmt::If { arms, otherwise } => {
                    let mut taken = false;
                    for (cond, body) in arms {
                        if self.eval(cond)?.value() != 0.0 {
                            self.run_block(body)?;
                            taken = true;
                            break;
                        }
                    }
                    if !taken {
                        self.run_block(otherwise)?;
                    }
                }
                CStmt::Assert { cond, message } => {
                    if self.eval(cond)?.value() == 0.0 {
                        return Err(HdlError::Eval(format!(
                            "assertion failed in model `{}`: {message}",
                            self.model.name
                        )));
                    }
                }
                CStmt::Report { message } => {
                    self.state.reports.push(message.clone());
                    self.env.report(message);
                }
                CStmt::Residual { index, lhs, rhs } => {
                    let l = self.eval(lhs)?;
                    let r = self.eval(rhs)?;
                    self.env.residual(*index, l.sub(&r));
                }
            }
        }
        Ok(())
    }

    fn eval(&mut self, e: &CExpr) -> Result<S> {
        Ok(match e {
            CExpr::Const(v) => S::constant(*v, self.n),
            CExpr::Generic(i) => S::constant(self.generics[*i], self.n),
            CExpr::Object(i) => match &self.slots[*i] {
                Some(s) => s.clone(),
                None => {
                    return Err(HdlError::Eval(format!(
                        "read of unassigned variable `{}` in model `{}`",
                        self.model.objects[*i].name, self.model.name
                    )))
                }
            },
            CExpr::Across(b) => self.env.across(*b),
            CExpr::Time => {
                let t = match self.analysis {
                    Analysis::Transient { t, .. } => t,
                    _ => 0.0,
                };
                S::constant(t, self.n)
            }
            CExpr::Unary(op, inner) => {
                let x = self.eval(inner)?;
                match op {
                    UnOp::Neg => x.neg(),
                    UnOp::Not => S::constant(f64::from(x.value() == 0.0), self.n),
                }
            }
            CExpr::Binary(op, a, b) => {
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                self.binary(*op, &x, &y)
            }
            CExpr::Call(builtin, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.builtin(*builtin, &vals)?
            }
            CExpr::Ddt { site, arg } => {
                let x = self.eval(arg)?;
                self.ddt(*site, &x)
            }
            CExpr::Integ { site, arg, ic } => {
                let x = self.eval(arg)?;
                self.integ(*site, &x, *ic)
            }
            CExpr::Table { site, arg } => {
                let x = self.eval(arg)?;
                let table = &self.tables[*site];
                let f = table.eval(x.value());
                let df = table.deriv(x.value());
                x.chain(f, df)
            }
        })
    }

    fn binary(&self, op: BinOp, a: &S, b: &S) -> S {
        match op {
            BinOp::Add => a.add(b),
            BinOp::Sub => a.sub(b),
            BinOp::Mul => a.mul(b),
            BinOp::Div => a.div(b),
            BinOp::Pow => pow_impl(a, b, self.n),
            _ => {
                // Boolean-valued: constant 0/1, zero gradient.
                S::constant(fold_binop(op, a.value(), b.value()), self.n)
            }
        }
    }

    fn builtin(&self, b: Builtin, args: &[S]) -> Result<S> {
        let a0 = &args[0];
        let v0 = a0.value();
        Ok(match b {
            Builtin::Atan2 => {
                let y = v0;
                let x = args[1].value();
                let denom = x * x + y * y;
                S::chain2(y.atan2(x), x / denom, a0, -y / denom, &args[1])
            }
            Builtin::Pow => pow_impl(a0, &args[1], self.n),
            Builtin::Min => {
                if v0 <= args[1].value() {
                    a0.clone()
                } else {
                    args[1].clone()
                }
            }
            Builtin::Max => {
                if v0 >= args[1].value() {
                    a0.clone()
                } else {
                    args[1].clone()
                }
            }
            Builtin::Sgn | Builtin::Floor | Builtin::Ceil => {
                let (f, _) = chain_coeffs(b, v0);
                S::constant(f, self.n)
            }
            Builtin::Limit => {
                let (lo, hi) = (args[1].value(), args[2].value());
                if v0 < lo {
                    args[1].clone()
                } else if v0 > hi {
                    args[2].clone()
                } else {
                    a0.clone()
                }
            }
            _ => {
                let (f, df) = chain_coeffs(b, v0);
                a0.chain(f, df)
            }
        })
    }

    fn ddt(&mut self, site: usize, x: &S) -> S {
        match plan_ddt(self.analysis, &self.state.ddt_sites[site], x.value()) {
            DdtPlan::DcZero => {
                self.state.scratch_ddt[site] = (x.value(), 0.0);
                S::constant(0.0, self.n)
            }
            DdtPlan::Chain { f, df } => {
                self.state.scratch_ddt[site] = (x.value(), f);
                x.chain(f, df)
            }
            DdtPlan::Ac { omega } => x.ac_ddt(omega),
        }
    }

    fn integ(&mut self, site: usize, x: &S, ic: f64) -> S {
        match plan_integ(self.analysis, &self.state.integ_sites[site], x.value(), ic) {
            IntegPlan::DcConst { y } => {
                self.state.scratch_integ[site] = (y, x.value());
                S::constant(y, self.n)
            }
            IntegPlan::Chain { f, gain } => {
                self.state.scratch_integ[site] = (f, x.value());
                x.chain(f, gain)
            }
            IntegPlan::Ac { omega, y0 } => x.ac_integ(omega, y0),
        }
    }
}

/// What a `ddt` call site must do under the current analysis: shared
/// by the tree-walking evaluator and the bytecode VM so the two
/// produce bit-identical numerics.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DdtPlan {
    /// DC: result is the zero constant.
    DcZero,
    /// Transient: `out = chain(f, df)` of the argument.
    Chain {
        /// Result value (`d/dt` of the argument under the formula).
        f: f64,
        /// Jacobian gain (`∂(ddt x)/∂x`).
        df: f64,
    },
    /// AC: gradients scale by `jω`, value 0.
    Ac {
        /// Angular frequency.
        omega: f64,
    },
}

/// Computes the [`DdtPlan`] of a site from its committed history and
/// the argument value `xv`.
pub(crate) fn plan_ddt(analysis: Analysis, hist: &DdtHistory, xv: f64) -> DdtPlan {
    match analysis {
        Analysis::Dc => DdtPlan::DcZero,
        Analysis::Transient { h, method, .. } => {
            // A site with no committed history yet differentiates
            // against an implicit flat start (BE from x itself → 0
            // at the very first evaluation is wrong; instead treat
            // the pre-step value as x_prev = committed or current).
            let (x_prev, dx_prev, x_prev2, h_prev, have2) = if hist.primed {
                (
                    hist.x_prev,
                    hist.dx_prev,
                    hist.x_prev2,
                    hist.h_prev,
                    hist.primed2,
                )
            } else {
                (xv, 0.0, xv, h, false)
            };
            let effective = match method {
                IntegrationMethod::Trapezoidal if !hist.primed => IntegrationMethod::BackwardEuler,
                m => m,
            };
            let f = DiffFormula::new(effective, h, x_prev, dx_prev, x_prev2, h_prev, have2);
            DdtPlan::Chain {
                f: f.ddt(xv),
                df: f.c0,
            }
        }
        Analysis::Ac { omega } => DdtPlan::Ac { omega },
    }
}

/// What an `integ` call site must do under the current analysis.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IntegPlan {
    /// DC: result is the committed integral (or the IC).
    DcConst {
        /// Constant result value.
        y: f64,
    },
    /// Transient: `out = chain(f, gain)` of the integrand.
    Chain {
        /// Result value (the integral at the step end).
        f: f64,
        /// Jacobian gain (`∂(integ x)/∂x`).
        gain: f64,
    },
    /// AC: gradients scale by `1/(jω)`, value `y0`.
    Ac {
        /// Angular frequency.
        omega: f64,
        /// Operating-point value of the integral.
        y0: f64,
    },
}

/// Computes the [`IntegPlan`] of a site from its committed history,
/// the integrand value `xv`, and the initial condition `ic`.
pub(crate) fn plan_integ(analysis: Analysis, hist: &IntegHistory, xv: f64, ic: f64) -> IntegPlan {
    match analysis {
        Analysis::Dc => IntegPlan::DcConst {
            y: if hist.primed { hist.y_prev } else { ic },
        },
        Analysis::Transient { h, method, .. } => {
            let (y_prev, x_prev) = if hist.primed {
                (hist.y_prev, hist.x_prev)
            } else {
                (ic, xv)
            };
            let f = IntegFormula::new(method, h, y_prev, x_prev);
            IntegPlan::Chain {
                f: f.integ(xv),
                gain: f.gain,
            }
        }
        Analysis::Ac { omega } => IntegPlan::Ac {
            omega,
            y0: if hist.primed { hist.y_prev } else { ic },
        },
    }
}

/// `(value, derivative)` of the chain-rule builtins at `v0`. `Sgn`,
/// `Floor`, and `Ceil` report derivative 0 (they evaluate to
/// gradient-free constants); the selection builtins (`Min`/`Max`/
/// `Limit`) and the two-sided `Atan2`/`Pow` are not chain-shaped and
/// must not be routed here.
pub(crate) fn chain_coeffs(b: Builtin, v0: f64) -> (f64, f64) {
    match b {
        Builtin::Abs => (v0.abs(), if v0 < 0.0 { -1.0 } else { 1.0 }),
        Builtin::Sqrt => {
            let s = v0.sqrt();
            (s, 0.5 / s)
        }
        Builtin::Exp => {
            let e = v0.exp();
            (e, e)
        }
        Builtin::Ln => (v0.ln(), 1.0 / v0),
        Builtin::Log10 => (v0.log10(), 1.0 / (v0 * std::f64::consts::LN_10)),
        Builtin::Sin => (v0.sin(), v0.cos()),
        Builtin::Cos => (v0.cos(), -v0.sin()),
        Builtin::Tan => {
            let t = v0.tan();
            (t, 1.0 + t * t)
        }
        Builtin::Asin => (v0.asin(), 1.0 / (1.0 - v0 * v0).sqrt()),
        Builtin::Acos => (v0.acos(), -1.0 / (1.0 - v0 * v0).sqrt()),
        Builtin::Atan => (v0.atan(), 1.0 / (1.0 + v0 * v0)),
        Builtin::Sinh => (v0.sinh(), v0.cosh()),
        Builtin::Cosh => (v0.cosh(), v0.sinh()),
        Builtin::Tanh => {
            let t = v0.tanh();
            (t, 1.0 - t * t)
        }
        Builtin::Sgn => (
            if v0 > 0.0 {
                1.0
            } else if v0 < 0.0 {
                -1.0
            } else {
                0.0
            },
            0.0,
        ),
        Builtin::Floor => (v0.floor(), 0.0),
        Builtin::Ceil => (v0.ceil(), 0.0),
        Builtin::Atan2 | Builtin::Pow | Builtin::Min | Builtin::Max | Builtin::Limit => {
            unreachable!("{b:?} is not a chain-rule builtin")
        }
    }
}

/// `a ** b` with dual arithmetic (guards the log term at `a ≤ 0`).
pub(crate) fn pow_impl<S: AdScalar>(a: &S, b: &S, _n: usize) -> S {
    let (f, dfa, dfb) = pow_coeffs(a.value(), b.value());
    S::chain2(f, dfa, a, dfb, b)
}

/// `(value, ∂/∂a, ∂/∂b)` of `a ** b` — the scalar core of
/// [`pow_impl`], shared with the bytecode VM.
pub(crate) fn pow_coeffs(x: f64, y: f64) -> (f64, f64, f64) {
    let f = x.powf(y);
    let dfa = if x == 0.0 { 0.0 } else { y * x.powf(y - 1.0) };
    let dfb = if x > 0.0 { f * x.ln() } else { 0.0 };
    (f, dfa, dfb)
}
