//! Compiled (resolved, slot-indexed) model representation.
//!
//! [`crate::sema`] lowers the name-based AST into this form once; the
//! evaluator in [`crate::eval`] then interprets it with dual-number
//! arithmetic every Newton iteration without any name lookups.

use crate::ast::{BinOp, ObjectKind, UnOp};
use crate::error::{HdlError, Result};
use crate::nature::Nature;
use crate::span::Span;

/// Built-in scalar functions available in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `abs(x)`
    Abs,
    /// `sqrt(x)`
    Sqrt,
    /// `exp(x)`
    Exp,
    /// `ln(x)`
    Ln,
    /// `log10(x)`
    Log10,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `asin(x)`
    Asin,
    /// `acos(x)`
    Acos,
    /// `atan(x)`
    Atan,
    /// `atan2(y, x)`
    Atan2,
    /// `sinh(x)`
    Sinh,
    /// `cosh(x)`
    Cosh,
    /// `tanh(x)`
    Tanh,
    /// `pow(x, y)` (same as `x ** y`)
    Pow,
    /// `min(x, y)`
    Min,
    /// `max(x, y)`
    Max,
    /// `sgn(x)`
    Sgn,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `limit(x, lo, hi)` — clamp with unit pass-through slope inside.
    Limit,
}

impl Builtin {
    /// Resolves a function name; returns the builtin and its arity.
    pub fn lookup(name: &str) -> Option<(Builtin, usize)> {
        Some(match name {
            "abs" => (Builtin::Abs, 1),
            "sqrt" => (Builtin::Sqrt, 1),
            "exp" => (Builtin::Exp, 1),
            "ln" | "log" => (Builtin::Ln, 1),
            "log10" => (Builtin::Log10, 1),
            "sin" => (Builtin::Sin, 1),
            "cos" => (Builtin::Cos, 1),
            "tan" => (Builtin::Tan, 1),
            "asin" => (Builtin::Asin, 1),
            "acos" => (Builtin::Acos, 1),
            "atan" => (Builtin::Atan, 1),
            "atan2" => (Builtin::Atan2, 2),
            "sinh" => (Builtin::Sinh, 1),
            "cosh" => (Builtin::Cosh, 1),
            "tanh" => (Builtin::Tanh, 1),
            "pow" => (Builtin::Pow, 2),
            "min" => (Builtin::Min, 2),
            "max" => (Builtin::Max, 2),
            "sgn" | "sign" => (Builtin::Sgn, 1),
            "floor" => (Builtin::Floor, 1),
            "ceil" => (Builtin::Ceil, 1),
            "limit" => (Builtin::Limit, 3),
            _ => return None,
        })
    }
}

/// Resolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Literal.
    Const(f64),
    /// Generic parameter by slot.
    Generic(usize),
    /// Declared object (variable/state/constant/unknown) by slot.
    Object(usize),
    /// Across quantity of a branch by slot.
    Across(usize),
    /// Simulation time (0 in dc/ac).
    Time,
    /// Unary operation.
    Unary(UnOp, Box<CExpr>),
    /// Binary operation.
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    /// Builtin function call.
    Call(Builtin, Vec<CExpr>),
    /// Time derivative call site.
    Ddt {
        /// History slot.
        site: usize,
        /// Differentiated expression.
        arg: Box<CExpr>,
    },
    /// Time integral call site.
    Integ {
        /// History slot.
        site: usize,
        /// Integrand.
        arg: Box<CExpr>,
        /// Initial condition, folded at elaboration (defaults to 0).
        ic: f64,
    },
    /// Piecewise-linear table lookup call site (`table1d`).
    Table {
        /// Table slot (breakpoints folded at elaboration).
        site: usize,
        /// Lookup abscissa.
        arg: Box<CExpr>,
    },
}

/// Resolved statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CStmt {
    /// Object assignment.
    Assign {
        /// Target object slot.
        object: usize,
        /// Value.
        value: CExpr,
    },
    /// Through-quantity contribution into a branch.
    Contribute {
        /// Branch slot.
        branch: usize,
        /// Contribution value.
        value: CExpr,
    },
    /// Conditional.
    If {
        /// `(condition, body)` arms.
        arms: Vec<(CExpr, Vec<CStmt>)>,
        /// Fallback body.
        otherwise: Vec<CStmt>,
    },
    /// Run-time assertion.
    Assert {
        /// Condition that must evaluate nonzero.
        cond: CExpr,
        /// Failure message.
        message: String,
    },
    /// Diagnostic message.
    Report {
        /// Message text.
        message: String,
    },
    /// Implicit-equation residual `lhs − rhs`.
    Residual {
        /// Residual row (pairs with the unknown of the same index).
        index: usize,
        /// Left side.
        lhs: CExpr,
        /// Right side.
        rhs: CExpr,
    },
}

/// A generic parameter slot.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericInfo {
    /// Name (lowercased).
    pub name: String,
    /// Folded default value, when declared.
    pub default: Option<f64>,
}

/// A pin slot.
#[derive(Debug, Clone, PartialEq)]
pub struct PinInfo {
    /// Name (lowercased).
    pub name: String,
    /// Resolved nature.
    pub nature: Nature,
}

/// A branch slot: an ordered pin pair sharing a nature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Positive pin slot.
    pub pin_a: usize,
    /// Negative pin slot.
    pub pin_b: usize,
    /// Nature of both pins.
    pub nature: Nature,
}

/// A declared object slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInfo {
    /// Name (lowercased).
    pub name: String,
    /// Declaration kind.
    pub kind: ObjectKind,
    /// Declaration initializer (unfolded; may reference generics).
    pub init: Option<CExpr>,
    /// For `Unknown` objects: index among the unknowns.
    pub unknown_index: Option<usize>,
}

/// Table breakpoints captured at compile time (folded at elaboration).
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// `(x, y)` breakpoint expressions (constant-foldable).
    pub breakpoints: Vec<(CExpr, CExpr)>,
    /// Source span of the `table1d` call (for diagnostics).
    pub span: Span,
}

/// A fully resolved, analysis-ready model.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    /// Entity name.
    pub name: String,
    /// Architecture name.
    pub arch: String,
    /// Generic slots.
    pub generics: Vec<GenericInfo>,
    /// Pin slots.
    pub pins: Vec<PinInfo>,
    /// Branch slots (all distinct `[a, b]` pairs in the source).
    pub branches: Vec<BranchInfo>,
    /// Object slots.
    pub objects: Vec<ObjectInfo>,
    /// Number of `UNKNOWN` objects (extra scalar unknowns).
    pub n_unknowns: usize,
    /// Number of `ddt` call sites.
    pub n_ddt_sites: usize,
    /// Number of `integ` call sites.
    pub n_integ_sites: usize,
    /// Table specifications (one per `table1d` call site).
    pub tables: Vec<TableSpec>,
    /// One-time initialization program.
    pub init_program: Vec<CStmt>,
    /// DC program (falls back to the transient program when the source
    /// declares no explicit `dc` block).
    pub dc_program: Vec<CStmt>,
    /// AC program (same fallback rule).
    pub ac_program: Vec<CStmt>,
    /// Transient program.
    pub tran_program: Vec<CStmt>,
}

impl CompiledModel {
    /// Looks up a pin slot by name.
    pub fn pin_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.pins.iter().position(|p| p.name == lower)
    }

    /// Looks up a generic slot by name.
    pub fn generic_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.generics.iter().position(|g| g.name == lower)
    }
}

/// Folds a constant expression (generics allowed) to a number.
///
/// # Errors
///
/// Returns [`HdlError::Elab`] when the expression references run-time
/// quantities (branches, objects, time, `ddt`/`integ`/`table1d`).
pub fn fold_const(expr: &CExpr, generics: &[f64]) -> Result<f64> {
    Ok(match expr {
        CExpr::Const(v) => *v,
        CExpr::Generic(i) => generics[*i],
        CExpr::Unary(UnOp::Neg, e) => -fold_const(e, generics)?,
        CExpr::Unary(UnOp::Not, e) => {
            if fold_const(e, generics)? != 0.0 {
                0.0
            } else {
                1.0
            }
        }
        CExpr::Binary(op, a, b) => {
            let x = fold_const(a, generics)?;
            let y = fold_const(b, generics)?;
            fold_binop(*op, x, y)
        }
        CExpr::Call(b, args) => {
            let vals: Vec<f64> = args
                .iter()
                .map(|a| fold_const(a, generics))
                .collect::<Result<_>>()?;
            fold_builtin(*b, &vals)
        }
        other => {
            return Err(HdlError::Elab(format!(
                "expression is not a compile-time constant: {other:?}"
            )))
        }
    })
}

/// Evaluates a binary operator on plain numbers (booleans as 0/1).
pub fn fold_binop(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Pow => x.powf(y),
        BinOp::Eq => f64::from(x == y),
        BinOp::Ne => f64::from(x != y),
        BinOp::Lt => f64::from(x < y),
        BinOp::Le => f64::from(x <= y),
        BinOp::Gt => f64::from(x > y),
        BinOp::Ge => f64::from(x >= y),
        BinOp::And => f64::from(x != 0.0 && y != 0.0),
        BinOp::Or => f64::from(x != 0.0 || y != 0.0),
    }
}

/// Evaluates a builtin on plain numbers.
///
/// Matches the runtime (dual-number) evaluator's value semantics
/// operator by operator — including the comparison-based `min`/`max`/
/// `limit` selection, which differs from `f64::min`/`f64::clamp` on
/// NaN operands (NaN comparisons are false, so the *second* operand
/// wins for `min`/`max` and a NaN input passes through `limit`) and
/// never panics on an inverted `limit` window. The bytecode
/// compiler's constant folder relies on this equality.
pub fn fold_builtin(b: Builtin, a: &[f64]) -> f64 {
    match b {
        Builtin::Abs => a[0].abs(),
        Builtin::Sqrt => a[0].sqrt(),
        Builtin::Exp => a[0].exp(),
        Builtin::Ln => a[0].ln(),
        Builtin::Log10 => a[0].log10(),
        Builtin::Sin => a[0].sin(),
        Builtin::Cos => a[0].cos(),
        Builtin::Tan => a[0].tan(),
        Builtin::Asin => a[0].asin(),
        Builtin::Acos => a[0].acos(),
        Builtin::Atan => a[0].atan(),
        Builtin::Atan2 => a[0].atan2(a[1]),
        Builtin::Sinh => a[0].sinh(),
        Builtin::Cosh => a[0].cosh(),
        Builtin::Tanh => a[0].tanh(),
        Builtin::Pow => a[0].powf(a[1]),
        Builtin::Min => {
            if a[0] <= a[1] {
                a[0]
            } else {
                a[1]
            }
        }
        Builtin::Max => {
            if a[0] >= a[1] {
                a[0]
            } else {
                a[1]
            }
        }
        Builtin::Sgn => {
            if a[0] > 0.0 {
                1.0
            } else if a[0] < 0.0 {
                -1.0
            } else {
                0.0
            }
        }
        Builtin::Floor => a[0].floor(),
        Builtin::Ceil => a[0].ceil(),
        Builtin::Limit => {
            if a[0] < a[1] {
                a[1]
            } else if a[0] > a[2] {
                a[2]
            } else {
                a[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::lookup("sqrt"), Some((Builtin::Sqrt, 1)));
        assert_eq!(Builtin::lookup("atan2"), Some((Builtin::Atan2, 2)));
        assert_eq!(Builtin::lookup("limit"), Some((Builtin::Limit, 3)));
        assert_eq!(Builtin::lookup("log"), Some((Builtin::Ln, 1)));
        assert_eq!(Builtin::lookup("nosuch"), None);
    }

    #[test]
    fn fold_consts_with_generics() {
        // 2·g0 + sqrt(g1)
        let e = CExpr::Binary(
            BinOp::Add,
            Box::new(CExpr::Binary(
                BinOp::Mul,
                Box::new(CExpr::Const(2.0)),
                Box::new(CExpr::Generic(0)),
            )),
            Box::new(CExpr::Call(Builtin::Sqrt, vec![CExpr::Generic(1)])),
        );
        assert_eq!(fold_const(&e, &[3.0, 16.0]).unwrap(), 10.0);
    }

    #[test]
    fn fold_rejects_runtime_quantities() {
        assert!(fold_const(&CExpr::Across(0), &[]).is_err());
        assert!(fold_const(&CExpr::Time, &[]).is_err());
        assert!(fold_const(&CExpr::Object(0), &[]).is_err());
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(fold_binop(BinOp::Pow, 2.0, 10.0), 1024.0);
        assert_eq!(fold_binop(BinOp::Le, 1.0, 1.0), 1.0);
        assert_eq!(fold_binop(BinOp::And, 1.0, 0.0), 0.0);
        assert_eq!(fold_binop(BinOp::Or, 0.0, 2.0), 1.0);
        assert_eq!(fold_binop(BinOp::Ne, 1.0, 2.0), 1.0);
    }

    #[test]
    fn builtin_semantics() {
        assert_eq!(fold_builtin(Builtin::Sgn, &[-3.0]), -1.0);
        assert_eq!(fold_builtin(Builtin::Sgn, &[0.0]), 0.0);
        assert_eq!(fold_builtin(Builtin::Limit, &[5.0, -1.0, 1.0]), 1.0);
        assert_eq!(fold_builtin(Builtin::Min, &[2.0, -2.0]), -2.0);
        assert!(
            (fold_builtin(Builtin::Atan2, &[1.0, 1.0]) - std::f64::consts::FRAC_PI_4).abs() < 1e-15
        );
    }

    #[test]
    fn binop_division_edge_cases() {
        // Division never errors at fold time: IEEE semantics flow
        // through exactly as the runtime evaluator computes them.
        assert_eq!(fold_binop(BinOp::Div, 1.0, 0.0), f64::INFINITY);
        assert_eq!(fold_binop(BinOp::Div, -1.0, 0.0), f64::NEG_INFINITY);
        assert!(fold_binop(BinOp::Div, 0.0, 0.0).is_nan());
        assert_eq!(fold_binop(BinOp::Pow, 0.0, -1.0), f64::INFINITY);
    }

    #[test]
    fn binop_nan_propagation() {
        let nan = f64::NAN;
        assert!(fold_binop(BinOp::Add, nan, 1.0).is_nan());
        assert!(fold_binop(BinOp::Mul, nan, 0.0).is_nan());
        // Comparisons with NaN are false → 0.0 …
        assert_eq!(fold_binop(BinOp::Lt, nan, 1.0), 0.0);
        assert_eq!(fold_binop(BinOp::Ge, nan, 1.0), 0.0);
        assert_eq!(fold_binop(BinOp::Eq, nan, nan), 0.0);
        // … except `!=`, which is true for NaN.
        assert_eq!(fold_binop(BinOp::Ne, nan, nan), 1.0);
        // Logical operators treat NaN as truthy (NaN != 0.0), exactly
        // like the runtime evaluator's zero test.
        assert_eq!(fold_binop(BinOp::And, nan, 1.0), 1.0);
        assert_eq!(fold_binop(BinOp::Or, nan, 0.0), 1.0);
    }

    #[test]
    fn builtin_domain_errors_yield_nan_not_panics() {
        assert!(fold_builtin(Builtin::Sqrt, &[-1.0]).is_nan());
        assert!(fold_builtin(Builtin::Ln, &[-1.0]).is_nan());
        assert_eq!(fold_builtin(Builtin::Ln, &[0.0]), f64::NEG_INFINITY);
        assert!(fold_builtin(Builtin::Asin, &[2.0]).is_nan());
        assert!(fold_builtin(Builtin::Acos, &[-2.0]).is_nan());
        assert_eq!(fold_builtin(Builtin::Log10, &[0.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn selection_builtins_match_runtime_on_nan() {
        // The runtime evaluator selects by comparison (`v0 <= v1`,
        // `v0 >= v1`): a NaN first operand fails the comparison and
        // the *second* operand wins — unlike `f64::min`/`f64::max`,
        // which prefer the non-NaN argument symmetrically.
        let nan = f64::NAN;
        assert_eq!(fold_builtin(Builtin::Min, &[nan, 1.0]), 1.0);
        assert!(fold_builtin(Builtin::Min, &[1.0, nan]).is_nan());
        assert_eq!(fold_builtin(Builtin::Max, &[nan, -1.0]), -1.0);
        assert!(fold_builtin(Builtin::Max, &[-1.0, nan]).is_nan());
        // `limit` passes NaN through (both guards compare false) and
        // tolerates an inverted window without panicking (`clamp`
        // would abort the process on lo > hi).
        assert!(fold_builtin(Builtin::Limit, &[nan, -1.0, 1.0]).is_nan());
        assert_eq!(fold_builtin(Builtin::Limit, &[0.5, 1.0, -1.0]), 1.0);
        assert_eq!(fold_builtin(Builtin::Limit, &[-0.5, -1.0, 1.0]), -0.5);
    }

    #[test]
    fn fold_const_propagates_nan_through_trees() {
        // sqrt(g0 − 2) with g0 = 1 → NaN, and NaN flows through the
        // enclosing arithmetic instead of erroring.
        let e = CExpr::Binary(
            BinOp::Add,
            Box::new(CExpr::Call(
                Builtin::Sqrt,
                vec![CExpr::Binary(
                    BinOp::Sub,
                    Box::new(CExpr::Generic(0)),
                    Box::new(CExpr::Const(2.0)),
                )],
            )),
            Box::new(CExpr::Const(1.0)),
        );
        assert!(fold_const(&e, &[1.0]).unwrap().is_nan());
        assert_eq!(fold_const(&e, &[6.0]).unwrap(), 3.0);
    }
}
