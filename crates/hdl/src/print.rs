//! Pretty-printer: AST → canonical HDL-A source text.
//!
//! Used by the PXT code generator and the energy methodology to emit
//! models, and by round-trip tests (`parse ∘ print ∘ parse` is the
//! identity up to spans).

use crate::ast::*;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for e in &m.entities {
        out.push_str(&print_entity(e));
        out.push('\n');
    }
    for a in &m.architectures {
        out.push_str(&print_architecture(a));
        out.push('\n');
    }
    out
}

/// Renders one entity declaration.
pub fn print_entity(e: &Entity) -> String {
    let mut out = format!("ENTITY {} IS\n", e.name);
    if !e.generics.is_empty() {
        let gens: Vec<String> = e
            .generics
            .iter()
            .map(|g| match &g.default {
                Some(d) => format!("{} : analog := {}", g.name, print_expr(d)),
                None => format!("{} : analog", g.name),
            })
            .collect();
        out.push_str(&format!("  GENERIC ({});\n", gens.join("; ")));
    }
    if !e.pins.is_empty() {
        // Group consecutive pins with the same nature, as the paper
        // writes them: `PIN (a, b : electrical; c, d : mechanical1);`.
        let mut groups: Vec<(Vec<&str>, &str)> = Vec::new();
        for p in &e.pins {
            match groups.last_mut() {
                Some((names, nat)) if *nat == p.nature => names.push(&p.name),
                _ => groups.push((vec![&p.name], &p.nature)),
            }
        }
        let pins: Vec<String> = groups
            .iter()
            .map(|(names, nat)| format!("{} : {nat}", names.join(", ")))
            .collect();
        out.push_str(&format!("  PIN ({});\n", pins.join("; ")));
    }
    out.push_str(&format!("END ENTITY {};\n", e.name));
    out
}

/// Renders one architecture body.
pub fn print_architecture(a: &Architecture) -> String {
    let mut out = format!("ARCHITECTURE {} OF {} IS\n", a.name, a.entity);
    for d in &a.decls {
        let kw = match d.kind {
            ObjectKind::Variable => "VARIABLE",
            ObjectKind::State => "STATE",
            ObjectKind::Constant => "CONSTANT",
            ObjectKind::Unknown => "UNKNOWN",
        };
        match &d.init {
            Some(init) => out.push_str(&format!(
                "  {kw} {} : analog := {};\n",
                d.names.join(", "),
                print_expr(init)
            )),
            None => out.push_str(&format!("  {kw} {} : analog;\n", d.names.join(", "))),
        }
    }
    out.push_str("BEGIN\n  RELATION\n");
    for b in &a.relation.blocks {
        match b {
            Block::Procedural {
                contexts, stmts, ..
            } => {
                let ctxs: Vec<&str> = contexts.iter().map(|c| c.name()).collect();
                out.push_str(&format!("    PROCEDURAL FOR {} =>\n", ctxs.join(", ")));
                for s in stmts {
                    print_stmt(s, 6, &mut out);
                }
            }
            Block::Equation {
                contexts,
                equations,
                ..
            } => {
                let ctxs: Vec<&str> = contexts.iter().map(|c| c.name()).collect();
                out.push_str(&format!("    EQUATION FOR {} =>\n", ctxs.join(", ")));
                for eq in equations {
                    out.push_str(&format!(
                        "      {} == {};\n",
                        print_expr(&eq.lhs),
                        print_expr(&eq.rhs)
                    ));
                }
            }
        }
    }
    out.push_str("  END RELATION;\n");
    out.push_str(&format!("END ARCHITECTURE {};\n", a.name));
    out
}

fn print_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    match s {
        Stmt::Assign { target, value, .. } => {
            out.push_str(&format!("{pad}{target} := {};\n", print_expr(value)));
        }
        Stmt::Contribute { branch, value, .. } => {
            out.push_str(&format!(
                "{pad}[{}, {}].{} %= {};\n",
                branch.pin_a,
                branch.pin_b,
                branch.quantity,
                print_expr(value)
            ));
        }
        Stmt::If {
            arms, otherwise, ..
        } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                let kw = if i == 0 { "IF" } else { "ELSIF" };
                out.push_str(&format!("{pad}{kw} {} THEN\n", print_expr(cond)));
                for st in body {
                    print_stmt(st, indent + 2, out);
                }
            }
            if !otherwise.is_empty() {
                out.push_str(&format!("{pad}ELSE\n"));
                for st in otherwise {
                    print_stmt(st, indent + 2, out);
                }
            }
            out.push_str(&format!("{pad}END IF;\n"));
        }
        Stmt::Assert { cond, message, .. } => {
            out.push_str(&format!(
                "{pad}ASSERT {} REPORT \"{message}\";\n",
                print_expr(cond)
            ));
        }
        Stmt::Report { message, .. } => {
            out.push_str(&format!("{pad}REPORT \"{message}\";\n"));
        }
    }
}

/// Operator precedence for parenthesization.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
        BinOp::Pow => 7,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Pow => "**",
        BinOp::Eq => "=",
        BinOp::Ne => "/=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

/// Renders one expression with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn print_prec(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Num(v, _) => format_number(*v),
        Expr::Bool(b, _) => if *b { "true" } else { "false" }.into(),
        Expr::Ident(name, _) => name.clone(),
        Expr::Branch(b) => format!("[{}, {}].{}", b.pin_a, b.pin_b, b.quantity),
        Expr::Call { name, args, .. } => {
            let rendered: Vec<String> = args.iter().map(|a| print_prec(a, 0)).collect();
            format!("{name}({})", rendered.join(", "))
        }
        Expr::Unary { op, expr, .. } => {
            let inner = print_prec(expr, 6);
            match op {
                UnOp::Neg => {
                    let s = format!("-{inner}");
                    if parent > 4 {
                        format!("({s})")
                    } else {
                        s
                    }
                }
                UnOp::Not => format!("not {inner}"),
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let p = precedence(*op);
            // Left operand at same precedence is fine (left assoc);
            // right operand needs a bump for `-` and `/`.
            let l = print_prec(lhs, p);
            let bump = matches!(op, BinOp::Sub | BinOp::Div);
            let r = print_prec(rhs, if bump { p + 1 } else { p });
            let s = format!("{l} {} {r}", op_str(*op));
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

/// Formats a number so it re-lexes as the same f64 (always includes a
/// decimal point or exponent so it reads as `analog`).
pub fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        let s = format!("{v:e}");
        // `1.23e-4` style is fine for the lexer.
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

    #[test]
    fn round_trip_listing1() {
        let m1 = parse(LISTING1).unwrap();
        let printed = print_module(&m1);
        let m2 = parse(&printed).unwrap();
        assert_eq!(m1.entities.len(), m2.entities.len());
        assert_eq!(m1.architectures.len(), m2.architectures.len());
        // Entities must match structurally.
        assert_eq!(m1.entities[0].name, m2.entities[0].name);
        assert_eq!(m1.entities[0].pins, {
            // Spans differ; compare names/natures.
            let mut p = m2.entities[0].pins.clone();
            for (a, b) in p.iter_mut().zip(&m1.entities[0].pins) {
                a.span = b.span;
            }
            p
        });
        // Statement-level spot check via a second print.
        assert_eq!(printed, print_module(&m2));
    }

    #[test]
    fn expr_round_trip_preserves_value_structure() {
        for src in [
            "1.0 + 2.0 * x",
            "(a + b) * (c - d)",
            "-e0 * er * a / ((d + x) * (d + x))",
            "a / b / c",
            "a - b - c",
            "a - (b - c)",
            "a / (b * c)",
            "2.0 ** n",
            "sin(2.0 * pi * f * t)",
            "[p, q].v * [p, q].v",
            "max(a, min(b, c))",
            "x > 1.0 and y < 2.0 or not z = 0.0",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = print_expr(&e1);
            let e2 = parse_expr(&printed).unwrap();
            assert!(
                e1.structurally_eq(&e2),
                "round trip failed: `{src}` → `{printed}`"
            );
        }
    }

    #[test]
    fn minimal_parentheses() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(print_expr(&e), "a + b * c");
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(print_expr(&e), "(a + b) * c");
        let e = parse_expr("a - (b - c)").unwrap();
        assert_eq!(print_expr(&e), "a - (b - c)");
    }

    #[test]
    fn numbers_relex_identically() {
        for v in [
            0.0,
            1.0,
            -2.5,
            8.8542e-12,
            1.0e-4,
            0.15e-3,
            200.0,
            40e-3,
            3.334675e-9,
            f64::MIN_POSITIVE,
        ] {
            let s = format_number(v);
            let e = parse_expr(&s).unwrap();
            match e {
                Expr::Num(parsed, _) => assert_eq!(parsed, v, "{s}"),
                Expr::Unary { .. } => {
                    // Negative values print with a leading minus.
                    let val = eval(&s);
                    assert_eq!(val, v, "{s}");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    fn eval(s: &str) -> f64 {
        crate::symbolic::eval_closed(&parse_expr(s).unwrap(), &[]).unwrap()
    }

    #[test]
    fn entity_pin_grouping() {
        let m = parse(LISTING1).unwrap();
        let printed = print_entity(&m.entities[0]);
        assert!(
            printed.contains("PIN (a, b : electrical; c, d : mechanical1);"),
            "{printed}"
        );
    }
}
