//! Electrostatic force extraction from a solved field.
//!
//! Two independent methods, as production FE tools provide:
//!
//! - **Maxwell stress tensor**: `F = ∮ T·n dS` with
//!   `T_ij = ε(E_i E_j − ½δ_ij|E|²)` — the numerical version of the
//!   equation PXT uses in the paper (`f = ½∮ε E² n dS` for a
//!   field-normal surface);
//! - **virtual work**: `F = −dW/dg` at constant voltage uses
//!   `F = +dW/dg|_V` co-energy sign (two solves at perturbed gap).
//!
//! Their agreement is a strong consistency check on the field
//! solution (exercised by the test suite and the Fig. 6 bench).

use crate::electrostatics::{ElectrostaticProblem, PotentialField};
use crate::mesh::StructuredQuadMesh;
use mems_numerics::Result;

/// Force per unit depth on the electrode *above* a horizontal cut
/// `y = y_cut` (normal pointing in −y), from the Maxwell stress
/// tensor integrated along the cut [N/m].
///
/// For a parallel-plate field (E purely vertical) this reduces to the
/// paper's `½ ε E²` per unit area, pulling the plates together.
pub fn maxwell_force_y(field: &PotentialField, y_cut: f64) -> f64 {
    let mesh = &field.mesh;
    let (x0, _, x1, _) = mesh.bounds();
    let (nx, _) = mesh.shape();
    let dx = (x1 - x0) / nx as f64;
    let mut force = 0.0;
    for i in 0..nx {
        let xc = x0 + (i as f64 + 0.5) * dx;
        let Some(e) = mesh.elem_at(xc, y_cut) else {
            continue;
        };
        let (ex, ey) = field.field_at_elem(e);
        let eps = crate::electrostatics::EPS0 * field.eps_r[e];
        // Traction on a surface with outward normal −ŷ (surface below
        // the body we compute the force on): t = T·n.
        // T_yy = ε(E_y² − ½|E|²), T_xy = ε E_x E_y.
        let t_yy = eps * (ey * ey - 0.5 * (ex * ex + ey * ey));
        // Force on the upper body in y: −T_yy integrated over the cut.
        force += -t_yy * dx;
        let _ = t_yy;
        // (T_xy contributes to the x-force; not needed here.)
    }
    force
}

/// Force per unit depth via virtual work at constant voltage:
/// `F_g = +dW/dg |_V` (co-energy form), evaluated by re-solving the
/// problem built by `build(gap)` at `gap ± δ`.
///
/// Returns the derivative of field energy with respect to the gap
/// parameter; a negative value means the energy drops as the gap
/// opens, i.e. the plates attract.
///
/// # Errors
///
/// Propagates solver failures.
pub fn virtual_work_force(
    build: impl Fn(f64) -> Result<ElectrostaticProblem>,
    gap: f64,
    delta: f64,
) -> Result<f64> {
    let wp = build(gap + delta)?.solve()?.energy();
    let wm = build(gap - delta)?.solve()?.energy();
    Ok((wp - wm) / (2.0 * delta))
}

/// Convenience: builds the paper's uniform parallel-plate gap problem
/// (Fig. 2a geometry without fringe fields, as the paper notes) with
/// plate width `w`, gap `g`, `nx × ny` elements, potentials `v_bottom`
/// and `v_top`.
///
/// # Errors
///
/// Propagates electrode construction failures.
pub fn parallel_plate_problem(
    w: f64,
    g: f64,
    nx: usize,
    ny: usize,
    v_bottom: f64,
    v_top: f64,
) -> Result<ElectrostaticProblem> {
    let mesh = StructuredQuadMesh::rectangle(0.0, 0.0, w, g, nx, ny);
    let bottom = mesh.bottom_nodes();
    let top = mesh.top_nodes();
    let mut p = ElectrostaticProblem::new(mesh, 1.0);
    p.add_electrode("fixed", bottom, v_bottom)?;
    p.add_electrode("free", top, v_top)?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electrostatics::EPS0;

    const W: f64 = 0.01; // 1 cm plate width (depth 1 cm → A = 1 cm²)
    const GAP: f64 = 0.15e-3;

    #[test]
    fn maxwell_stress_matches_half_eps_e_squared() {
        // Fig. 6: PXT computes f = ½∮εE²n dS; for the uniform gap at
        // 10 V this must equal the Table 3 force at x = 0 (per depth).
        let p = parallel_plate_problem(W, GAP, 12, 10, 0.0, 10.0).unwrap();
        let f = p.solve().unwrap();
        let force = maxwell_force_y(&f, GAP * 0.5);
        let e = 10.0 / GAP;
        let expect = -0.5 * EPS0 * e * e * W; // attractive: pulls down
        assert!(
            (force - expect).abs() < expect.abs() * 1e-9,
            "{force:e} vs {expect:e}"
        );
        // Scaled to the paper's area (depth = 1 cm): |F| ≈ 1.9676 µN.
        let f_total = force * 0.01;
        assert!((f_total.abs() - 1.9676e-6).abs() < 1e-10, "F = {f_total:e}");
    }

    #[test]
    fn cut_plane_position_does_not_matter() {
        let p = parallel_plate_problem(W, GAP, 10, 12, 0.0, 5.0).unwrap();
        let f = p.solve().unwrap();
        let f1 = maxwell_force_y(&f, GAP * 0.25);
        let f2 = maxwell_force_y(&f, GAP * 0.75);
        assert!((f1 - f2).abs() < f1.abs() * 1e-9);
    }

    #[test]
    fn virtual_work_agrees_with_maxwell_stress() {
        let v = 10.0;
        let force_vw = virtual_work_force(
            |g| parallel_plate_problem(W, g, 8, 8, 0.0, v),
            GAP,
            GAP * 1e-4,
        )
        .unwrap();
        // W(g) = ½ε0·w·V²/g → dW/dg = −½ε0·w·V²/g² < 0 (attraction).
        let p = parallel_plate_problem(W, GAP, 8, 8, 0.0, v).unwrap();
        let field = p.solve().unwrap();
        let force_mx = maxwell_force_y(&field, GAP * 0.5);
        assert!(
            (force_vw - force_mx).abs() < force_mx.abs() * 1e-4,
            "virtual work {force_vw:e} vs Maxwell {force_mx:e}"
        );
    }

    #[test]
    fn force_scales_with_v_squared_and_inverse_gap_squared() {
        let f = |v: f64, g: f64| {
            let p = parallel_plate_problem(W, g, 6, 6, 0.0, v).unwrap();
            maxwell_force_y(&p.solve().unwrap(), g * 0.5)
        };
        let f0 = f(5.0, GAP);
        assert!((f(10.0, GAP) / f0 - 4.0).abs() < 1e-9);
        assert!((f(5.0, GAP * 2.0) / f0 - 0.25).abs() < 1e-9);
    }
}
