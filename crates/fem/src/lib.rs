//! # mems-fem — finite-element substrate
//!
//! Stand-in for the ANSYS field solver the paper's PXT tool drives
//! ("The FE method is commonly used to solve spatial differential
//! equations to predict micromachined device behavior"):
//!
//! - [`mesh`] — structured quadrilateral meshes with node-set
//!   selection (electrode surfaces);
//! - [`element`] — Q4 bilinear Laplace elements (2×2 Gauss);
//! - [`electrostatics`] — `∇·(ε∇φ) = 0` with Dirichlet electrodes,
//!   CG solve, field/energy/charge/capacitance extraction;
//! - [`maxwell`] — electrostatic force via Maxwell stress tensor
//!   (the paper's `f = ½∮εE²n dS`) cross-checked by virtual work;
//! - [`beam`] — Euler–Bernoulli cantilevers: static, modal, damped
//!   harmonic analysis (the "harmonic FE analysis" PXT fits);
//! - [`harmonic`] — frequency-response containers.
//!
//! # Example: Fig. 6's force extraction
//!
//! ```
//! use mems_fem::maxwell::{parallel_plate_problem, maxwell_force_y};
//!
//! # fn main() -> mems_numerics::Result<()> {
//! // Table 4 geometry: 1 cm plate width, 0.15 mm gap, 10 V.
//! let problem = parallel_plate_problem(0.01, 0.15e-3, 10, 8, 0.0, 10.0)?;
//! let field = problem.solve()?;
//! let force_per_depth = maxwell_force_y(&field, 0.075e-3);
//! let force = force_per_depth * 0.01; // depth 1 cm → A = 1 cm²
//! assert!((force.abs() - 1.9676e-6).abs() < 1e-9); // Table 3 at x = 0
//! # Ok(())
//! # }
//! ```

pub mod beam;
pub mod electrostatics;
pub mod element;
pub mod harmonic;
pub mod maxwell;
pub mod mesh;

pub use electrostatics::{ElectrostaticProblem, PotentialField, EPS0};
pub use harmonic::FrequencyResponse;
pub use mesh::StructuredQuadMesh;
