//! 2-D electrostatic finite-element problem: `∇·(ε∇φ) = 0` with
//! electrode (Dirichlet) boundary conditions.
//!
//! This replaces the paper's ANSYS field solves (Fig. 6): PXT drives
//! it with varying boundary conditions and extracts charges,
//! capacitances and forces.

use crate::element;
use crate::mesh::{NodeIdx, StructuredQuadMesh};
use mems_numerics::cg::{solve_cg, CgOptions};
use mems_numerics::sparse::TripletMatrix;
use mems_numerics::{NumericsError, Result};

/// Vacuum permittivity [F/m], as the paper writes it in Listing 1.
pub const EPS0: f64 = 8.8542e-12;

/// An electrode: a named node set held at a potential.
#[derive(Debug, Clone)]
pub struct Electrode {
    /// Name (diagnostics).
    pub name: String,
    /// Member nodes.
    pub nodes: Vec<NodeIdx>,
    /// Prescribed potential [V].
    pub potential: f64,
}

/// The assembled electrostatic problem.
#[derive(Debug, Clone)]
pub struct ElectrostaticProblem {
    mesh: StructuredQuadMesh,
    /// Relative permittivity per element.
    eps_r: Vec<f64>,
    electrodes: Vec<Electrode>,
}

/// A solved potential field.
#[derive(Debug, Clone)]
pub struct PotentialField {
    /// The mesh the field lives on.
    pub mesh: StructuredQuadMesh,
    /// Relative permittivity per element.
    pub eps_r: Vec<f64>,
    /// Nodal potentials [V].
    pub phi: Vec<f64>,
    /// CG iterations used.
    pub iterations: usize,
}

impl ElectrostaticProblem {
    /// Creates a problem with uniform relative permittivity.
    pub fn new(mesh: StructuredQuadMesh, eps_r: f64) -> Self {
        let n = mesh.n_elems();
        ElectrostaticProblem {
            mesh,
            eps_r: vec![eps_r; n],
            electrodes: Vec::new(),
        }
    }

    /// Sets per-element relative permittivity (dielectric regions).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] for a wrong-length
    /// vector.
    pub fn with_permittivity_map(mut self, eps_r: Vec<f64>) -> Result<Self> {
        if eps_r.len() != self.mesh.n_elems() {
            return Err(NumericsError::DimensionMismatch {
                expected: self.mesh.n_elems(),
                found: eps_r.len(),
            });
        }
        self.eps_r = eps_r;
        Ok(self)
    }

    /// Adds an electrode.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] for empty node sets or
    /// out-of-range nodes.
    pub fn add_electrode(&mut self, name: &str, nodes: Vec<NodeIdx>, potential: f64) -> Result<()> {
        if nodes.is_empty() {
            return Err(NumericsError::InvalidInput(format!(
                "electrode `{name}` has no nodes"
            )));
        }
        if nodes.iter().any(|&n| n >= self.mesh.n_nodes()) {
            return Err(NumericsError::InvalidInput(format!(
                "electrode `{name}` references nodes outside the mesh"
            )));
        }
        self.electrodes.push(Electrode {
            name: name.to_string(),
            nodes,
            potential,
        });
        Ok(())
    }

    /// Updates an electrode's potential by name.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] for unknown electrodes.
    pub fn set_potential(&mut self, name: &str, potential: f64) -> Result<()> {
        for e in &mut self.electrodes {
            if e.name == name {
                e.potential = potential;
                return Ok(());
            }
        }
        Err(NumericsError::InvalidInput(format!(
            "no electrode named `{name}`"
        )))
    }

    /// The mesh.
    pub fn mesh(&self) -> &StructuredQuadMesh {
        &self.mesh
    }

    /// The electrodes.
    pub fn electrodes(&self) -> &[Electrode] {
        &self.electrodes
    }

    /// Solves for the potential field.
    ///
    /// Dirichlet conditions are applied by elimination: constrained
    /// nodes are removed from the unknown set and their contributions
    /// moved to the right-hand side, keeping the reduced system SPD
    /// for conjugate gradients.
    ///
    /// # Errors
    ///
    /// Propagates CG failures and reports missing electrodes.
    pub fn solve(&self) -> Result<PotentialField> {
        if self.electrodes.is_empty() {
            return Err(NumericsError::InvalidInput(
                "electrostatic problem needs at least one electrode".into(),
            ));
        }
        let n = self.mesh.n_nodes();
        // Dirichlet map.
        let mut fixed: Vec<Option<f64>> = vec![None; n];
        for e in &self.electrodes {
            for &node in &e.nodes {
                fixed[node] = Some(e.potential);
            }
        }
        // Unknown numbering for free nodes.
        let mut free_index: Vec<Option<usize>> = vec![None; n];
        let mut n_free = 0;
        for (i, f) in fixed.iter().enumerate() {
            if f.is_none() {
                free_index[i] = Some(n_free);
                n_free += 1;
            }
        }

        let mut phi: Vec<f64> = fixed.iter().map(|f| f.unwrap_or(0.0)).collect();
        if n_free == 0 {
            return Ok(PotentialField {
                mesh: self.mesh.clone(),
                eps_r: self.eps_r.clone(),
                phi,
                iterations: 0,
            });
        }

        let mut k = TripletMatrix::new(n_free, n_free);
        let mut rhs = vec![0.0; n_free];
        for (e, conn) in self.mesh.elems().iter().enumerate() {
            let xy = [
                self.mesh.coord(conn[0]),
                self.mesh.coord(conn[1]),
                self.mesh.coord(conn[2]),
                self.mesh.coord(conn[3]),
            ];
            let ke = element::stiffness(&xy, EPS0 * self.eps_r[e]);
            for (a, &na) in conn.iter().enumerate() {
                let Some(ra) = free_index[na] else { continue };
                for (b, &nb) in conn.iter().enumerate() {
                    match free_index[nb] {
                        Some(cb) => k.add(ra, cb, ke[a][b]),
                        None => {
                            rhs[ra] -= ke[a][b] * fixed[nb].expect("fixed node has value");
                        }
                    }
                }
            }
        }
        let csr = k.to_csr();
        let sol = solve_cg(
            &csr,
            &rhs,
            &CgOptions {
                rtol: 1e-12,
                max_iter: 20 * n_free.max(100),
                ..CgOptions::default()
            },
        )?;
        for (i, idx) in free_index.iter().enumerate() {
            if let Some(r) = idx {
                phi[i] = sol.x[*r];
            }
        }
        Ok(PotentialField {
            mesh: self.mesh.clone(),
            eps_r: self.eps_r.clone(),
            phi,
            iterations: sol.iterations,
        })
    }
}

impl PotentialField {
    /// Electric field `E = −∇φ` at an element's center.
    pub fn field_at_elem(&self, e: usize) -> (f64, f64) {
        let conn = self.mesh.elem(e);
        let xy = [
            self.mesh.coord(conn[0]),
            self.mesh.coord(conn[1]),
            self.mesh.coord(conn[2]),
            self.mesh.coord(conn[3]),
        ];
        let vals = [
            self.phi[conn[0]],
            self.phi[conn[1]],
            self.phi[conn[2]],
            self.phi[conn[3]],
        ];
        let (gx, gy) = element::center_gradient(&xy, &vals);
        (-gx, -gy)
    }

    /// Field energy `½∫ε|E|²dΩ` per unit depth [J/m].
    pub fn energy(&self) -> f64 {
        let mut w = 0.0;
        for (e, conn) in self.mesh.elems().iter().enumerate() {
            let xy = [
                self.mesh.coord(conn[0]),
                self.mesh.coord(conn[1]),
                self.mesh.coord(conn[2]),
                self.mesh.coord(conn[3]),
            ];
            let ke = element::stiffness(&xy, EPS0 * self.eps_r[e]);
            let vals = [
                self.phi[conn[0]],
                self.phi[conn[1]],
                self.phi[conn[2]],
                self.phi[conn[3]],
            ];
            for a in 0..4 {
                for b in 0..4 {
                    w += 0.5 * vals[a] * ke[a][b] * vals[b];
                }
            }
        }
        w
    }

    /// Capacitance per unit depth between a two-electrode system
    /// biased at `v`: `C' = 2W/V²` [F/m].
    pub fn capacitance_per_depth(&self, v: f64) -> f64 {
        2.0 * self.energy() / (v * v)
    }

    /// Charge on an electrode per unit depth [C/m], computed as the
    /// sum of residuals `(K·φ)ᵢ` over the electrode's nodes — the
    /// discrete equivalent of the flux integral `∮ ε E·n dS` (exactly
    /// consistent with the FE solution).
    pub fn electrode_charge_per_depth(&self, nodes: &[NodeIdx]) -> f64 {
        let member: std::collections::HashSet<NodeIdx> = nodes.iter().copied().collect();
        let mut q = 0.0;
        for (e, conn) in self.mesh.elems().iter().enumerate() {
            let xy = [
                self.mesh.coord(conn[0]),
                self.mesh.coord(conn[1]),
                self.mesh.coord(conn[2]),
                self.mesh.coord(conn[3]),
            ];
            let ke = element::stiffness(&xy, EPS0 * self.eps_r[e]);
            let vals = [
                self.phi[conn[0]],
                self.phi[conn[1]],
                self.phi[conn[2]],
                self.phi[conn[3]],
            ];
            for (a, &na) in conn.iter().enumerate() {
                if member.contains(&na) {
                    for b in 0..4 {
                        q += ke[a][b] * vals[b];
                    }
                }
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parallel-plate gap from Table 4: A = 1 cm², d = 0.15 mm.
    /// Modeled per unit depth with plate width `w`; the paper's area
    /// is recovered as `A = w·depth`.
    fn plate_problem(v: f64, nx: usize, ny: usize) -> ElectrostaticProblem {
        let w = 0.01; // 1 cm plate width
        let gap = 0.15e-3;
        let mesh = StructuredQuadMesh::rectangle(0.0, 0.0, w, gap, nx, ny);
        let bottom = mesh.bottom_nodes();
        let top = mesh.top_nodes();
        let mut p = ElectrostaticProblem::new(mesh, 1.0);
        p.add_electrode("fixed", bottom, 0.0).unwrap();
        p.add_electrode("free", top, v).unwrap();
        p
    }

    #[test]
    fn uniform_field_between_plates() {
        let p = plate_problem(10.0, 8, 6);
        let f = p.solve().unwrap();
        // φ varies linearly across the gap → E = V/d everywhere.
        let e_expect = 10.0 / 0.15e-3;
        for e in 0..f.mesh.n_elems() {
            let (ex, ey) = f.field_at_elem(e);
            assert!(ex.abs() < e_expect * 1e-9, "tangential field {ex}");
            assert!(
                (ey.abs() - e_expect).abs() < e_expect * 1e-9,
                "normal field {ey} vs {e_expect}"
            );
        }
    }

    #[test]
    fn capacitance_matches_parallel_plate_formula() {
        let p = plate_problem(10.0, 10, 8);
        let f = p.solve().unwrap();
        // C' = ε0·w/d per depth; with w = 1 cm, d = 0.15 mm.
        let expect = EPS0 * 0.01 / 0.15e-3;
        let got = f.capacitance_per_depth(10.0);
        assert!(
            (got - expect).abs() < expect * 1e-6,
            "{got:e} vs {expect:e}"
        );
        // Scaled to the paper's area (×depth 1 cm): C₀ ≈ 5.9 pF.
        let c0 = got * 0.01;
        assert!((c0 - 5.9028e-12).abs() < 1e-15, "C0 = {c0:e}");
    }

    #[test]
    fn charge_balances_and_matches_cv() {
        let p = plate_problem(5.0, 8, 8);
        let f = p.solve().unwrap();
        let q_top = f.electrode_charge_per_depth(&p.mesh().top_nodes());
        let q_bottom = f.electrode_charge_per_depth(&p.mesh().bottom_nodes());
        assert!(
            (q_top + q_bottom).abs() < q_top.abs() * 1e-9,
            "charge not balanced: {q_top} vs {q_bottom}"
        );
        let c = f.capacitance_per_depth(5.0);
        assert!((q_top.abs() - c * 5.0).abs() < q_top.abs() * 1e-9);
    }

    #[test]
    fn energy_quadratic_in_voltage() {
        let w5 = plate_problem(5.0, 6, 6).solve().unwrap().energy();
        let w10 = plate_problem(10.0, 6, 6).solve().unwrap().energy();
        assert!((w10 / w5 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dielectric_region_increases_capacitance() {
        let wpl = 0.01;
        let gap = 0.15e-3;
        let mesh = StructuredQuadMesh::rectangle(0.0, 0.0, wpl, gap, 6, 8);
        let bottom = mesh.bottom_nodes();
        let top = mesh.top_nodes();
        let n_elems = mesh.n_elems();
        // Lower half filled with εr = 4 → series combination.
        let mut eps = vec![1.0; n_elems];
        for (e, v) in eps.iter_mut().enumerate() {
            let (_, cy) = mesh.elem_center(e);
            if cy < gap / 2.0 {
                *v = 4.0;
            }
        }
        let mut p = ElectrostaticProblem::new(mesh, 1.0)
            .with_permittivity_map(eps)
            .unwrap();
        p.add_electrode("b", bottom, 0.0).unwrap();
        p.add_electrode("t", top, 1.0).unwrap();
        let f = p.solve().unwrap();
        // Series: C = ε0·w / (d1/εr1 + d2/εr2) = ε0·w/(d/2·(1/4+1)).
        let expect = EPS0 * wpl / (gap / 2.0 * (0.25 + 1.0));
        let got = f.capacitance_per_depth(1.0);
        assert!(
            (got - expect).abs() < expect * 1e-6,
            "{got:e} vs {expect:e}"
        );
    }

    #[test]
    fn errors_are_reported() {
        let mesh = StructuredQuadMesh::rectangle(0.0, 0.0, 1.0, 1.0, 2, 2);
        let mut p = ElectrostaticProblem::new(mesh, 1.0);
        assert!(p.add_electrode("empty", vec![], 0.0).is_err());
        assert!(p.add_electrode("oob", vec![999], 0.0).is_err());
        assert!(p.solve().is_err()); // no electrodes
        p.add_electrode("ok", vec![0], 1.0).unwrap();
        assert!(p.set_potential("nope", 2.0).is_err());
        assert!(p.set_potential("ok", 2.0).is_ok());
    }
}
