//! Frequency-response data containers shared by the FE substrate and
//! the PXT rational-function fitter.

use mems_numerics::Complex64;

/// A sampled frequency response `H(jω)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyResponse {
    /// Sample frequencies [Hz].
    pub freqs: Vec<f64>,
    /// Complex response values at each frequency.
    pub h: Vec<Complex64>,
}

impl FrequencyResponse {
    /// Creates a response from matched vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn new(freqs: Vec<f64>, h: Vec<Complex64>) -> Self {
        assert_eq!(freqs.len(), h.len(), "frequency/response length mismatch");
        FrequencyResponse { freqs, h }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Magnitudes.
    pub fn magnitudes(&self) -> Vec<f64> {
        self.h.iter().map(|z| z.abs()).collect()
    }

    /// Phases [degrees].
    pub fn phases_deg(&self) -> Vec<f64> {
        self.h.iter().map(|z| z.arg().to_degrees()).collect()
    }

    /// Frequency of maximum magnitude (resonance peak).
    pub fn peak_frequency(&self) -> Option<f64> {
        self.h
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("finite response"))
            .map(|(i, _)| self.freqs[i])
    }

    /// Maximum relative magnitude error against another response on
    /// the same grid.
    ///
    /// # Panics
    ///
    /// Panics when grids differ in length.
    pub fn max_rel_error(&self, other: &FrequencyResponse) -> f64 {
        assert_eq!(self.len(), other.len(), "grid mismatch");
        let scale = self
            .magnitudes()
            .into_iter()
            .fold(0.0f64, f64::max)
            .max(1e-300);
        self.h
            .iter()
            .zip(&other.h)
            .map(|(a, b)| (*a - *b).abs() / scale)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_pole(freqs: &[f64], fc: f64) -> FrequencyResponse {
        let h = freqs
            .iter()
            .map(|f| (Complex64::ONE + Complex64::new(0.0, f / fc)).recip())
            .collect();
        FrequencyResponse::new(freqs.to_vec(), h)
    }

    #[test]
    fn magnitudes_and_phases() {
        let r = single_pole(&[1.0, 100.0, 10000.0], 100.0);
        let mags = r.magnitudes();
        assert!((mags[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        let ph = r.phases_deg();
        assert!((ph[1] + 45.0).abs() < 1e-9);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn peak_detection() {
        let freqs: Vec<f64> = (1..100).map(|i| i as f64 * 10.0).collect();
        let h: Vec<Complex64> = freqs
            .iter()
            .map(|f| {
                // Resonance at 500 Hz.
                let s = Complex64::new(0.0, f / 500.0);
                (s * s + s * 0.05 + Complex64::ONE).recip()
            })
            .collect();
        let r = FrequencyResponse::new(freqs, h);
        let peak = r.peak_frequency().unwrap();
        assert!((peak - 500.0).abs() <= 10.0, "peak at {peak}");
    }

    #[test]
    fn error_metric_is_zero_for_self() {
        let r = single_pole(&[1.0, 2.0, 3.0], 2.0);
        assert_eq!(r.max_rel_error(&r), 0.0);
    }
}
