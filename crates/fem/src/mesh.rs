//! Structured quadrilateral meshes on rectangles.
//!
//! The electrostatic solver meshes the capacitor gap region; node
//! sets are selected by coordinate predicates to apply electrode
//! (Dirichlet) boundary conditions, mirroring how FE tools define
//! terminal ports as "surfaces on which the intensive variable is
//! invariant" (paper, §Parameter extraction).

/// A node index.
pub type NodeIdx = usize;

/// A structured `nx × ny`-element quadrilateral mesh of the rectangle
/// `[x0, x0+w] × [y0, y0+h]`.
#[derive(Debug, Clone)]
pub struct StructuredQuadMesh {
    nx: usize,
    ny: usize,
    x0: f64,
    y0: f64,
    w: f64,
    h: f64,
    coords: Vec<(f64, f64)>,
    elems: Vec<[NodeIdx; 4]>,
}

impl StructuredQuadMesh {
    /// Meshes the rectangle with `nx × ny` elements.
    ///
    /// # Panics
    ///
    /// Panics for zero element counts or non-positive dimensions.
    pub fn rectangle(x0: f64, y0: f64, w: f64, h: f64, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "need at least one element per axis");
        assert!(w > 0.0 && h > 0.0, "rectangle must have positive size");
        let mut coords = Vec::with_capacity((nx + 1) * (ny + 1));
        for j in 0..=ny {
            for i in 0..=nx {
                coords.push((x0 + w * i as f64 / nx as f64, y0 + h * j as f64 / ny as f64));
            }
        }
        let mut elems = Vec::with_capacity(nx * ny);
        let stride = nx + 1;
        for j in 0..ny {
            for i in 0..nx {
                let n0 = j * stride + i;
                // Counter-clockwise: (i,j), (i+1,j), (i+1,j+1), (i,j+1).
                elems.push([n0, n0 + 1, n0 + stride + 1, n0 + stride]);
            }
        }
        StructuredQuadMesh {
            nx,
            ny,
            x0,
            y0,
            w,
            h,
            coords,
            elems,
        }
    }

    /// Elements per axis `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of elements.
    pub fn n_elems(&self) -> usize {
        self.elems.len()
    }

    /// Node coordinates.
    pub fn coord(&self, n: NodeIdx) -> (f64, f64) {
        self.coords[n]
    }

    /// Element connectivity (counter-clockwise node indices).
    pub fn elem(&self, e: usize) -> [NodeIdx; 4] {
        self.elems[e]
    }

    /// All element connectivities.
    pub fn elems(&self) -> &[[NodeIdx; 4]] {
        &self.elems
    }

    /// Domain bounds `(x0, y0, x0+w, y0+h)`.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        (self.x0, self.y0, self.x0 + self.w, self.y0 + self.h)
    }

    /// Nodes satisfying a coordinate predicate (electrode selection).
    pub fn select_nodes(&self, pred: impl Fn(f64, f64) -> bool) -> Vec<NodeIdx> {
        self.coords
            .iter()
            .enumerate()
            .filter(|(_, (x, y))| pred(*x, *y))
            .map(|(i, _)| i)
            .collect()
    }

    /// Nodes on the bottom edge (`y = y0`).
    pub fn bottom_nodes(&self) -> Vec<NodeIdx> {
        let y0 = self.y0;
        let tol = self.h * 1e-12;
        self.select_nodes(move |_, y| (y - y0).abs() <= tol)
    }

    /// Nodes on the top edge (`y = y0 + h`).
    pub fn top_nodes(&self) -> Vec<NodeIdx> {
        let y1 = self.y0 + self.h;
        let tol = self.h * 1e-12;
        self.select_nodes(move |_, y| (y - y1).abs() <= tol)
    }

    /// Element index containing the point, if inside the domain.
    pub fn elem_at(&self, x: f64, y: f64) -> Option<usize> {
        let fx = (x - self.x0) / self.w;
        let fy = (y - self.y0) / self.h;
        if !(0.0..=1.0).contains(&fx) || !(0.0..=1.0).contains(&fy) {
            return None;
        }
        let i = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let j = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        Some(j * self.nx + i)
    }

    /// Element centroid.
    pub fn elem_center(&self, e: usize) -> (f64, f64) {
        let nodes = self.elems[e];
        let mut cx = 0.0;
        let mut cy = 0.0;
        for n in nodes {
            let (x, y) = self.coords[n];
            cx += x;
            cy += y;
        }
        (cx / 4.0, cy / 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_coords() {
        let m = StructuredQuadMesh::rectangle(0.0, 0.0, 2.0, 1.0, 4, 2);
        assert_eq!(m.n_nodes(), 15);
        assert_eq!(m.n_elems(), 8);
        assert_eq!(m.coord(0), (0.0, 0.0));
        assert_eq!(m.coord(14), (2.0, 1.0));
        assert_eq!(m.shape(), (4, 2));
    }

    #[test]
    fn connectivity_is_ccw() {
        let m = StructuredQuadMesh::rectangle(0.0, 0.0, 1.0, 1.0, 2, 2);
        let e = m.elem(0);
        let (x0, y0) = m.coord(e[0]);
        let (x1, y1) = m.coord(e[1]);
        let (x2, y2) = m.coord(e[2]);
        // Shoelace: positive area for CCW.
        let cross = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0);
        assert!(cross > 0.0);
    }

    #[test]
    fn edge_selection() {
        let m = StructuredQuadMesh::rectangle(0.0, 0.0, 1.0, 0.5, 3, 2);
        assert_eq!(m.bottom_nodes().len(), 4);
        assert_eq!(m.top_nodes().len(), 4);
        for n in m.top_nodes() {
            assert!((m.coord(n).1 - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn point_location() {
        let m = StructuredQuadMesh::rectangle(0.0, 0.0, 1.0, 1.0, 2, 2);
        assert_eq!(m.elem_at(0.1, 0.1), Some(0));
        assert_eq!(m.elem_at(0.9, 0.9), Some(3));
        assert_eq!(m.elem_at(1.5, 0.5), None);
        // Boundary point maps to the last element.
        assert_eq!(m.elem_at(1.0, 1.0), Some(3));
    }

    #[test]
    fn centers() {
        let m = StructuredQuadMesh::rectangle(0.0, 0.0, 2.0, 2.0, 2, 2);
        let (cx, cy) = m.elem_center(0);
        assert!((cx - 0.5).abs() < 1e-12);
        assert!((cy - 0.5).abs() < 1e-12);
    }
}
