//! Euler–Bernoulli beam finite elements: static deflection, natural
//! frequencies, and damped harmonic response.
//!
//! This is the structural half of the "ANSYS substitute": the paper's
//! PXT builds data-flow models by fitting a polynomial filter to a
//! *harmonic FE analysis* — a cantilever beam gives a frequency
//! response with exact analytic reference values for validation.

use mems_numerics::dense::DenseMatrix;
use mems_numerics::lu::LuFactors;
use mems_numerics::{Complex64, NumericsError, Result};

/// A prismatic cantilever discretized into equal Euler–Bernoulli
/// elements (2 nodes × 2 DOFs: deflection `w`, rotation `θ`).
#[derive(Debug, Clone)]
pub struct CantileverBeam {
    /// Beam length [m].
    pub length: f64,
    /// Young's modulus [Pa].
    pub youngs: f64,
    /// Second moment of area [m⁴].
    pub inertia: f64,
    /// Mass per unit length [kg/m].
    pub mass_per_length: f64,
    /// Number of elements.
    pub n_elems: usize,
    /// Rayleigh damping `C = a·M + b·K`.
    pub rayleigh: (f64, f64),
}

impl CantileverBeam {
    /// Creates a rectangular-section silicon-like cantilever.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn new(
        length: f64,
        youngs: f64,
        inertia: f64,
        mass_per_length: f64,
        n_elems: usize,
    ) -> Self {
        assert!(
            length > 0.0 && youngs > 0.0 && inertia > 0.0 && mass_per_length > 0.0,
            "beam parameters must be positive"
        );
        assert!(n_elems >= 1, "need at least one element");
        CantileverBeam {
            length,
            youngs,
            inertia,
            mass_per_length,
            n_elems,
            rayleigh: (0.0, 0.0),
        }
    }

    /// Sets Rayleigh damping coefficients `C = a·M + b·K`.
    pub fn with_rayleigh_damping(mut self, a: f64, b: f64) -> Self {
        self.rayleigh = (a, b);
        self
    }

    /// Number of free DOFs (clamped root eliminated).
    pub fn n_dofs(&self) -> usize {
        2 * self.n_elems
    }

    /// Index of the tip deflection DOF in the reduced system.
    pub fn tip_dof(&self) -> usize {
        self.n_dofs() - 2
    }

    fn element_matrices(&self) -> ([[f64; 4]; 4], [[f64; 4]; 4]) {
        let l = self.length / self.n_elems as f64;
        let ei = self.youngs * self.inertia;
        let k = ei / (l * l * l);
        let ke = [
            [12.0 * k, 6.0 * l * k, -12.0 * k, 6.0 * l * k],
            [6.0 * l * k, 4.0 * l * l * k, -6.0 * l * k, 2.0 * l * l * k],
            [-12.0 * k, -6.0 * l * k, 12.0 * k, -6.0 * l * k],
            [6.0 * l * k, 2.0 * l * l * k, -6.0 * l * k, 4.0 * l * l * k],
        ];
        let m = self.mass_per_length * l / 420.0;
        let me = [
            [156.0 * m, 22.0 * l * m, 54.0 * m, -13.0 * l * m],
            [
                22.0 * l * m,
                4.0 * l * l * m,
                13.0 * l * m,
                -3.0 * l * l * m,
            ],
            [54.0 * m, 13.0 * l * m, 156.0 * m, -22.0 * l * m],
            [
                -13.0 * l * m,
                -3.0 * l * l * m,
                -22.0 * l * m,
                4.0 * l * l * m,
            ],
        ];
        (ke, me)
    }

    /// Assembles the reduced (clamped) stiffness and mass matrices.
    pub fn assemble(&self) -> (DenseMatrix<f64>, DenseMatrix<f64>) {
        let n = self.n_dofs();
        let mut kg = DenseMatrix::zeros(n, n);
        let mut mg = DenseMatrix::zeros(n, n);
        let (ke, me) = self.element_matrices();
        for e in 0..self.n_elems {
            // Global DOFs of the element: node e (w, θ), node e+1.
            // Node 0 is clamped; its DOFs are dropped (index < 0).
            let gdof = |local: usize| -> Option<usize> {
                let node = e + local / 2;
                if node == 0 {
                    None
                } else {
                    Some(2 * (node - 1) + local % 2)
                }
            };
            for a in 0..4 {
                let Some(ra) = gdof(a) else { continue };
                for b in 0..4 {
                    let Some(cb) = gdof(b) else { continue };
                    kg.add_at(ra, cb, ke[a][b]);
                    mg.add_at(ra, cb, me[a][b]);
                }
            }
        }
        (kg, mg)
    }

    /// Static deflection under a transverse tip force [m per DOF].
    ///
    /// # Errors
    ///
    /// Propagates a singular stiffness matrix (cannot happen for valid
    /// parameters).
    pub fn static_tip_load(&self, force: f64) -> Result<Vec<f64>> {
        let (kg, _) = self.assemble();
        let mut f = vec![0.0; self.n_dofs()];
        f[self.tip_dof()] = force;
        LuFactors::factor(&kg)?.solve(&f)
    }

    /// Lowest `n_modes` natural frequencies [Hz] by shifted inverse
    /// power iteration with mass-orthogonal deflation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NoConvergence`] if an iteration stalls.
    pub fn natural_frequencies(&self, n_modes: usize) -> Result<Vec<f64>> {
        let (kg, mg) = self.assemble();
        let n = self.n_dofs();
        let lu = LuFactors::factor(&kg)?;
        let mut modes: Vec<Vec<f64>> = Vec::new();
        let mut freqs = Vec::new();
        for _ in 0..n_modes.min(n) {
            // Deterministic start vector.
            let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.37).collect();
            let mut lambda_prev = 0.0;
            let mut converged = false;
            for it in 0..500 {
                // M-orthogonalize against found modes.
                for m in &modes {
                    let mm = mass_dot(&mg, m, &x)?;
                    for (xi, mi) in x.iter_mut().zip(m) {
                        *xi -= mm * mi;
                    }
                }
                // Power step: x ← K⁻¹ M x.
                let mx = mg.mul_vec(&x)?;
                let y = lu.solve(&mx)?;
                // Rayleigh quotient λ = (xᵀKx)/(xᵀMx) on the new vector.
                let ky = kg.mul_vec(&y)?;
                let num = dot(&y, &ky);
                let my = mg.mul_vec(&y)?;
                let den = dot(&y, &my);
                let lambda = num / den;
                // M-normalize.
                let scale = 1.0 / den.sqrt();
                x = y.iter().map(|v| v * scale).collect();
                if it > 2 && (lambda - lambda_prev).abs() < 1e-12 * lambda.abs() {
                    lambda_prev = lambda;
                    converged = true;
                    break;
                }
                lambda_prev = lambda;
            }
            if !converged {
                return Err(NumericsError::NoConvergence {
                    iterations: 500,
                    residual: lambda_prev,
                });
            }
            freqs.push(lambda_prev.sqrt() / (2.0 * std::f64::consts::PI));
            modes.push(x.clone());
        }
        Ok(freqs)
    }

    /// Damped harmonic response: tip deflection phasor per unit tip
    /// force, at each frequency [Hz].
    ///
    /// Solves `(K + jωC − ω²M)·u = F` with Rayleigh damping.
    ///
    /// # Errors
    ///
    /// Propagates singular complex systems.
    pub fn harmonic_tip_response(&self, freqs: &[f64]) -> Result<Vec<Complex64>> {
        let (kg, mg) = self.assemble();
        let n = self.n_dofs();
        let (ra, rb) = self.rayleigh;
        let mut out = Vec::with_capacity(freqs.len());
        let mut f = vec![Complex64::ZERO; n];
        f[self.tip_dof()] = Complex64::ONE;
        for &freq in freqs {
            let w = 2.0 * std::f64::consts::PI * freq;
            let a = DenseMatrix::from_fn(n, n, |i, j| {
                let k = kg[(i, j)];
                let m = mg[(i, j)];
                Complex64::new(k - w * w * m, w * (ra * m + rb * k))
            });
            let u = LuFactors::factor(&a)?.solve(&f)?;
            out.push(u[self.tip_dof()]);
        }
        Ok(out)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn mass_dot(m: &DenseMatrix<f64>, a: &[f64], b: &[f64]) -> Result<f64> {
    let mb = m.mul_vec(b)?;
    Ok(dot(a, &mb))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 500 µm × 50 µm × 5 µm silicon cantilever.
    fn si_cantilever(n: usize) -> CantileverBeam {
        let l = 500e-6;
        let w = 50e-6;
        let t = 5e-6;
        let e = 169e9; // [110] silicon
        let rho = 2329.0;
        let inertia = w * t * t * t / 12.0;
        CantileverBeam::new(l, e, inertia, rho * w * t, n)
    }

    #[test]
    fn static_tip_deflection_matches_pl3_over_3ei() {
        let beam = si_cantilever(8);
        let p = 1e-6; // 1 µN
        let u = beam.static_tip_load(p).unwrap();
        let tip = u[beam.tip_dof()];
        let expect = p * beam.length.powi(3) / (3.0 * beam.youngs * beam.inertia);
        // Hermite elements are exact for point loads.
        assert!(
            (tip - expect).abs() < expect * 1e-9,
            "{tip:e} vs {expect:e}"
        );
    }

    #[test]
    fn first_frequency_matches_analytic() {
        let beam = si_cantilever(12);
        let freqs = beam.natural_frequencies(2).unwrap();
        // ω₁ = (1.8751)²·√(EI/(ρA·L⁴))
        let lam1 = 1.875_104_068_711_961_f64;
        let w1 = lam1
            * lam1
            * (beam.youngs * beam.inertia / (beam.mass_per_length * beam.length.powi(4))).sqrt();
        let f1 = w1 / (2.0 * std::f64::consts::PI);
        assert!(
            (freqs[0] - f1).abs() < f1 * 1e-4,
            "f1 = {} vs {f1}",
            freqs[0]
        );
        // Second mode: λ₂ = 4.69409.
        let lam2 = 4.694_091_132_974_175_f64;
        let f2 = f1 * (lam2 / lam1).powi(2);
        assert!(
            (freqs[1] - f2).abs() < f2 * 1e-3,
            "f2 = {} vs {f2}",
            freqs[1]
        );
    }

    #[test]
    fn harmonic_response_peaks_at_resonance() {
        let beam = si_cantilever(8).with_rayleigh_damping(50.0, 1e-9);
        let f1 = beam.natural_frequencies(1).unwrap()[0];
        let freqs = [f1 * 0.5, f1, f1 * 2.0];
        let h = beam.harmonic_tip_response(&freqs).unwrap();
        assert!(h[1].abs() > h[0].abs());
        assert!(h[1].abs() > h[2].abs());
        // Low-frequency magnitude approaches the static compliance.
        let static_c = beam.length.powi(3) / (3.0 * beam.youngs * beam.inertia);
        let h_low = beam.harmonic_tip_response(&[f1 * 1e-3]).unwrap()[0];
        assert!(
            (h_low.abs() - static_c).abs() < static_c * 1e-3,
            "{} vs {static_c}",
            h_low.abs()
        );
    }

    #[test]
    fn phase_crosses_minus_ninety_at_resonance() {
        let beam = si_cantilever(8).with_rayleigh_damping(100.0, 1e-9);
        let f1 = beam.natural_frequencies(1).unwrap()[0];
        let h = beam
            .harmonic_tip_response(&[f1 * 0.9, f1, f1 * 1.1])
            .unwrap();
        let phases: Vec<f64> = h.iter().map(|z| z.arg().to_degrees()).collect();
        assert!(phases[0] > -90.0);
        assert!(phases[2] < -90.0);
    }

    #[test]
    fn mesh_refinement_converges() {
        let coarse = si_cantilever(2).natural_frequencies(1).unwrap()[0];
        let fine = si_cantilever(16).natural_frequencies(1).unwrap()[0];
        // Consistent-mass Hermite beams converge from above.
        assert!(coarse >= fine * 0.999);
        assert!((coarse - fine).abs() < fine * 0.01);
    }
}
