//! Q4 bilinear quadrilateral element for the scalar Laplace/Poisson
//! operator `−∇·(ε∇φ) = 0`.

use mems_numerics::quad::gauss_legendre;

/// Shape functions of the bilinear quad at `(ξ, η) ∈ [−1, 1]²`.
pub fn shape(xi: f64, eta: f64) -> [f64; 4] {
    [
        0.25 * (1.0 - xi) * (1.0 - eta),
        0.25 * (1.0 + xi) * (1.0 - eta),
        0.25 * (1.0 + xi) * (1.0 + eta),
        0.25 * (1.0 - xi) * (1.0 + eta),
    ]
}

/// Shape function derivatives `[∂N/∂ξ; ∂N/∂η]` at `(ξ, η)`.
pub fn shape_derivs(xi: f64, eta: f64) -> [[f64; 4]; 2] {
    [
        [
            -0.25 * (1.0 - eta),
            0.25 * (1.0 - eta),
            0.25 * (1.0 + eta),
            -0.25 * (1.0 + eta),
        ],
        [
            -0.25 * (1.0 - xi),
            -0.25 * (1.0 + xi),
            0.25 * (1.0 + xi),
            0.25 * (1.0 - xi),
        ],
    ]
}

/// Element stiffness matrix `∫ ε ∇Nᵢ·∇Nⱼ dΩ` over a quad with corner
/// coordinates `xy` (counter-clockwise), permittivity `eps`.
///
/// Uses 2×2 Gauss quadrature (exact for the bilinear map on
/// parallelograms).
pub fn stiffness(xy: &[(f64, f64); 4], eps: f64) -> [[f64; 4]; 4] {
    let mut k = [[0.0; 4]; 4];
    let gauss = gauss_legendre(2);
    for &(xi, wx) in gauss {
        for &(eta, wy) in gauss {
            let dn = shape_derivs(xi, eta);
            // Jacobian of the isoparametric map.
            let mut j = [[0.0f64; 2]; 2];
            for a in 0..4 {
                j[0][0] += dn[0][a] * xy[a].0;
                j[0][1] += dn[0][a] * xy[a].1;
                j[1][0] += dn[1][a] * xy[a].0;
                j[1][1] += dn[1][a] * xy[a].1;
            }
            let det = j[0][0] * j[1][1] - j[0][1] * j[1][0];
            assert!(det > 0.0, "degenerate element (det J = {det})");
            let inv = [
                [j[1][1] / det, -j[0][1] / det],
                [-j[1][0] / det, j[0][0] / det],
            ];
            // Cartesian gradients of the shape functions.
            let mut grad = [[0.0f64; 4]; 2];
            for a in 0..4 {
                grad[0][a] = inv[0][0] * dn[0][a] + inv[0][1] * dn[1][a];
                grad[1][a] = inv[1][0] * dn[0][a] + inv[1][1] * dn[1][a];
            }
            let w = wx * wy * det * eps;
            for a in 0..4 {
                for b in 0..4 {
                    k[a][b] += w * (grad[0][a] * grad[0][b] + grad[1][a] * grad[1][b]);
                }
            }
        }
    }
    k
}

/// Gradient of the interpolated field at element center `(ξ=η=0)`,
/// given corner coordinates and nodal values.
pub fn center_gradient(xy: &[(f64, f64); 4], vals: &[f64; 4]) -> (f64, f64) {
    gradient_at(xy, vals, 0.0, 0.0)
}

/// Gradient of the interpolated field at a parametric point.
pub fn gradient_at(xy: &[(f64, f64); 4], vals: &[f64; 4], xi: f64, eta: f64) -> (f64, f64) {
    let dn = shape_derivs(xi, eta);
    let mut j = [[0.0f64; 2]; 2];
    for a in 0..4 {
        j[0][0] += dn[0][a] * xy[a].0;
        j[0][1] += dn[0][a] * xy[a].1;
        j[1][0] += dn[1][a] * xy[a].0;
        j[1][1] += dn[1][a] * xy[a].1;
    }
    let det = j[0][0] * j[1][1] - j[0][1] * j[1][0];
    let inv = [
        [j[1][1] / det, -j[0][1] / det],
        [-j[1][0] / det, j[0][0] / det],
    ];
    let mut gx = 0.0;
    let mut gy = 0.0;
    for a in 0..4 {
        let dndx = inv[0][0] * dn[0][a] + inv[0][1] * dn[1][a];
        let dndy = inv[1][0] * dn[0][a] + inv[1][1] * dn[1][a];
        gx += dndx * vals[a];
        gy += dndy * vals[a];
    }
    (gx, gy)
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: [(f64, f64); 4] = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];

    #[test]
    fn shapes_partition_unity() {
        for &(xi, eta) in &[(0.0, 0.0), (-1.0, 1.0), (0.3, -0.7)] {
            let n = shape(xi, eta);
            let s: f64 = n.iter().sum();
            assert!((s - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn shapes_are_nodal() {
        // N_a(node b) = δ_ab at the parametric corners.
        let corners = [(-1.0, -1.0), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)];
        for (b, &(xi, eta)) in corners.iter().enumerate() {
            let n = shape(xi, eta);
            for (a, &na) in n.iter().enumerate() {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((na - expect).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn unit_square_stiffness_is_known() {
        // Classic Q4 Laplace stiffness on the unit square: diagonal 2/3.
        let k = stiffness(&UNIT, 1.0);
        for (a, row) in k.iter().enumerate() {
            assert!((row[a] - 2.0 / 3.0).abs() < 1e-12);
            // Rows sum to zero (constant field has no energy).
            let sum: f64 = row.iter().sum();
            assert!(sum.abs() < 1e-13);
        }
        // Opposite corner coupling −1/3, adjacent −1/6.
        assert!((k[0][2] + 1.0 / 3.0).abs() < 1e-12);
        assert!((k[0][1] + 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn stiffness_scales_with_permittivity() {
        let k1 = stiffness(&UNIT, 1.0);
        let k2 = stiffness(&UNIT, 8.8542e-12);
        for a in 0..4 {
            for b in 0..4 {
                assert!((k2[a][b] - 8.8542e-12 * k1[a][b]).abs() < 1e-24);
            }
        }
    }

    #[test]
    fn linear_field_energy_is_exact() {
        // φ = x on the unit square: ∫|∇φ|² = 1. uᵀKu must equal it.
        let vals = [0.0, 1.0, 1.0, 0.0];
        let k = stiffness(&UNIT, 1.0);
        let mut energy = 0.0;
        for a in 0..4 {
            for b in 0..4 {
                energy += vals[a] * k[a][b] * vals[b];
            }
        }
        assert!((energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_of_linear_field() {
        // φ = 2x + 3y interpolates exactly; gradient recovered.
        let vals = [0.0, 2.0, 5.0, 3.0];
        let (gx, gy) = center_gradient(&UNIT, &vals);
        assert!((gx - 2.0).abs() < 1e-12);
        assert!((gy - 3.0).abs() < 1e-12);
        let (gx, gy) = gradient_at(&UNIT, &vals, 0.5, -0.5);
        assert!((gx - 2.0).abs() < 1e-12);
        assert!((gy - 3.0).abs() < 1e-12);
    }

    #[test]
    fn distorted_element_still_integrates_constant_gradient() {
        // A sheared parallelogram: φ = x still gives ∫|∇φ|² = area.
        let xy = [(0.0, 0.0), (2.0, 0.5), (2.5, 2.0), (0.5, 1.5)];
        let vals = [xy[0].0, xy[1].0, xy[2].0, xy[3].0];
        let k = stiffness(&xy, 1.0);
        let mut energy = 0.0;
        for a in 0..4 {
            for b in 0..4 {
                energy += vals[a] * k[a][b] * vals[b];
            }
        }
        // Shoelace area of the parallelogram-ish quad.
        let area = 0.5
            * ((xy[0].0 * xy[1].1 - xy[1].0 * xy[0].1)
                + (xy[1].0 * xy[2].1 - xy[2].0 * xy[1].1)
                + (xy[2].0 * xy[3].1 - xy[3].0 * xy[2].1)
                + (xy[3].0 * xy[0].1 - xy[0].0 * xy[3].1));
        assert!((energy - area).abs() < area * 0.02, "{energy} vs {area}");
    }
}
