//! Hardening tests against a live server: streaming results (first
//! chunk before the job finishes), `/v1/metrics` movement, connection
//! caps and read timeouts, HTTP/1.0 close semantics, malformed
//! requests, and the drain × streaming interaction.

use mems_serve::http::{read_chunk, read_chunked_body};
use mems_serve::{Json, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const SWEEP_DECK: &str = "divider sweep\n\
    .param rload=1k\n\
    Vs in 0 6\n\
    R1 in out 1k\n\
    R2 out 0 {rload}\n\
    .op\n\
    .print op v(out)\n\
    .step param rload 1k 5k 1k\n";

/// A `.MC` transient batch slow enough to watch mid-flight.
const MC_TRAN_DECK: &str = "mc resonator\n\
    .param k=200 m=1e-4 alpha=40e-3\n\
    Is 0 vel PWL(0 0 0.1m 1u)\n\
    Mm1 vel 0 {m}\n\
    Kk1 vel 0 {k}\n\
    Dd1 vel 0 {alpha}\n\
    .tran 0.02m 100m\n\
    .print tran v(vel)\n\
    .mc 60 seed=7 k tol=0.05 dist=gauss\n";

/// One-shot request on a fresh connection; de-chunks chunked bodies.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader);
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(&mut reader).expect("chunked body")
    } else {
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("body");
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse().expect("numeric length"))
            .unwrap_or(rest.len());
        rest.truncate(length);
        rest
    };
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn read_head(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status in `{line}`"))
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').expect("header colon");
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    (status, headers)
}

fn parsed(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON `{body}`: {e}"))
}

fn job_id(body: &str) -> u64 {
    parsed(body).get("id").and_then(Json::as_u64).expect("id")
}

fn job_state(addr: SocketAddr, id: u64) -> String {
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200, "{body}");
    parsed(&body)
        .get("state")
        .and_then(Json::as_str)
        .expect("state")
        .to_string()
}

/// Value of the (fully labeled) Prometheus series in `body`.
fn metric(body: &str, series: &str) -> f64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .unwrap_or_else(|| panic!("no series `{series}`"))
        .parse()
        .expect("numeric sample")
}

#[test]
fn results_stream_before_the_job_finishes() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs", MC_TRAN_DECK);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);

    // Open the blocking stream and read the prelude + first record.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(format!("GET /v1/jobs/{id}/results HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, headers) = read_head(&mut reader);
    assert_eq!(status, 200);
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v == "chunked"),
        "stream must be chunked transfer-coded: {headers:?}"
    );
    let prelude = read_chunk(&mut reader).unwrap().expect("prelude chunk");
    let prelude = String::from_utf8(prelude).unwrap();
    assert!(prelude.ends_with("\"points\":["), "{prelude}");
    let first = read_chunk(&mut reader).unwrap().expect("first record");
    assert!(String::from_utf8_lossy(&first).contains("\"index\":0"));

    // The first record arrived while the job was still running: the
    // 60-point batch cannot be terminal after one record.
    let state = job_state(addr, id);
    assert!(
        state != "done" && state != "cancelled",
        "job already terminal ({state}) — stream did not beat the finish"
    );

    // Cancel; the stream must still run to completion, with the
    // cancelled tail state and every remaining index accounted for.
    let (status, _) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 202);
    let mut rest = Vec::new();
    while let Some(chunk) = read_chunk(&mut reader).unwrap() {
        rest.extend_from_slice(&chunk);
    }
    let tail = String::from_utf8(rest).unwrap();
    assert!(
        tail.ends_with("\"next\":60,\"state\":\"cancelled\"}"),
        "{tail}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn nonblocking_poll_returns_a_cursor_midway() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs", MC_TRAN_DECK);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);

    // Wait for some progress, then poll without blocking.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = http(addr, "GET", &format!("/v1/jobs/{id}/results?wait=0"), "");
        let doc = parsed(&body);
        let next = doc.get("next").and_then(Json::as_u64).expect("next");
        let state = doc.get("state").and_then(Json::as_str).expect("state");
        if next > 0 {
            assert!(
                state != "done" && state != "cancelled" || next == 60,
                "{body}"
            );
            break;
        }
        assert!(Instant::now() < deadline, "no progress: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }

    let (status, _) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 202);
    server.shutdown();
    server.join();
}

#[test]
fn http10_responses_close_the_connection() {
    // Regression (server level): HTTP/1.0 requests without
    // `Connection: keep-alive` used to hold the socket open until the
    // read timeout; now the server hangs up after answering.
    let server = Server::start(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /v1/health HTTP/1.0\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    // read_to_end only returns promptly because the server closes.
    stream.read_to_end(&mut response).expect("EOF, not timeout");
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("\"ok\":true"));

    // An HTTP/1.0 results stream is unframed (no chunk sizes) and
    // close-delimited.
    let (status, body) = http(addr, "POST", "/v1/jobs", SWEEP_DECK);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET /v1/jobs/{id}/results?wait=0 HTTP/1.0\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("EOF, not timeout");
    let text = String::from_utf8_lossy(&response);
    assert!(!text.contains("Transfer-Encoding"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    let body_at = text.find("\r\n\r\n").unwrap() + 4;
    parsed(&text[body_at..]); // raw body is one complete JSON document

    server.shutdown();
    server.join();
}

#[test]
fn malformed_requests_get_the_right_status() {
    let server = Server::start(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
    let long_header = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "b".repeat(9000));
    let mut flood = String::from("GET / HTTP/1.1\r\n");
    for i in 0..=100 {
        flood.push_str(&format!("X-H{i}: v\r\n"));
    }
    flood.push_str("\r\n");
    let table: &[(&[u8], u16)] = &[
        (b"BOGUS\r\n\r\n", 400),
        (b"GET / HTTP/2.0\r\n\r\n", 400),
        (b"GET / HTTP/1.1\r\nno-colon\r\n\r\n", 400),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd",
            400,
        ),
        (b"POST /v1/jobs HTTP/1.1\r\nContent-Length: zz\r\n\r\n", 400),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
            413,
        ),
        (long_path.as_bytes(), 414),
        (long_header.as_bytes(), 431),
        (flood.as_bytes(), 431),
        (
            // A chunked body is fine now, but stacking it on a
            // Content-Length is still the smuggling combo.
            b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 3\r\n\r\n0\r\n\r\n",
            400,
        ),
        (
            b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            501,
        ),
    ];
    for (raw, expected) in table {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(raw).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _) = read_head(&mut reader);
        assert_eq!(
            status,
            *expected,
            "request {:?}",
            String::from_utf8_lossy(&raw[..raw.len().min(60)])
        );
        // The framing is untrusted after a violation: the server
        // hangs up rather than resynchronizing.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("EOF, not timeout");
    }

    server.shutdown();
    server.join();
}

#[test]
fn connection_cap_answers_503() {
    let server = Server::start(ServeConfig {
        workers: 0,
        max_conns: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // First connection occupies the only slot (a completed request
    // proves its handler is live and counted).
    let mut first = TcpStream::connect(addr).unwrap();
    first
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    first.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
    let mut first_reader = BufReader::new(first.try_clone().unwrap());
    let (status, headers) = read_head(&mut first_reader);
    assert_eq!(status, 200);
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap();
    let mut body = vec![0u8; length];
    first_reader.read_exact(&mut body).unwrap();

    // Second connection bounces off the cap with a Retry-After.
    let second = TcpStream::connect(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut second_reader = BufReader::new(second.try_clone().unwrap());
    let (status, headers) = read_head(&mut second_reader);
    assert_eq!(status, 503);
    assert!(headers.iter().any(|(k, v)| k == "retry-after" && v == "1"));

    // Releasing the first slot readmits new connections.
    drop(first_reader);
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = TcpStream::connect(addr).unwrap();
        retry
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        retry.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(retry);
        let (status, _) = read_head(&mut reader);
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "slot never released");
        std::thread::sleep(Duration::from_millis(10));
    }

    server.shutdown();
    server.join();
}

#[test]
fn idle_connections_are_dropped_after_the_read_timeout() {
    let server = Server::start(ServeConfig {
        workers: 0,
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Write nothing; the server must hang up on its own.
    let t0 = Instant::now();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("server-side close");
    assert!(buf.is_empty());
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "idle drop took {:?}",
        t0.elapsed()
    );

    server.shutdown();
    server.join();
}

#[test]
fn metrics_counters_move_with_the_workload() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(metric(&body, "mems_serve_jobs_submitted_total"), 0.0);
    assert_eq!(metric(&body, "mems_serve_jobs_total{state=\"done\"}"), 0.0);

    // Submit (miss), resubmit (hit), run both to completion.
    let (s1, b1) = http(addr, "POST", "/v1/jobs", SWEEP_DECK);
    assert_eq!(s1, 201, "{b1}");
    let (s2, b2) = http(addr, "POST", "/v1/jobs", SWEEP_DECK);
    assert_eq!(s2, 201, "{b2}");
    // The blocking stream doubles as a completion wait.
    for body in [&b1, &b2] {
        let id = job_id(body);
        let (_, stream_body) = http(addr, "GET", &format!("/v1/jobs/{id}/results"), "");
        assert!(
            stream_body.ends_with("\"state\":\"done\"}"),
            "{stream_body}"
        );
    }

    // Submit a slow batch and cancel it.
    let (status, body) = http(addr, "POST", "/v1/jobs", MC_TRAN_DECK);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);
    let (status, _) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 202);
    let (_, stream_body) = http(addr, "GET", &format!("/v1/jobs/{id}/results"), "");
    assert!(
        stream_body.ends_with("\"state\":\"cancelled\"}"),
        "{stream_body}"
    );

    let (status, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metric(&body, "mems_serve_jobs_submitted_total"), 3.0);
    assert_eq!(metric(&body, "mems_serve_jobs_total{state=\"done\"}"), 2.0);
    assert_eq!(
        metric(&body, "mems_serve_jobs_total{state=\"cancelled\"}"),
        1.0
    );
    assert_eq!(
        metric(&body, "mems_serve_cache_events_total{event=\"hit\"}"),
        1.0
    );
    assert_eq!(
        metric(&body, "mems_serve_cache_events_total{event=\"miss\"}"),
        2.0
    );
    // 2 × 5 sweep points completed, plus whatever the cancelled batch
    // managed before the token tripped.
    assert!(metric(&body, "mems_serve_points_total{outcome=\"completed\"}") >= 10.0);
    assert!(metric(&body, "mems_serve_points_total{outcome=\"skipped\"}") >= 1.0);
    assert!(metric(&body, "mems_serve_chunk_seconds_count") >= 3.0);
    assert!(metric(&body, "mems_serve_chunk_seconds_bucket{le=\"+Inf\"}") >= 3.0);
    assert!(metric(&body, "mems_serve_requests_total") >= 8.0);
    assert_eq!(metric(&body, "mems_serve_jobs_active"), 0.0);

    // Solver rollups saw real factorizations (the divider sweep is
    // dense-path, the resonator transient scalar-path — either way
    // the totals move).
    let factor_total: f64 = ["dense", "scalar", "supernodal", "other"]
        .iter()
        .map(|p| {
            metric(
                &body,
                &format!("mems_serve_solver_factors_total{{path=\"{p}\"}}"),
            )
        })
        .sum();
    assert!(factor_total >= 1.0, "{body}");

    // Protocol violations land in bad_requests_total.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"BOGUS\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let (status, _) = read_head(&mut reader);
    assert_eq!(status, 400);
    let (_, body) = http(addr, "GET", "/v1/metrics", "");
    assert!(metric(&body, "mems_serve_bad_requests_total") >= 1.0);

    server.shutdown();
    server.join();
}

#[test]
fn draining_still_completes_open_streams() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs", MC_TRAN_DECK);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);

    // Open the blocking stream, then start the drain mid-job.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(format!("GET /v1/jobs/{id}/results HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, _) = read_head(&mut reader);
    assert_eq!(status, 200);
    let _prelude = read_chunk(&mut reader).unwrap().expect("prelude");
    let _first = read_chunk(&mut reader).unwrap().expect("first record");

    // The accept loop dies with the drain, so the shutdown + cancel
    // requests ride one keep-alive control connection opened first.
    let mut control = TcpStream::connect(addr).unwrap();
    control
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut control_reader = BufReader::new(control.try_clone().unwrap());
    for (request, expected) in [
        (
            "POST /v1/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n".to_string(),
            202,
        ),
        // Cancel so the drain needn't run all 60 transients.
        (
            format!("DELETE /v1/jobs/{id} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"),
            202,
        ),
    ] {
        control.write_all(request.as_bytes()).unwrap();
        let (status, headers) = read_head(&mut control_reader);
        assert_eq!(status, expected);
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse().unwrap())
            .unwrap();
        let mut body = vec![0u8; length];
        control_reader.read_exact(&mut body).unwrap();
    }

    // The already-open stream survives the drain and completes.
    let mut rest = Vec::new();
    while let Some(chunk) = read_chunk(&mut reader).unwrap() {
        rest.extend_from_slice(&chunk);
    }
    let tail = String::from_utf8(rest).unwrap();
    assert!(tail.ends_with("\"state\":\"cancelled\"}"), "{tail}");

    server.join();
}

/// A 60-section resistive ladder: ~61 unknowns, comfortably past the
/// sparse-backend threshold, so the job's solver stats report a real
/// fill-ordering cost. The source voltage is a parameter so two
/// submissions can share the MNA *pattern* while hashing to different
/// artifact-cache fingerprints.
fn ladder_deck(volts: u32) -> String {
    use std::fmt::Write as _;
    let mut src = format!("serve ladder\nVs n0 0 {volts}\n");
    for i in 1..=60 {
        let _ = writeln!(src, "R{i} n{} n{i} 100", i - 1);
    }
    src.push_str("Rl n60 0 1k\n.op\n.print op v(n60)\n");
    src
}

/// Runs a deck to completion and returns the job id.
fn run_to_done(addr: SocketAddr, deck: &str) -> u64 {
    let (status, body) = http(addr, "POST", "/v1/jobs", deck);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);
    let (_, stream_body) = http(addr, "GET", &format!("/v1/jobs/{id}/results"), "");
    assert!(
        stream_body.ends_with("\"state\":\"done\"}"),
        "{stream_body}"
    );
    id
}

/// Terminal jobs evict at the `--job-cap` bound: a long-lived daemon's
/// registry stays bounded, evictions are counted, and evicted ids
/// answer 404 while resident ones keep answering.
#[test]
fn terminal_job_registry_stays_bounded() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 4,
        job_cap: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let ids: Vec<u64> = (0..5).map(|_| run_to_done(addr, SWEEP_DECK)).collect();

    // The last job's eviction pass races its stream tail by a hair;
    // poll the counter to its settled value.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, body) = http(addr, "GET", "/v1/metrics", "");
        if metric(&body, "mems_serve_jobs_evicted_total") == 3.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "evictions never reached 3: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Registry holds exactly the two newest-finished jobs.
    let (status, body) = http(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    let total = parsed(&body)
        .get("jobs")
        .and_then(|j| j.get("total"))
        .and_then(Json::as_u64)
        .expect("jobs.total");
    assert_eq!(total, 2, "{body}");
    for &old in &ids[..3] {
        let (status, _) = http(addr, "GET", &format!("/v1/jobs/{old}"), "");
        assert_eq!(status, 404, "job {old} should have been evicted");
    }
    for &new in &ids[3..] {
        let (status, _) = http(addr, "GET", &format!("/v1/jobs/{new}"), "");
        assert_eq!(status, 200, "job {new} should still answer");
    }

    server.shutdown();
    server.join();
}

/// `--client-quota` bounds one client's active jobs: the over-quota
/// submission answers 429 with `Retry-After` and moves the
/// `rejected_total{reason="quota"}` counter, while other clients (and
/// the same client once a job retires) keep submitting freely.
#[test]
fn client_quota_answers_429_with_retry_after() {
    // No workers: admitted jobs stay active forever, pinning the
    // quota accounting in place.
    let server = Server::start(ServeConfig {
        workers: 0,
        client_quota: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs?client=greedy", SWEEP_DECK);
    assert_eq!(status, 201, "{body}");

    // Second submission from the same client: 429 + Retry-After.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /v1/jobs?client=greedy HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{SWEEP_DECK}",
                SWEEP_DECK.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader);
    assert_eq!(status, 429);
    assert!(
        headers.iter().any(|(k, _)| k == "retry-after"),
        "over-quota refusal must carry Retry-After: {headers:?}"
    );

    // Another client is unaffected by greedy's quota.
    let (status, body) = http(addr, "POST", "/v1/jobs?client=modest", SWEEP_DECK);
    assert_eq!(status, 201, "{body}");

    let (_, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(
        metric(&body, "mems_serve_rejected_total{reason=\"quota\"}"),
        1.0
    );
}

/// Request bodies may arrive `Transfer-Encoding: chunked` (satellite
/// of the durability PR): a chunk-framed deck submission decodes,
/// admits, and runs to completion like a Content-Length one.
#[test]
fn chunked_submissions_decode_and_run() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Frame the deck as two chunks to exercise reassembly.
    let (head, tail) = SWEEP_DECK.split_at(SWEEP_DECK.len() / 2);
    let request = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Transfer-Encoding: chunked\r\n\r\n\
         {:x}\r\n{head}\r\n{:x}\r\n{tail}\r\n0\r\n\r\n",
        head.len(),
        tail.len()
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader);
    assert_eq!(status, 201, "{headers:?}");
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().unwrap())
        .expect("content-length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).unwrap();
    let id = job_id(&String::from_utf8(body).unwrap());

    let deadline = Instant::now() + Duration::from_secs(30);
    while job_state(addr, id) != "done" {
        assert!(Instant::now() < deadline, "chunk-submitted job never ran");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Cancelling a job that already reached a terminal state is an
/// idempotent no-op: 200 with the status, repeatably, and the job's
/// `done` state never flips to `cancelled`.
#[test]
fn deleting_a_terminal_job_is_an_idempotent_no_op() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let id = run_to_done(addr, SWEEP_DECK);

    for _ in 0..2 {
        let (status, body) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            parsed(&body).get("state").and_then(Json::as_str),
            Some("done"),
            "{body}"
        );
    }
    let (_, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(
        metric(&body, "mems_serve_jobs_total{state=\"cancelled\"}"),
        0.0
    );
}

/// The machine-wide ordering cache, proven end to end: a second deck
/// with the same MNA pattern (different values, so the artifact cache
/// misses and the system is rebuilt from scratch) reports
/// `order_us == 0` / `order_source == "cached"` in its job metadata.
#[test]
fn resubmitted_pattern_skips_ordering() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let solver = |id: u64| {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = parsed(&body);
        let solver = doc.get("solver").expect("solver metadata");
        let us = solver
            .get("order_us")
            .and_then(Json::as_u64)
            .expect("order_us");
        let source = solver
            .get("order_source")
            .and_then(Json::as_str)
            .expect("order_source")
            .to_string();
        (us, source)
    };

    let cold = run_to_done(addr, &ladder_deck(5));
    let (cold_us, cold_source) = solver(cold);
    assert_eq!(cold_source, "amd", "first submission computes the order");
    assert!(cold_us >= 1, "a computed order costs time, got {cold_us}");

    let warm = run_to_done(addr, &ladder_deck(6));
    let (warm_us, warm_source) = solver(warm);
    assert_eq!(warm_source, "cached", "same pattern must hit the cache");
    assert_eq!(warm_us, 0, "a cache hit costs no ordering time");

    server.shutdown();
    server.join();
}
