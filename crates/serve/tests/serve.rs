//! End-to-end tests against a live server: cache hits, fair-share
//! scheduling, cancellation, backpressure, drain, diagnostics.

use mems_serve::{Json, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A keep-alive HTTP/1.1 client connection.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn { stream, reader }
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> (u16, Vec<(String, String)>, String) {
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
        for (name, value) in headers {
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        req.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(req.as_bytes()).expect("write");
        self.stream.write_all(body.as_bytes()).expect("write body");

        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            let (k, v) = line.split_once(':').expect("header colon");
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            mems_serve::http::read_chunked_body(&mut self.reader).expect("chunked body")
        } else {
            let length: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .map(|(_, v)| v.parse().expect("numeric length"))
                .unwrap_or(0);
            let mut body = vec![0u8; length];
            self.reader.read_exact(&mut body).expect("body");
            body
        };
        (status, headers, String::from_utf8(body).expect("utf8 body"))
    }
}

/// One-shot request on a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = Conn::open(addr).request(method, path, &[], body);
    (status, body)
}

fn parsed(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON `{body}`: {e}"))
}

fn job_id(body: &str) -> u64 {
    parsed(body).get("id").and_then(Json::as_u64).expect("id")
}

/// Polls a job until its state is terminal; returns the final status
/// document.
fn wait_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = parsed(&body);
        let state = doc.get("state").and_then(Json::as_str).expect("state");
        if state == "done" || state == "cancelled" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

const SWEEP_DECK: &str = "divider sweep\n\
    .param rload=1k\n\
    Vs in 0 6\n\
    R1 in out 1k\n\
    R2 out 0 {rload}\n\
    .op\n\
    .print op v(out)\n\
    .step param rload 1k 5k 1k\n";

/// A `.MC` transient batch slow enough to cancel mid-flight.
const MC_TRAN_DECK: &str = "mc resonator\n\
    .param k=200 m=1e-4 alpha=40e-3\n\
    Is 0 vel PWL(0 0 0.1m 1u)\n\
    Mm1 vel 0 {m}\n\
    Kk1 vel 0 {k}\n\
    Dd1 vel 0 {alpha}\n\
    .tran 0.02m 100m\n\
    .print tran v(vel)\n\
    .mc 200 seed=7 k tol=0.05 dist=gauss\n";

#[test]
fn second_submission_hits_the_fingerprint_cache() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs", SWEEP_DECK);
    assert_eq!(status, 201, "{body}");
    let first = parsed(&body);
    assert_eq!(
        first.get("cache").unwrap().get("hit"),
        Some(&Json::Bool(false))
    );
    let id1 = job_id(&body);
    let done1 = wait_terminal(addr, id1);
    assert_eq!(done1.get("state").and_then(Json::as_str), Some("done"));

    let (status, body) = http(addr, "POST", "/v1/jobs", SWEEP_DECK);
    assert_eq!(status, 201, "{body}");
    let second = parsed(&body);
    assert_eq!(
        second.get("cache").unwrap().get("hit"),
        Some(&Json::Bool(true))
    );
    assert_eq!(
        second.get("timing").unwrap().get("parse_us"),
        Some(&Json::Num(0.0)),
        "a cache hit parses nothing"
    );
    let id2 = job_id(&body);
    let done2 = wait_terminal(addr, id2);

    // The warm job never re-elaborated: every circuit came from the
    // pooled contexts, patched in place.
    let cache = done2.get("cache").unwrap();
    assert_eq!(cache.get("circuits_built"), Some(&Json::Num(0.0)));
    assert_eq!(cache.get("warm_checkout"), Some(&Json::Bool(true)));
    assert!(
        cache
            .get("circuits_patched")
            .and_then(Json::as_u64)
            .unwrap()
            >= 5,
        "{body}"
    );

    // Served point records are byte-identical to `mems sweep --json`.
    let deck = mems_netlist::Deck::parse(SWEEP_DECK).unwrap();
    let batch =
        mems_netlist::run_batch(&deck, &mems_netlist::BatchOptions::with_threads(2)).unwrap();
    let expected: Vec<String> = batch
        .points
        .iter()
        .map(mems_netlist::report::point_json)
        .collect();
    for id in [id1, id2] {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}/results?from=0"), "");
        assert_eq!(status, 200);
        let array_at = body.find("\"points\":").expect("points member") + "\"points\":".len();
        let array_end = body.rfind("],\"next\":").expect("stream tail") + 1;
        let served = &body[array_at..array_end];
        assert_eq!(served, format!("[{}]", expected.join(",")));
    }

    let (_, health) = http(addr, "GET", "/v1/health", "");
    let cache = parsed(&health).get("cache").cloned().unwrap();
    assert_eq!(cache.get("hits"), Some(&Json::Num(1.0)));
    assert_eq!(cache.get("misses"), Some(&Json::Num(1.0)));

    server.shutdown();
    server.join();
}

#[test]
fn fair_share_lets_a_small_job_pass_a_big_one() {
    // One worker, two clients: the big client's 40-point transient
    // batch is chunked; the small client's 2-point sweep interleaves
    // and finishes first even though it was submitted second.
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let big_deck = MC_TRAN_DECK.replace(".mc 200", ".mc 40");
    let small_deck = SWEEP_DECK.replace("1k 5k 1k", "1k 2k 1k");
    let (status, body) = http(addr, "POST", "/v1/jobs?client=big", &big_deck);
    assert_eq!(status, 201, "{body}");
    let big = job_id(&body);
    let (status, body) = http(addr, "POST", "/v1/jobs?client=small", &small_deck);
    assert_eq!(status, 201, "{body}");
    let small = job_id(&body);

    let small_done = wait_terminal(addr, small);
    let big_done = wait_terminal(addr, big);
    let seq = |doc: &Json| doc.get("finish_seq").and_then(Json::as_u64).expect("seq");
    assert!(
        seq(&small_done) < seq(&big_done),
        "small finished {:?}, big {:?}",
        seq(&small_done),
        seq(&big_done)
    );

    server.shutdown();
    server.join();
}

#[test]
fn cancellation_stops_a_running_mc_within_a_chunk() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chunk_size: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs", MC_TRAN_DECK);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);

    // Wait for the first results, then cancel.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        if parsed(&body)
            .get("completed")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
        {
            break;
        }
        assert!(Instant::now() < deadline, "no progress: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, body) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 202, "{body}");

    let done = wait_terminal(addr, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("cancelled"));
    let completed = done.get("completed").and_then(Json::as_u64).unwrap();
    let skipped = done.get("skipped").and_then(Json::as_u64).unwrap();
    assert!(completed < 200, "cancellation did not stop the batch");
    assert!(skipped > 0);
    assert_eq!(completed + skipped, 200, "{done:?}");

    // The streamed point list is complete: unvisited points carry the
    // cancelled marker.
    let (_, body) = http(addr, "GET", &format!("/v1/jobs/{id}/results?from=0"), "");
    let doc = parsed(&body);
    assert_eq!(doc.get("next").and_then(Json::as_u64), Some(200));
    assert!(body.contains(mems_netlist::CANCELLED_POINT));

    server.shutdown();
    server.join();
}

#[test]
fn backpressure_answers_429_with_retry_after() {
    // No workers: admitted jobs stay active, so the second submission
    // must bounce off the queue cap.
    let server = Server::start(ServeConfig {
        workers: 0,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, _) = http(addr, "POST", "/v1/jobs", SWEEP_DECK);
    assert_eq!(status, 201);
    let (status, headers, body) = Conn::open(addr).request("POST", "/v1/jobs", &[], SWEEP_DECK);
    assert_eq!(status, 429, "{body}");
    assert!(
        headers.iter().any(|(k, v)| k == "retry-after" && v == "1"),
        "{headers:?}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn graceful_shutdown_drains_queued_work() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Keep-alive connection: it outlives the accept loop, so the
    // drain can be observed end-to-end over HTTP.
    let mut conn = Conn::open(addr);
    let (status, _, body) = conn.request("POST", "/v1/jobs", &[], SWEEP_DECK);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);
    let (status, _, _) = conn.request("POST", "/v1/shutdown", &[], "");
    assert_eq!(status, 202);

    // Submissions now bounce, but the queued job still completes.
    let (status, _, body) = conn.request("POST", "/v1/jobs", &[], SWEEP_DECK);
    assert_eq!(status, 503, "{body}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = conn.request("GET", &format!("/v1/jobs/{id}"), &[], "");
        assert_eq!(status, 200);
        let doc = parsed(&body);
        if doc.get("state").and_then(Json::as_str) == Some("done") {
            assert_eq!(doc.get("completed").and_then(Json::as_u64), Some(5));
            break;
        }
        assert!(Instant::now() < deadline, "drain stuck: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.join();
}

#[test]
fn check_endpoint_emits_machine_readable_diagnostics() {
    let server = Server::start(ServeConfig {
        check_only: true,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/check", SWEEP_DECK);
    assert_eq!(status, 200);
    let doc = parsed(&body);
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("diagnostics"), Some(&Json::Arr(Vec::new())));

    let (status, body) = http(addr, "POST", "/v1/check", "t\nR1 a b\n.op\n");
    assert_eq!(status, 200);
    let doc = parsed(&body);
    assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
    let diags = match doc.get("diagnostics") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("no diagnostics array: {other:?}"),
    };
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].get("severity").and_then(Json::as_str),
        Some("error")
    );
    assert_eq!(
        diags[0]
            .get("span")
            .unwrap()
            .get("line")
            .and_then(Json::as_u64),
        Some(2)
    );

    // Check-only servers refuse jobs outright.
    let (status, body) = http(addr, "POST", "/v1/jobs", SWEEP_DECK);
    assert_eq!(status, 403, "{body}");

    server.shutdown();
    server.join();
}

#[test]
fn protocol_errors_are_answered_not_dropped() {
    let server = Server::start(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, body) = http(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404, "{body}");
    let (status, _) = http(addr, "GET", "/v1/jobs/999", "");
    assert_eq!(status, 404);
    let (status, body) = http(addr, "POST", "/v1/jobs", "");
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = Conn::open(addr).request(
        "POST",
        "/v1/jobs",
        &[("Content-Type", "application/json")],
        "{\"client\":\"x\"}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("deck"));

    // A submission with diagnostics answers 400 with the shared
    // diagnostics format.
    let (status, body) = http(addr, "POST", "/v1/jobs", "t\nR1 a b\n.op\n");
    assert_eq!(status, 400);
    assert!(body.contains("\"diagnostics\":"), "{body}");

    // JSON submissions carry deck + client.
    let deck_json = format!(
        "{{\"deck\":\"{}\",\"client\":\"json-client\"}}",
        mems_netlist::report::json_escape(SWEEP_DECK)
    );
    let (status, _, body) = Conn::open(addr).request(
        "POST",
        "/v1/jobs",
        &[("Content-Type", "application/json")],
        &deck_json,
    );
    assert_eq!(status, 201, "{body}");
    assert_eq!(
        parsed(&body).get("client").and_then(Json::as_str),
        Some("json-client")
    );

    server.shutdown();
    server.join();
}
