//! Durability tests against live servers: restart recovery from a
//! `--data-dir` spill, `--job-cap` demotion to disk-backed serving,
//! crash-interrupted jobs recovering their durable prefix, torn-tail
//! detection, and fault-injected degradation to memory-only mode.

use mems_serve::http::read_chunked_body;
use mems_serve::{FaultIo, JobStore, Json, RealIo, ServeConfig, Server, StoreIo};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A 5-point `.step` sweep — small enough to finish in milliseconds,
/// big enough that a durable prefix is distinguishable from the whole.
const SWEEP_DECK: &str = "divider sweep\n\
    .param rload=1k\n\
    Vs in 0 6\n\
    R1 in out 1k\n\
    R2 out 0 {rload}\n\
    .op\n\
    .print op v(out)\n\
    .step param rload 1k 5k 1k\n";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mems-durability-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A config with the durable store enabled on `dir`.
fn durable_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        workers: 1,
        data_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

/// One-shot request on a fresh connection; de-chunks chunked bodies.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader);
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(&mut reader).expect("chunked body")
    } else {
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("body");
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse().expect("numeric length"))
            .unwrap_or(rest.len());
        rest.truncate(length);
        rest
    };
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn read_head(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status in `{line}`"))
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').expect("header colon");
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    (status, headers)
}

fn parsed(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON `{body}`: {e}"))
}

fn job_id(body: &str) -> u64 {
    parsed(body).get("id").and_then(Json::as_u64).expect("id")
}

/// Submits `deck` and polls until the job is terminal; returns its id.
fn run_to_done(addr: SocketAddr, deck: &str) -> u64 {
    let (status, body) = http(addr, "POST", "/v1/jobs", deck);
    assert_eq!(status, 201, "{body}");
    let id = job_id(&body);
    let state = wait_terminal(addr, id);
    assert_eq!(state.get("state").and_then(Json::as_str), Some("done"));
    id
}

fn wait_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = parsed(&body);
        let state = doc.get("state").and_then(Json::as_str).expect("state");
        if state == "done" || state == "cancelled" || state == "failed" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Length of a results body's `points` array.
fn points_len(doc: &Json) -> usize {
    match doc.get("points") {
        Some(Json::Arr(a)) => a.len(),
        other => panic!("no points array: {other:?}"),
    }
}

/// Value of the (fully labeled) Prometheus series in `body`.
fn metric(body: &str, series: &str) -> f64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .unwrap_or_else(|| panic!("no series `{series}`"))
        .parse()
        .expect("numeric sample")
}

#[test]
fn completed_jobs_survive_restart_byte_identical() {
    let tmp = TempDir::new("restart");

    // First server lifetime: run a sweep to completion and capture the
    // exact results body the live stream serves.
    let (id, live_body, live_completed) = {
        let server = Server::start(durable_config(&tmp.0)).unwrap();
        let addr = server.addr();
        let id = run_to_done(addr, SWEEP_DECK);
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}/results"), "");
        assert_eq!(status, 200, "{body}");
        let completed = parsed(&http(addr, "GET", &format!("/v1/jobs/{id}"), "").1)
            .get("completed")
            .and_then(Json::as_u64)
            .expect("completed");
        server.shutdown();
        server.join();
        (id, body, completed)
    };
    assert_eq!(live_completed, 5);

    // Second lifetime on the same data-dir: the job must be queryable
    // and its results byte-identical to what the live stream sent.
    let server = Server::start(durable_config(&tmp.0)).unwrap();
    let addr = server.addr();
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200, "{body}");
    let doc = parsed(&body);
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(doc.get("completed").and_then(Json::as_u64), Some(5));
    assert_eq!(doc.get("stored").and_then(Json::as_bool), Some(true));

    let (status, stored_body) = http(addr, "GET", &format!("/v1/jobs/{id}/results"), "");
    assert_eq!(status, 200);
    assert_eq!(
        stored_body, live_body,
        "disk-served results must be byte-identical to the live stream"
    );

    let (_, metrics) = http(addr, "GET", "/v1/metrics", "");
    assert!(metric(&metrics, "mems_serve_store_replayed_jobs_total") >= 1.0);
    assert_eq!(metric(&metrics, "mems_serve_store_degraded"), 0.0);

    // Cancelling a stored (already terminal) job is an idempotent
    // no-op: 200 with the stored status, not 404/409.
    let (status, body) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        parsed(&body).get("state").and_then(Json::as_str),
        Some("done")
    );

    // Ids keep growing across restarts: a new submission must not
    // collide with (or shadow) the stored job.
    let new_id = run_to_done(addr, SWEEP_DECK);
    assert!(new_id > id, "id {new_id} reused at or below stored id {id}");
}

#[test]
fn evicted_terminal_jobs_demote_to_disk() {
    let tmp = TempDir::new("demote");
    let server = Server::start(ServeConfig {
        job_cap: 1,
        ..durable_config(&tmp.0)
    })
    .unwrap();
    let addr = server.addr();

    let first = run_to_done(addr, SWEEP_DECK);
    // A second terminal job pushes the first over `--job-cap`; the
    // eviction happens on the retiring worker, so poll briefly.
    let second = run_to_done(
        addr,
        "other deck\nVs a 0 2\nR1 a 0 1k\n.op\n.print op v(a)\n",
    );
    assert_ne!(first, second);
    let deadline = Instant::now() + Duration::from_secs(10);
    let doc = loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{first}"), "");
        assert_eq!(status, 200, "evicted job must stay queryable: {body}");
        let doc = parsed(&body);
        if doc.get("stored").and_then(Json::as_bool) == Some(true) {
            break doc;
        }
        assert!(Instant::now() < deadline, "job {first} never demoted");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("done"));

    // And its results still serve, complete, from the spill.
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{first}/results"), "");
    assert_eq!(status, 200);
    let doc = parsed(&body);
    assert_eq!(doc.get("next").and_then(Json::as_u64), Some(5));
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(points_len(&doc), 5);
}

#[test]
fn interrupted_jobs_recover_with_their_durable_prefix() {
    let tmp = TempDir::new("interrupted");

    // Emulate a SIGKILL mid-job: a store with a begun job and two
    // appended records, dropped without finalize — exactly the on-disk
    // state a killed server leaves behind.
    {
        let store = JobStore::open(&tmp.0, u64::MAX, Arc::new(RealIo) as Arc<dyn StoreIo>);
        store.begin(42, "crashed-client", 5, 0xfeed);
        store.append(42, 0, b"{\"index\":0}");
        store.append(42, 1, b"{\"index\":1}");
        drop(store);
    }

    let server = Server::start(durable_config(&tmp.0)).unwrap();
    let addr = server.addr();
    let (status, body) = http(addr, "GET", "/v1/jobs/42", "");
    assert_eq!(status, 200, "{body}");
    let doc = parsed(&body);
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("failed"));
    assert_eq!(
        doc.get("reason").and_then(Json::as_str),
        Some("interrupted")
    );
    assert_eq!(doc.get("completed").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("points").and_then(Json::as_u64), Some(5));

    // The durable prefix serves; the `next` cursor is honest about
    // where it ends.
    let (status, body) = http(addr, "GET", "/v1/jobs/42/results", "");
    assert_eq!(status, 200);
    let doc = parsed(&body);
    assert_eq!(doc.get("next").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("failed"));
    assert!(body.contains("{\"index\":0}") && body.contains("{\"index\":1}"));

    // New ids start above the recovered job's.
    let new_id = run_to_done(addr, SWEEP_DECK);
    assert!(new_id > 42);
}

#[test]
fn truncated_tail_records_are_dropped_not_served() {
    let tmp = TempDir::new("torn");
    let id = {
        let server = Server::start(durable_config(&tmp.0)).unwrap();
        let id = run_to_done(server.addr(), SWEEP_DECK);
        server.shutdown();
        server.join();
        id
    };

    // Tear the spill's tail, as a crash mid-append would.
    let spill = tmp.0.join(format!("{id}.results"));
    let full = std::fs::read(&spill).expect("spill bytes");
    std::fs::write(&spill, &full[..full.len() - 5]).expect("truncate");

    let server = Server::start(durable_config(&tmp.0)).unwrap();
    let addr = server.addr();
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}/results"), "");
    assert_eq!(status, 200, "{body}");
    let doc = parsed(&body);
    // Four whole records survive; the torn fifth is dropped, never
    // served as garbage.
    assert_eq!(doc.get("next").and_then(Json::as_u64), Some(4));
    assert_eq!(points_len(&doc), 4);
    assert!(!body.contains("\"index\":4"), "torn record served: {body}");

    let (_, metrics) = http(addr, "GET", "/v1/metrics", "");
    assert!(metric(&metrics, "mems_serve_store_corrupt_records_total") >= 1.0);
}

#[test]
fn store_faults_degrade_to_memory_only_without_5xx() {
    // Two distinct disk-death modes: the append path erroring, and
    // fsync erroring. Both must leave every job API fully functional.
    type Plan = fn() -> FaultIo;
    let plans: [(&str, Plan); 2] = [
        ("write", || FaultIo::fail_after_writes(1)),
        ("fsync", FaultIo::fail_fsync),
    ];
    for (tag, plan) in plans {
        let tmp = TempDir::new(tag);
        let server = Server::start(ServeConfig {
            store_io: Some(Arc::new(plan()) as Arc<dyn StoreIo>),
            ..durable_config(&tmp.0)
        })
        .unwrap();
        let addr = server.addr();

        // Submission, status, and the full result stream all answer
        // 2xx from memory even though the store is dying underneath.
        let id = run_to_done(addr, SWEEP_DECK);
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}/results"), "");
        assert_eq!(status, 200, "[{tag}] {body}");
        let doc = parsed(&body);
        assert_eq!(doc.get("next").and_then(Json::as_u64), Some(5), "[{tag}]");
        assert_eq!(
            doc.get("state").and_then(Json::as_str),
            Some("done"),
            "[{tag}]"
        );

        // A second submission also sails through (store calls are
        // silent no-ops once degraded).
        run_to_done(addr, SWEEP_DECK);

        let (_, metrics) = http(addr, "GET", "/v1/metrics", "");
        assert_eq!(
            metric(&metrics, "mems_serve_store_degraded"),
            1.0,
            "[{tag}]"
        );
        let (status, health) = http(addr, "GET", "/v1/health", "");
        assert_eq!(status, 200);
        assert!(
            health.contains("\"degraded\":true"),
            "[{tag}] health must surface the degradation: {health}"
        );
    }
}
