//! Durable job store: crash-safe spill of finished jobs under
//! `--data-dir`, so results outlive the serving process.
//!
//! Two files per job, both owned by this module:
//!
//! * `<id>.meta.json` — job metadata (state, counts, fingerprint),
//!   written with the classic crash-safe dance: write to
//!   `<id>.meta.tmp`, fsync, atomic-rename over the final name, fsync
//!   the directory. A reader never observes a half-written meta file.
//! * `<id>.results` — append-only result spill: one length-prefixed,
//!   FNV-1a-checksummed record per finished point (the exact rendered
//!   JSON the live stream serves, so spill-served bodies stay
//!   byte-identical). Appends are plain `write(2)`s — they survive
//!   SIGKILL via the page cache and are fsynced once at job finish. A
//!   torn tail write (process or machine died mid-append) fails the
//!   length or checksum test on replay and is dropped, never served.
//!
//! On startup [`JobStore::open`] replays the directory: terminal jobs
//! become queryable again, jobs that were mid-run at crash time are
//! recovered as `failed` with `reason="interrupted"` and whatever
//! prefix of points was durably written still retrievable.
//!
//! All I/O goes through the injectable [`StoreIo`] trait; tests drive
//! the failure paths with [`FaultIo`] (fail the N-th write, return a
//! short write then fail, error on fsync). On any real store error the
//! server **degrades to memory-only mode**: warn once, flip the
//! `mems_serve_store_degraded` gauge, keep serving from memory — job
//! APIs never answer 5xx because a disk died.

use crate::json::Json;
use mems_netlist::report::json_escape;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bytes of record framing before the payload: `len: u32 LE`,
/// `index: u32 LE`, `check: u64 LE` (FNV-1a over the index bytes then
/// the payload).
const RECORD_HEADER: usize = 16;

/// Sanity bound on a single record's payload — anything larger in a
/// length prefix is corruption, not data.
const MAX_RECORD: usize = 8 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn record_check(index: u32, payload: &[u8]) -> u64 {
    fnv64(fnv64(FNV_OFFSET, &index.to_le_bytes()), payload)
}

/// One write handle inside the store, behind [`StoreIo::create`].
/// `write` may accept fewer bytes than offered (the store loops);
/// `sync` is fsync.
pub trait StoreFile: Send {
    /// Appends up to `buf.len()` bytes, returning how many were taken.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the store degrades to memory-only mode.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Flushes written bytes to stable storage (fsync).
    ///
    /// # Errors
    ///
    /// Any I/O failure; the store degrades to memory-only mode.
    fn sync(&mut self) -> io::Result<()>;
}

/// The store's view of a filesystem. Production uses [`RealIo`];
/// tests inject [`FaultIo`] to drive every failure path.
pub trait StoreIo: Send + Sync {
    /// `mkdir -p`.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// The entries of `dir`, as full paths.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// The full contents of `path`.
    ///
    /// # Errors
    ///
    /// Any I/O failure (including missing file).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating) `path` for writing.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>>;

    /// Atomic rename.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file (missing is fine to report as an error; callers
    /// treat removal as best-effort).
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs the directory itself, making renames within it durable.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// [`StoreIo`] over the real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

struct RealFile(std::fs::File);

impl StoreFile for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl StoreIo for RealIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
}

struct FaultPlan {
    /// Writes (across every file) that still succeed; once exhausted,
    /// every further write faults. `i64::MAX` means never.
    writes_left: AtomicI64,
    /// Whether the first faulting write returns a *short* count (half
    /// the buffer lands on disk — a torn record) before erroring.
    short_first: bool,
    short_tripped: AtomicBool,
    /// Whether fsync errors.
    fail_sync: bool,
}

/// Fault-injecting [`StoreIo`]: a thin shim over [`RealIo`] whose
/// write/fsync paths can be made to fail on demand, so tests exercise
/// torn tails and degraded-mode behavior against a live server.
pub struct FaultIo {
    real: RealIo,
    plan: Arc<FaultPlan>,
}

impl FaultIo {
    fn with_plan(writes_left: i64, short_first: bool, fail_sync: bool) -> Self {
        FaultIo {
            real: RealIo,
            plan: Arc::new(FaultPlan {
                writes_left: AtomicI64::new(writes_left),
                short_first,
                short_tripped: AtomicBool::new(false),
                fail_sync,
            }),
        }
    }

    /// No faults — behaves exactly like [`RealIo`].
    pub fn passthrough() -> Self {
        Self::with_plan(i64::MAX, false, false)
    }

    /// The first `n` writes (across all files, result records and
    /// metadata alike) succeed; every later write errors.
    pub fn fail_after_writes(n: i64) -> Self {
        Self::with_plan(n, false, false)
    }

    /// Like [`FaultIo::fail_after_writes`], but the first faulting
    /// write lands *half* its buffer before the error — a torn record
    /// on disk.
    pub fn short_then_fail_after_writes(n: i64) -> Self {
        Self::with_plan(n, true, false)
    }

    /// Writes succeed; every fsync errors.
    pub fn fail_fsync() -> Self {
        Self::with_plan(i64::MAX, false, true)
    }
}

struct FaultFile {
    inner: Box<dyn StoreFile>,
    plan: Arc<FaultPlan>,
}

impl StoreFile for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.writes_left.fetch_sub(1, Ordering::SeqCst) > 0 {
            return self.inner.write(buf);
        }
        if self.plan.short_first && !self.plan.short_tripped.swap(true, Ordering::SeqCst) {
            let half = (buf.len() / 2).max(1).min(buf.len());
            return self.inner.write(&buf[..half]);
        }
        Err(io::Error::other("injected write fault"))
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.plan.fail_sync {
            return Err(io::Error::other("injected fsync fault"));
        }
        self.inner.sync()
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.real.create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.real.list(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.real.read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        Ok(Box::new(FaultFile {
            inner: self.real.create(path)?,
            plan: Arc::clone(&self.plan),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.real.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.real.remove(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if self.plan.fail_sync {
            return Err(io::Error::other("injected fsync fault"));
        }
        self.real.sync_dir(path)
    }
}

/// The persisted metadata of one job, as replayed or finalized.
#[derive(Debug, Clone)]
pub struct StoredMeta {
    /// Server-unique job id (ids keep growing across restarts).
    pub id: u64,
    /// Fair-share queue key.
    pub client: String,
    /// Terminal wire state: `done`, `cancelled`, or `failed` (a job
    /// recovered from a crash).
    pub state: String,
    /// Failure reason (`interrupted` for crash-recovered jobs).
    pub reason: Option<String>,
    /// Total points of the job.
    pub points: usize,
    /// Simulated-point count at finish (for crash-recovered jobs: how
    /// many records survived on disk).
    pub completed: usize,
    /// Cancellation-skipped point count.
    pub skipped: usize,
    /// Deck fingerprint.
    pub fingerprint: u64,
    /// Valid (checksum-verified) prefix length of the result spill —
    /// serving never reads past this.
    pub result_bytes: u64,
}

impl StoredMeta {
    /// The status document for a job served from spill — same core
    /// fields as a live job's status, plus `"stored":true` so clients
    /// can tell the result is disk-backed (cache/timing metadata died
    /// with the process that ran the job).
    pub fn status_json(&self) -> String {
        format!(
            concat!(
                "{{\"id\":{},\"client\":\"{}\",\"state\":\"{}\",\"reason\":{},",
                "\"points\":{},\"completed\":{},\"skipped\":{},",
                "\"fingerprint\":\"{:016x}\",\"stored\":true}}"
            ),
            self.id,
            json_escape(&self.client),
            self.state,
            self.reason
                .as_ref()
                .map_or_else(|| "null".to_string(), |r| format!("\"{}\"", json_escape(r))),
            self.points,
            self.completed,
            self.skipped,
            self.fingerprint,
        )
    }
}

fn meta_json(m: &StoredMeta) -> String {
    format!(
        concat!(
            "{{\"v\":1,\"id\":{},\"client\":\"{}\",\"state\":\"{}\",\"reason\":{},",
            "\"points\":{},\"completed\":{},\"skipped\":{},\"fingerprint\":\"{:016x}\"}}"
        ),
        m.id,
        json_escape(&m.client),
        m.state,
        m.reason
            .as_ref()
            .map_or_else(|| "null".to_string(), |r| format!("\"{}\"", json_escape(r))),
        m.points,
        m.completed,
        m.skipped,
        m.fingerprint,
    )
}

fn parse_meta(src: &str) -> Option<StoredMeta> {
    let doc = Json::parse(src).ok()?;
    Some(StoredMeta {
        id: doc.get("id")?.as_u64()?,
        client: doc.get("client")?.as_str()?.to_string(),
        state: doc.get("state")?.as_str()?.to_string(),
        reason: doc
            .get("reason")
            .and_then(|r| r.as_str())
            .map(str::to_string),
        points: doc.get("points")?.as_u64()? as usize,
        completed: doc.get("completed")?.as_u64()? as usize,
        skipped: doc.get("skipped")?.as_u64()? as usize,
        fingerprint: u64::from_str_radix(doc.get("fingerprint")?.as_str()?, 16).ok()?,
        result_bytes: 0,
    })
}

fn terminal_state(state: &str) -> bool {
    matches!(state, "done" | "cancelled" | "failed")
}

/// Decodes the valid record prefix of a spill file: the records, the
/// byte length of the verified prefix, and whether a torn/corrupt tail
/// was dropped.
fn decode_records(bytes: &[u8]) -> (Vec<(u32, String)>, usize, bool) {
    let mut out = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.len() < RECORD_HEADER {
            return (out, at, !rest.is_empty());
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let index = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let check = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        if len > MAX_RECORD || rest.len() - RECORD_HEADER < len {
            return (out, at, true);
        }
        let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
        if record_check(index, payload) != check {
            return (out, at, true);
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return (out, at, true);
        };
        out.push((index, text.to_string()));
        at += RECORD_HEADER + len;
    }
}

fn write_all(file: &mut dyn StoreFile, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match file.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "store file refused bytes",
                ))
            }
            Ok(n) => buf = &buf[n.min(buf.len())..],
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Counter snapshot for `/v1/metrics` and `/v1/health`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Terminal jobs queryable from spill.
    pub jobs: usize,
    /// Verified result-spill bytes on disk (terminal jobs).
    pub disk_bytes: u64,
    /// Whether the store has degraded to memory-only mode.
    pub degraded: bool,
    /// Result-record bytes appended (framing included).
    pub bytes_written: u64,
    /// Result-record appends.
    pub writes: u64,
    /// Jobs recovered from disk at startup.
    pub replayed_jobs: u64,
    /// Torn/corrupt spill tails dropped on replay.
    pub corrupt_records: u64,
    /// Stored jobs evicted to enforce `--spill-cap-bytes`.
    pub evicted_jobs: u64,
}

struct Writer {
    file: Box<dyn StoreFile>,
    meta: StoredMeta,
    bytes: u64,
}

#[derive(Default)]
struct Inner {
    /// Open spill writers for live jobs.
    writers: HashMap<u64, Writer>,
    /// Terminal jobs on disk, in id order (ids are monotonic across
    /// restarts, so the smallest id is the oldest job — the spill-cap
    /// eviction order).
    stored: BTreeMap<u64, StoredMeta>,
    /// Total verified spill bytes across `stored`.
    bytes: u64,
}

/// The durable job store. All methods are infallible from the
/// caller's view: any real I/O error flips the store into degraded
/// memory-only mode (warn once, gauge up, subsequent store calls
/// no-op) instead of surfacing — the serving path never 500s because
/// a disk died.
pub struct JobStore {
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    spill_cap: u64,
    degraded: AtomicBool,
    bytes_written: AtomicU64,
    writes: AtomicU64,
    replayed: AtomicU64,
    corrupt: AtomicU64,
    evicted: AtomicU64,
    inner: Mutex<Inner>,
}

impl JobStore {
    /// Opens (creating if needed) the store under `dir` and replays
    /// whatever jobs a previous process left there. Replay failures
    /// degrade the store rather than failing the server.
    pub fn open(dir: &Path, spill_cap: u64, io: Arc<dyn StoreIo>) -> JobStore {
        let store = JobStore {
            io,
            dir: dir.to_path_buf(),
            spill_cap: spill_cap.max(1),
            degraded: AtomicBool::new(false),
            bytes_written: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        };
        if let Err(e) = store.replay() {
            store.degrade(&e);
        }
        store
    }

    fn meta_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id}.meta.json"))
    }

    fn tmp_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id}.meta.tmp"))
    }

    fn results_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id}.results"))
    }

    /// Whether the store has fallen back to memory-only mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    fn degrade(&self, err: &io::Error) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            eprintln!("mems serve: job store degraded to memory-only mode: {err}");
        }
        // Drop open writers — no further spill I/O for in-flight jobs.
        self.inner
            .lock()
            .expect("no poisoned store lock")
            .writers
            .clear();
    }

    fn replay(&self) -> io::Result<()> {
        self.io.create_dir_all(&self.dir)?;
        let mut meta_files = Vec::new();
        let mut result_files = Vec::new();
        for path in self.io.list(&self.dir)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".meta.tmp") {
                // A crash between temp-write and rename: the final
                // meta (if any) is intact, the temp is garbage.
                let _ = self.io.remove(&path);
            } else if let Some(stem) = name.strip_suffix(".meta.json") {
                if let Ok(id) = stem.parse::<u64>() {
                    meta_files.push((id, path));
                }
            } else if let Some(stem) = name.strip_suffix(".results") {
                if let Ok(id) = stem.parse::<u64>() {
                    result_files.push((id, path));
                }
            }
        }
        let mut inner = self.inner.lock().expect("no poisoned store lock");
        for (id, path) in meta_files {
            let text = match self.io.read(&path).map(String::from_utf8) {
                Ok(Ok(text)) => text,
                _ => {
                    // Unreadable/undecodable meta: corruption beyond a
                    // torn tail. Drop the job rather than serve junk.
                    self.corrupt.fetch_add(1, Ordering::SeqCst);
                    let _ = self.io.remove(&path);
                    let _ = self.io.remove(&self.results_path(id));
                    continue;
                }
            };
            let Some(mut meta) = parse_meta(&text) else {
                self.corrupt.fetch_add(1, Ordering::SeqCst);
                let _ = self.io.remove(&path);
                let _ = self.io.remove(&self.results_path(id));
                continue;
            };
            meta.id = id;
            let spill = self.io.read(&self.results_path(id)).unwrap_or_default();
            let (records, valid_len, torn) = decode_records(&spill);
            if torn {
                self.corrupt.fetch_add(1, Ordering::SeqCst);
            }
            meta.result_bytes = valid_len as u64;
            if !terminal_state(&meta.state) {
                // Mid-run at crash time: recover as failed/interrupted
                // with the durably written prefix still retrievable.
                meta.state = "failed".to_string();
                meta.reason = Some("interrupted".to_string());
                meta.completed = records.len();
                meta.skipped = 0;
                self.write_meta(&meta)?;
            }
            inner.bytes += meta.result_bytes;
            inner.stored.insert(id, meta);
            self.replayed.fetch_add(1, Ordering::SeqCst);
        }
        // Orphan result files (no meta survived) are unreachable.
        for (id, path) in result_files {
            if !inner.stored.contains_key(&id) {
                let _ = self.io.remove(&path);
            }
        }
        Ok(())
    }

    fn write_meta(&self, meta: &StoredMeta) -> io::Result<()> {
        let tmp = self.tmp_path(meta.id);
        let mut file = self.io.create(&tmp)?;
        write_all(file.as_mut(), meta_json(meta).as_bytes())?;
        file.sync()?;
        drop(file);
        self.io.rename(&tmp, &self.meta_path(meta.id))?;
        self.io.sync_dir(&self.dir)
    }

    /// The largest job id on disk — the server resumes its id counter
    /// above this so restarted ids never collide with stored ones.
    pub fn max_id(&self) -> u64 {
        let inner = self.inner.lock().expect("no poisoned store lock");
        let stored = inner.stored.keys().next_back().copied().unwrap_or(0);
        let open = inner.writers.keys().max().copied().unwrap_or(0);
        stored.max(open)
    }

    /// Registers a freshly admitted job: durably writes its `running`
    /// meta and opens the result spill. Must run before the job's
    /// first point can finish.
    pub fn begin(&self, id: u64, client: &str, points: usize, fingerprint: u64) {
        if self.is_degraded() {
            return;
        }
        let meta = StoredMeta {
            id,
            client: client.to_string(),
            state: "running".to_string(),
            reason: None,
            points,
            completed: 0,
            skipped: 0,
            fingerprint,
            result_bytes: 0,
        };
        let opened = self
            .write_meta(&meta)
            .and_then(|()| self.io.create(&self.results_path(id)));
        match opened {
            Ok(file) => {
                self.inner
                    .lock()
                    .expect("no poisoned store lock")
                    .writers
                    .insert(
                        id,
                        Writer {
                            file,
                            meta,
                            bytes: 0,
                        },
                    );
            }
            Err(e) => self.degrade(&e),
        }
    }

    /// Rolls back a [`JobStore::begin`] whose job was never admitted
    /// (scheduler refusal after the spill was opened).
    pub fn discard(&self, id: u64) {
        let had = self
            .inner
            .lock()
            .expect("no poisoned store lock")
            .writers
            .remove(&id)
            .is_some();
        if had {
            let _ = self.io.remove(&self.results_path(id));
            let _ = self.io.remove(&self.meta_path(id));
        }
    }

    /// Appends one finished point's rendered record to the job's
    /// spill. Plain `write(2)` — durable across SIGKILL, fsynced at
    /// finalize.
    pub fn append(&self, id: u64, index: u32, payload: &[u8]) {
        if self.is_degraded() {
            return;
        }
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&index.to_le_bytes());
        frame.extend_from_slice(&record_check(index, payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let failed = {
            let mut inner = self.inner.lock().expect("no poisoned store lock");
            let Some(writer) = inner.writers.get_mut(&id) else {
                return;
            };
            match write_all(writer.file.as_mut(), &frame) {
                Ok(()) => {
                    writer.bytes += frame.len() as u64;
                    self.writes.fetch_add(1, Ordering::SeqCst);
                    self.bytes_written
                        .fetch_add(frame.len() as u64, Ordering::SeqCst);
                    None
                }
                Err(e) => Some(e),
            }
        };
        if let Some(e) = failed {
            self.degrade(&e);
        }
    }

    /// Seals a terminal job: fsyncs the spill, writes the terminal
    /// meta atomically, and indexes the job for disk-backed serving.
    /// Enforces `--spill-cap-bytes` by evicting the oldest stored
    /// jobs. If the fsync or meta write fails, the job's meta stays
    /// `running` on disk and a later restart honestly recovers it as
    /// `interrupted`.
    pub fn finalize(&self, id: u64, state: &str, completed: usize, skipped: usize) {
        if self.is_degraded() {
            return;
        }
        let Some(mut writer) = self
            .inner
            .lock()
            .expect("no poisoned store lock")
            .writers
            .remove(&id)
        else {
            return;
        };
        if let Err(e) = writer.file.sync() {
            self.degrade(&e);
            return;
        }
        drop(writer.file);
        writer.meta.state = state.to_string();
        writer.meta.completed = completed;
        writer.meta.skipped = skipped;
        writer.meta.result_bytes = writer.bytes;
        if let Err(e) = self.write_meta(&writer.meta) {
            self.degrade(&e);
            return;
        }
        let mut inner = self.inner.lock().expect("no poisoned store lock");
        inner.bytes += writer.bytes;
        inner.stored.insert(id, writer.meta);
        // Oldest-first disk eviction; the newest job always stays even
        // if it alone exceeds the cap.
        while inner.bytes > self.spill_cap && inner.stored.len() > 1 {
            let oldest = *inner.stored.keys().next().expect("non-empty stored map");
            let meta = inner.stored.remove(&oldest).expect("present key");
            inner.bytes = inner.bytes.saturating_sub(meta.result_bytes);
            let _ = self.io.remove(&self.results_path(oldest));
            let _ = self.io.remove(&self.meta_path(oldest));
            self.evicted.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The stored meta for `id`, if it is a disk-backed terminal job.
    pub fn lookup(&self, id: u64) -> Option<StoredMeta> {
        self.inner
            .lock()
            .expect("no poisoned store lock")
            .stored
            .get(&id)
            .cloned()
    }

    /// The verified records of a stored job, as `(index, rendered)`
    /// pairs in on-disk order. `None` when the job isn't stored or its
    /// spill can't be read (the caller serves what memory has —
    /// never a 5xx).
    pub fn read_results(&self, id: u64) -> Option<Vec<(u32, String)>> {
        let meta = self.lookup(id)?;
        let bytes = self.io.read(&self.results_path(id)).ok()?;
        let end = (meta.result_bytes as usize).min(bytes.len());
        let (records, _, _) = decode_records(&bytes[..end]);
        Some(records)
    }

    /// Counter snapshot for metrics and health.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("no poisoned store lock");
        StoreStats {
            jobs: inner.stored.len(),
            disk_bytes: inner.bytes,
            degraded: self.is_degraded(),
            bytes_written: self.bytes_written.load(Ordering::SeqCst),
            writes: self.writes.load(Ordering::SeqCst),
            replayed_jobs: self.replayed.load(Ordering::SeqCst),
            corrupt_records: self.corrupt.load(Ordering::SeqCst),
            evicted_jobs: self.evicted.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "mems-store-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&dir).expect("temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open(dir: &Path) -> JobStore {
        JobStore::open(dir, u64::MAX, Arc::new(RealIo))
    }

    #[test]
    fn record_framing_round_trips_and_drops_torn_tails() {
        let mut spill = Vec::new();
        for (index, payload) in [(0u32, "alpha"), (1, "{\"i\":1}"), (2, "")] {
            spill.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            spill.extend_from_slice(&index.to_le_bytes());
            spill.extend_from_slice(&record_check(index, payload.as_bytes()).to_le_bytes());
            spill.extend_from_slice(payload.as_bytes());
        }
        let (records, valid, torn) = decode_records(&spill);
        assert_eq!(
            records,
            vec![
                (0, "alpha".to_string()),
                (1, "{\"i\":1}".to_string()),
                (2, String::new())
            ]
        );
        assert_eq!(valid, spill.len());
        assert!(!torn);

        // Chop into the last record: it is dropped, the prefix stands.
        let (records, valid, torn) = decode_records(&spill[..spill.len() - 1]);
        assert_eq!(records.len(), 2);
        assert!(torn);
        assert!(valid < spill.len());

        // Flip a payload byte: checksum fails, scan stops there.
        let mut flipped = spill.clone();
        let at = RECORD_HEADER + 2; // inside record 0's payload
        flipped[at] ^= 0x40;
        let (records, _, torn) = decode_records(&flipped);
        assert!(records.is_empty());
        assert!(torn);
    }

    #[test]
    fn finalized_jobs_survive_reopen_byte_identical() {
        let tmp = TempDir::new("reopen");
        let store = open(&tmp.0);
        store.begin(7, "alice", 2, 0xabcd);
        store.append(7, 0, b"{\"index\":0}");
        store.append(7, 1, b"{\"index\":1}");
        store.finalize(7, "done", 2, 0);
        drop(store);

        let store = open(&tmp.0);
        let meta = store.lookup(7).expect("stored job");
        assert_eq!(meta.state, "done");
        assert_eq!(meta.points, 2);
        assert_eq!(meta.completed, 2);
        assert_eq!(meta.fingerprint, 0xabcd);
        assert_eq!(
            store.read_results(7).expect("spill"),
            vec![
                (0, "{\"index\":0}".to_string()),
                (1, "{\"index\":1}".to_string())
            ]
        );
        assert_eq!(store.stats().replayed_jobs, 1);
        assert_eq!(store.stats().corrupt_records, 0);
        assert_eq!(store.max_id(), 7);
    }

    #[test]
    fn unfinalized_jobs_recover_as_interrupted_with_prefix() {
        let tmp = TempDir::new("interrupt");
        let store = open(&tmp.0);
        store.begin(3, "bob", 5, 1);
        store.append(3, 0, b"r0");
        store.append(3, 1, b"r1");
        drop(store); // SIGKILL stand-in: no finalize, no fsync

        let store = open(&tmp.0);
        let meta = store.lookup(3).expect("recovered job");
        assert_eq!(meta.state, "failed");
        assert_eq!(meta.reason.as_deref(), Some("interrupted"));
        assert_eq!(meta.completed, 2);
        assert_eq!(meta.points, 5);
        let records = store.read_results(3).expect("prefix");
        assert_eq!(records.len(), 2);

        // The recovery meta is durable: a second replay sees a
        // terminal job, not another interruption.
        drop(store);
        let store = open(&tmp.0);
        assert_eq!(store.lookup(3).expect("still there").state, "failed");
    }

    #[test]
    fn truncated_tail_is_dropped_and_counted() {
        let tmp = TempDir::new("torn");
        let store = open(&tmp.0);
        store.begin(1, "c", 3, 2);
        store.append(1, 0, b"keep-me-0");
        store.append(1, 1, b"keep-me-1");
        store.append(1, 2, b"torn-tail");
        store.finalize(1, "done", 3, 0);
        drop(store);

        let spill = tmp.0.join("1.results");
        let full = std::fs::read(&spill).expect("spill bytes");
        std::fs::write(&spill, &full[..full.len() - 4]).expect("truncate");

        let store = open(&tmp.0);
        let records = store.read_results(1).expect("prefix");
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].1, "keep-me-1");
        assert_eq!(store.stats().corrupt_records, 1);
    }

    #[test]
    fn spill_cap_evicts_oldest_jobs_first() {
        let tmp = TempDir::new("cap");
        // Each record is 16 + 8 = 24 bytes; cap at two jobs' worth.
        let store = JobStore::open(&tmp.0, 48, Arc::new(RealIo));
        for id in 1..=3u64 {
            store.begin(id, "c", 1, 0);
            store.append(id, 0, b"8-bytes!");
            store.finalize(id, "done", 1, 0);
        }
        assert!(store.lookup(1).is_none(), "oldest evicted");
        assert!(store.lookup(2).is_some());
        assert!(store.lookup(3).is_some());
        assert_eq!(store.stats().evicted_jobs, 1);
        assert!(!tmp.0.join("1.results").exists());
        assert!(!tmp.0.join("1.meta.json").exists());
    }

    #[test]
    fn discard_rolls_back_an_unadmitted_begin() {
        let tmp = TempDir::new("discard");
        let store = open(&tmp.0);
        store.begin(9, "c", 1, 0);
        store.discard(9);
        assert!(!tmp.0.join("9.meta.json").exists());
        assert!(!tmp.0.join("9.results").exists());
        drop(store);
        assert_eq!(open(&tmp.0).stats().replayed_jobs, 0);
    }

    #[test]
    fn write_faults_degrade_to_memory_only() {
        let tmp = TempDir::new("fault-write");
        let store = JobStore::open(&tmp.0, u64::MAX, Arc::new(FaultIo::fail_after_writes(2)));
        store.begin(1, "c", 2, 0); // meta write consumes fault budget
        store.append(1, 0, b"first");
        store.append(1, 1, b"second"); // trips the fault
        assert!(store.is_degraded());
        assert!(store.stats().degraded);
        // Every later call is a silent no-op, never a panic or error.
        store.append(1, 2, b"ignored");
        store.finalize(1, "done", 2, 0);
        assert!(store.lookup(1).is_none());
    }

    #[test]
    fn fsync_faults_degrade_and_leave_job_recoverable() {
        let tmp = TempDir::new("fault-sync");
        {
            let store = JobStore::open(&tmp.0, u64::MAX, Arc::new(FaultIo::passthrough()));
            store.begin(4, "c", 1, 0);
            store.append(4, 0, b"point");
            drop(store);
        }
        // Reopen with failing fsync: replay must rewrite the meta as
        // interrupted, which needs a sync — the store degrades but the
        // server keeps running.
        let store = JobStore::open(&tmp.0, u64::MAX, Arc::new(FaultIo::fail_fsync()));
        assert!(store.is_degraded());
        // And with a healthy disk the same directory still recovers.
        let store = open(&tmp.0);
        assert!(!store.is_degraded());
        assert_eq!(store.lookup(4).expect("recovered").state, "failed");
    }

    #[test]
    fn short_write_leaves_a_torn_record_that_replay_drops() {
        let tmp = TempDir::new("short");
        {
            // Budget: begin's meta write succeeds (1 write), append 0
            // succeeds (1 write), append 1 lands half its frame then
            // faults.
            let io = Arc::new(FaultIo::short_then_fail_after_writes(2));
            let store = JobStore::open(&tmp.0, u64::MAX, io);
            store.begin(6, "c", 3, 0);
            store.append(6, 0, b"whole-record");
            store.append(6, 1, b"torn-record!");
            assert!(store.is_degraded());
        }
        let store = open(&tmp.0);
        let meta = store.lookup(6).expect("recovered");
        assert_eq!(meta.state, "failed");
        assert_eq!(meta.completed, 1, "torn record dropped");
        assert_eq!(store.stats().corrupt_records, 1);
        assert_eq!(
            store.read_results(6).expect("prefix"),
            vec![(0, "whole-record".to_string())]
        );
    }
}
