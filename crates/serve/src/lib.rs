//! # mems-serve — the long-lived simulation service
//!
//! The paper's methodology — SPICE decks as lumped-parameter models
//! of electromechanical transducers — pays off when many engineers
//! iterate against a *shared, warm* simulator instead of cold CLI
//! runs. This crate is that daemon: an HTTP/1.1 + JSON job API
//! (hand-rolled over [`std::net::TcpListener`], matching the repo's
//! offline no-new-deps style) in front of the `mems-netlist` batch
//! engine.
//!
//! ## The artifact cache
//!
//! Every submission is keyed on its source text. On a hit, the server
//! reuses the parsed deck, the expanded `.STEP`/`.MC` point list, and
//! a pool of warm run contexts whose elaborated circuits are
//! re-bound in place (`Elaborator::patch`) and whose assembly
//! workspaces keep the sparse symbolic factorization + AMD ordering.
//! A re-submitted or parameter-tweaked deck therefore skips parse,
//! elaborate, sweep expansion, *and* symbolic analysis — its job
//! metadata reports `circuits_built == 0`.
//!
//! ## Fair share, cancellation, backpressure
//!
//! Jobs are chunked and scheduled round-robin **per client**, so a
//! 10k-point Monte Carlo cannot starve a two-point sanity sweep.
//! `DELETE /v1/jobs/:id` trips a cooperative [`CancelToken`] checked
//! between points — a running batch stops within one chunk boundary
//! (cancelling an already-terminal job is an idempotent `200` no-op).
//! Past `queue_cap` active jobs — or past `--client-quota` active
//! jobs for one client — submissions answer `429` with `Retry-After`;
//! `POST /v1/shutdown` (and the CLI's Ctrl-C) drains queued chunks
//! before the process exits.
//!
//! ## Streaming, observability, connection hygiene
//!
//! `GET /v1/jobs/:id/results` answers with **chunked transfer
//! coding** and flushes each point record as it finishes — results
//! begin arriving while the job is still running, and a 100k-point
//! job's body never buffers whole (`?wait=0` restores the
//! non-blocking poll with a `next` cursor; HTTP/1.0 clients get a raw
//! close-delimited body). `GET /v1/metrics` exposes Prometheus text
//! format: jobs by terminal state, rejections by reason, cache
//! hit/miss/eviction counters, scheduler queue depth, a per-chunk
//! latency histogram, and linear-solver rollups (supernodal vs scalar
//! factors, fallbacks). Connections are bounded: a `--max-conns` cap
//! answers `503` at the accept loop, per-connection read timeouts
//! drop stalled peers, and the request reader bounds every
//! client-controlled length (request line, header size/count, body —
//! including `Transfer-Encoding: chunked` request bodies, which are
//! decoded under the same body cap).
//!
//! ## Durability
//!
//! With `--data-dir`, finished point records spill to an append-only,
//! checksummed per-job file and job metadata is journaled with
//! write-temp + fsync + atomic-rename (see [`store`]). A restarted
//! server replays the directory: completed jobs stay queryable and
//! their results serve from disk **byte-identical** to the live
//! stream; a job that was mid-run when the process died recovers as
//! `failed`/`interrupted` with its durably written prefix
//! retrievable. Torn tail writes are detected by the length/checksum
//! framing and dropped, never served. On real disk errors the store
//! degrades to memory-only mode (warn once, flip the
//! `mems_serve_store_degraded` gauge) — job APIs never answer `5xx`
//! because a disk died.
//!
//! ## Endpoints
//!
//! | method + path | effect |
//! |---|---|
//! | `POST /v1/jobs` | submit a deck (raw text, or JSON `{"deck": …, "client": …}`) |
//! | `GET /v1/jobs/:id` | job status + cache/timing metadata; with `--data-dir`, terminal jobs evicted by `--job-cap` or left by a previous process answer from spill with `"stored":true` |
//! | `GET /v1/jobs/:id/results?from=K[&wait=0]` | chunked stream of per-point records (byte-identical to `mems sweep --json` points), live until the job finishes; stored jobs stream their spilled records in the same frame |
//! | `DELETE /v1/jobs/:id` | cooperative cancellation (idempotent `200` no-op on terminal jobs) |
//! | `POST /v1/check` | parse/elaborate only; machine-readable diagnostics |
//! | `GET /v1/health` | liveness + cache counters |
//! | `GET /v1/metrics` | Prometheus text-format counters/gauges/histograms |
//! | `POST /v1/shutdown` | graceful drain |
//!
//! [`CancelToken`]: mems_netlist::CancelToken

pub mod cache;
pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod sched;
pub mod server;
pub mod store;

pub use cache::{ArtifactCache, DeckEntry, Lookup};
pub use job::{Job, JobState};
pub use json::Json;
pub use metrics::{Gauges, Metrics};
pub use sched::Scheduler;
pub use server::{ServeConfig, Server, ServerHandle};
pub use store::{FaultIo, JobStore, RealIo, StoreFile, StoreIo, StoredMeta};
