//! The daemon: accept loop, connection handling, request routing,
//! and the worker pool that retires scheduler chunks.

use crate::cache::ArtifactCache;
use crate::http::{
    error_body, read_request, respond, respond_chunked, respond_typed, ReadError, Request,
};
use crate::job::{Job, JobMeta};
use crate::json::Json;
use crate::metrics::{Gauges, Metrics};
use crate::sched::{Chunk, Refusal, Scheduler};
use crate::store::{JobStore, RealIo, StoreIo, StoredMeta};
use mems_netlist::report::{diagnostics_json, Diagnostic};
use mems_netlist::{
    extract_metrics, run_elaborated_ctx, warm_start_chain, Elaborator, FsResolver, IncludeResolver,
    NoIncludes, ParamEnv, PointResult, SolverStats,
};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration (the `mems serve` flags).
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address.
    pub host: String,
    /// Bind port (`0` = ephemeral; the chosen port is printed and
    /// exposed via [`Server::addr`]).
    pub port: u16,
    /// Worker threads. `0` spawns none — jobs queue forever; the
    /// check-only mode and the backpressure tests use this.
    pub workers: usize,
    /// Points per scheduler chunk (fair-share granularity *and* the
    /// cancellation latency bound).
    pub chunk_size: usize,
    /// Max active jobs before `POST /v1/jobs` answers 429.
    pub queue_cap: usize,
    /// Max *terminal* jobs kept resident in the registry
    /// (`--job-cap`). Every job retirement evicts the
    /// oldest-finished jobs over the cap, so a long-lived daemon's
    /// registry stays bounded; an evicted job's id answers 404.
    pub job_cap: usize,
    /// Max decks resident in the artifact cache.
    pub cache_cap: usize,
    /// Max simultaneous connections; excess connections are answered
    /// `503` and dropped (`--max-conns`).
    pub max_conns: usize,
    /// Per-connection socket read timeout — an idle or stalled peer is
    /// dropped after this long (`--read-timeout`).
    pub read_timeout: Duration,
    /// Base directory for `.INCLUDE` resolution; `None` rejects
    /// includes (the safe default for a network-facing daemon).
    pub include_dir: Option<PathBuf>,
    /// Lint service mode: only `/v1/check` and `/v1/health` answer;
    /// job submission is refused.
    pub check_only: bool,
    /// Durable job store directory (`--data-dir`): finished results
    /// spill here and survive restarts and `--job-cap` eviction.
    /// `None` keeps every job memory-only (the pre-store behavior).
    pub data_dir: Option<PathBuf>,
    /// Max bytes of spilled results kept on disk
    /// (`--spill-cap-bytes`); oldest stored jobs evict past this.
    pub spill_cap_bytes: u64,
    /// Max active jobs per client (`--client-quota`); `0` = unlimited.
    /// Over-quota submissions answer 429.
    pub client_quota: usize,
    /// Store I/O implementation. `None` uses the real filesystem;
    /// tests inject [`crate::store::FaultIo`] here to drive the
    /// degraded-mode paths against a live server.
    pub store_io: Option<Arc<dyn StoreIo>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("host", &self.host)
            .field("port", &self.port)
            .field("workers", &self.workers)
            .field("chunk_size", &self.chunk_size)
            .field("queue_cap", &self.queue_cap)
            .field("job_cap", &self.job_cap)
            .field("cache_cap", &self.cache_cap)
            .field("max_conns", &self.max_conns)
            .field("read_timeout", &self.read_timeout)
            .field("include_dir", &self.include_dir)
            .field("check_only", &self.check_only)
            .field("data_dir", &self.data_dir)
            .field("spill_cap_bytes", &self.spill_cap_bytes)
            .field("client_quota", &self.client_quota)
            .field("store_io", &self.store_io.as_ref().map(|_| "<injected>"))
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk_size: 8,
            queue_cap: 64,
            job_cap: 256,
            cache_cap: 32,
            max_conns: 256,
            read_timeout: Duration::from_secs(30),
            include_dir: None,
            check_only: false,
            data_dir: None,
            spill_cap_bytes: 256 << 20,
            client_quota: 0,
            store_io: None,
        }
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    cache: ArtifactCache,
    sched: Scheduler,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    job_cap: usize,
    next_id: AtomicU64,
    /// Global completion sequence (see [`JobMeta::finish_seq`]).
    finish_seq: AtomicU64,
    /// Cleared when shutdown begins; submissions then answer 503.
    accepting: AtomicBool,
    /// Monotonic counters for `/v1/metrics`.
    metrics: Metrics,
    /// Connections currently being served (the `max_conns` gauge).
    conns: AtomicUsize,
    max_conns: usize,
    read_timeout: Duration,
    include_dir: Option<PathBuf>,
    check_only: bool,
    started: Instant,
    /// The durable job store (`--data-dir`), absent in memory-only
    /// mode. Terminal jobs evicted from the registry — or left by a
    /// previous process — stay queryable through it.
    store: Option<Arc<JobStore>>,
}

impl Shared {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("no poisoned registry lock")
            .get(&id)
            .cloned()
    }

    fn resolver(&self) -> Box<dyn IncludeResolver> {
        match &self.include_dir {
            Some(base) => Box::new(FsResolver { base: base.clone() }),
            None => Box::new(NoIncludes),
        }
    }
}

/// A running server. Dropping it without [`Server::shutdown`] +
/// [`Server::join`] detaches the threads (fine for tests; the CLI
/// always joins).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon: accept loop + worker pool.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let store = config.data_dir.as_ref().map(|dir| {
            let io = config
                .store_io
                .clone()
                .unwrap_or_else(|| Arc::new(RealIo) as Arc<dyn StoreIo>);
            Arc::new(JobStore::open(dir, config.spill_cap_bytes, io))
        });
        // Resume the id counter above everything on disk so restarted
        // ids never collide with stored jobs.
        let first_id = store.as_ref().map_or(0, |s| s.max_id());
        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(config.cache_cap),
            sched: Scheduler::new(config.chunk_size, config.queue_cap, config.client_quota),
            jobs: Mutex::new(HashMap::new()),
            job_cap: config.job_cap.max(1),
            next_id: AtomicU64::new(first_id),
            finish_seq: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            metrics: Metrics::default(),
            conns: AtomicUsize::new(0),
            max_conns: config.max_conns.max(1),
            read_timeout: config.read_timeout,
            include_dir: config.include_dir.clone(),
            check_only: config.check_only,
            started: Instant::now(),
            store,
        });

        let workers = (0..if config.check_only { 0 } else { config.workers })
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(chunk) = shared.sched.next_chunk() {
                        run_chunk(&shared, &chunk);
                    }
                })
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if !shared.accepting.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    // Connection cap: refuse loudly rather than let a
                    // connection flood pile up threads. The count is
                    // reserved here (not in the handler) so a burst
                    // cannot overshoot the cap before handlers start.
                    let admitted = shared
                        .conns
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                            (n < shared.max_conns).then_some(n + 1)
                        })
                        .is_ok();
                    if !admitted {
                        shared
                            .metrics
                            .rejected_over_capacity
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = respond(
                            &mut stream,
                            503,
                            &[("Connection", "close"), ("Retry-After", "1")],
                            &error_body("connection limit reached"),
                        );
                        continue;
                    }
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                        shared.conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            })
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates the graceful drain: no further submissions, queued
    /// chunks still retire, workers then exit. Idempotent; also
    /// triggered by `POST /v1/shutdown` and the CLI's Ctrl-C handler.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }

    /// A detachable shutdown handle (the CLI's signal watcher owns
    /// one while [`Server::join`] blocks the main thread).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Blocks until the drain completes (accept loop + workers gone).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Initiates the graceful drain (see [`Server::shutdown`]).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }
}

fn initiate_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.accepting.store(false, Ordering::SeqCst);
    shared.sched.drain();
    // Self-connect to unblock the accept loop's blocking `incoming`.
    let _ = TcpStream::connect(addr);
}

/// Folds the factor/refactor/fallback deltas between two
/// [`RunCtx::solver_snapshot`](mems_netlist::RunCtx::solver_snapshot)
/// calls into the metrics counters, attributed to each system's
/// current factor path. Saturating: a rebuilt system restarts its
/// counters at zero, and a negative delta must not wrap.
fn record_solver_deltas(
    metrics: &Metrics,
    before: &[(&'static str, SolverStats)],
    after: &[(&'static str, SolverStats)],
) {
    for (domain, now) in after {
        let past = before
            .iter()
            .find(|(d, _)| d == domain)
            .map_or((0, 0, 0), |(_, s)| (s.factors, s.refactors, s.fallbacks));
        metrics
            .solver_factors
            .add(now.factor_path, now.factors.saturating_sub(past.0));
        metrics
            .solver_refactors
            .add(now.factor_path, now.refactors.saturating_sub(past.1));
        metrics
            .solver_fallbacks
            .fetch_add(now.fallbacks.saturating_sub(past.2), Ordering::Relaxed);
        // A fresh factorization is the only event that can have paid
        // for an ordering; `order_us` is already 0 when it came from
        // the machine-wide ordering or symbolic cache.
        if now.factors > past.0 {
            metrics
                .solver_order_us
                .fetch_add(now.order_us, Ordering::Relaxed);
        }
    }
}

/// Evicts oldest-finished terminal jobs over the `--job-cap` bound,
/// keeping a long-lived daemon's registry from growing without limit.
/// Streams already holding an `Arc<Job>` keep working. With a durable
/// store the eviction is a *demotion*: the job stays queryable from
/// its spill (status + results); memory-only servers answer 404 for
/// evicted ids like any unknown job.
fn retire_jobs(shared: &Shared) {
    let mut jobs = shared.jobs.lock().expect("no poisoned registry lock");
    let mut terminal: Vec<(u64, u64)> = jobs
        .values()
        .filter(|j| j.state().is_terminal())
        .map(|j| (j.meta().finish_seq, j.id))
        .collect();
    if terminal.len() <= shared.job_cap {
        return;
    }
    terminal.sort_unstable();
    let excess = terminal.len() - shared.job_cap;
    for &(_, id) in &terminal[..excess] {
        jobs.remove(&id);
    }
    shared
        .metrics
        .jobs_evicted
        .fetch_add(excess as u64, Ordering::Relaxed);
}

/// Runs one scheduler chunk on a checked-out cache context.
fn run_chunk(shared: &Shared, chunk: &Chunk) {
    let job = &chunk.job;
    let chunk_t0 = Instant::now();
    let mut meta = JobMeta::default();
    if !job.cancel.is_cancelled() {
        let entry = &job.entry;
        let (mut ctx, warm) = entry.checkout();
        meta.warm_checkout = warm;
        // Rebuilding the Elaborator per chunk mirrors the batch
        // engine's per-worker rebuild: HDL model compilation is cheap,
        // and the expensive artifacts (circuits, symbolic
        // factorization) live in the pooled context.
        if let Ok(elab) = Elaborator::new(&entry.deck) {
            let guesses = job.guesses.get_or_init(|| {
                warm_start_chain(&entry.deck, &elab, &job.points, false, &job.cancel)
            });
            let before = ctx.stats;
            let solver_before = ctx.solver_snapshot();
            for index in chunk.start..chunk.end {
                if job.cancel.is_cancelled() {
                    break;
                }
                let point = &job.points[index];
                ctx.op_guess = guesses
                    .as_ref()
                    .and_then(|g| g.get(index).cloned().flatten());
                let env: ParamEnv = point.overrides.iter().cloned().collect();
                let outcome = match run_elaborated_ctx(&elab, &env, &mut ctx) {
                    Ok(run) => {
                        // Keep the busiest system's snapshot (stats
                        // accumulate over the pooled context, so the
                        // last point's view covers the whole chunk).
                        if let Some((_, st)) = run
                            .solver
                            .iter()
                            .max_by_key(|(_, st)| st.factors + st.refactors)
                        {
                            meta.solver = Some(*st);
                        }
                        Ok(extract_metrics(&entry.deck, &run))
                    }
                    Err(e) => Err(e.to_string()),
                };
                let rendered = job.record(
                    index,
                    &PointResult {
                        point: point.clone(),
                        outcome,
                    },
                );
                // Spill the finished record (plain append, no fsync —
                // off the hot path; durability against machine crash
                // comes from the finalize-time fsync).
                if let Some(store) = &shared.store {
                    store.append(job.id, index as u32, rendered.as_bytes());
                }
                shared
                    .metrics
                    .points_completed
                    .fetch_add(1, Ordering::Relaxed);
            }
            meta.stats.circuits_built = ctx.stats.circuits_built - before.circuits_built;
            meta.stats.circuits_patched = ctx.stats.circuits_patched - before.circuits_patched;
            record_solver_deltas(&shared.metrics, &solver_before, &ctx.solver_snapshot());
        }
        entry.checkin(ctx);
    }
    if job.cancel.is_cancelled() {
        let gaps = job.mark_cancelled_gaps(chunk.start..chunk.end);
        // Spill the cancelled markers too, so a stored cancelled job
        // streams the same complete point list as a live one.
        if let Some(store) = &shared.store {
            for (index, rendered) in &gaps {
                store.append(job.id, *index as u32, rendered.as_bytes());
            }
        }
        shared
            .metrics
            .points_skipped
            .fetch_add(gaps.len() as u64, Ordering::Relaxed);
    }
    shared
        .metrics
        .chunk_seconds
        .observe_us(chunk_t0.elapsed().as_micros() as u64);
    if job.finish_chunk(meta) {
        // End-of-job accounting happens *before* `publish_terminal`:
        // a client that has seen the terminal state (stream tail,
        // status poll) must also see the counters it implies.
        let cancelled = job.skipped() > 0;
        let terminal = if cancelled {
            &shared.metrics.jobs_cancelled
        } else {
            &shared.metrics.jobs_done
        };
        terminal.fetch_add(1, Ordering::Relaxed);
        // Seal the spill *before* the terminal state is observable:
        // whoever sees `done` may immediately be evicted-and-served
        // from disk, so the disk copy must already be complete.
        if let Some(store) = &shared.store {
            store.finalize(
                job.id,
                if cancelled { "cancelled" } else { "done" },
                job.completed(),
                job.skipped(),
            );
        }
        job.publish_terminal(&shared.finish_seq);
        shared.sched.job_retired(&job.client);
        retire_jobs(shared);
    }
}

/// Serves one connection (HTTP/1.1 keep-alive loop with a read
/// timeout — an idle or stalled peer is dropped, not held forever).
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let close = req.wants_close();
                match route(shared, &mut stream, &req) {
                    Ok(force_close) => {
                        if force_close || close {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            Ok(None) => break,
            Err(ReadError::Protocol { status, message }) => {
                // The framing can no longer be trusted; answer the
                // violation and hang up.
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = respond(
                    &mut stream,
                    status,
                    &[("Connection", "close")],
                    &error_body(&message),
                );
                break;
            }
            // Timeouts and resets: hang up silently.
            Err(ReadError::Io(_)) => break,
        }
    }
}

/// Dispatches one request. Returns `true` when the connection must
/// close even though the client asked keep-alive (an unframed
/// HTTP/1.0 stream is delimited by EOF).
fn route(shared: &Shared, stream: &mut TcpStream, req: &Request) -> std::io::Result<bool> {
    let path = req.path.trim_matches('/').to_string();
    let segments: Vec<&str> = path.split('/').collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "health"]) => health(shared, stream)?,
        ("GET", ["v1", "metrics"]) => metrics(shared, stream)?,
        ("POST", ["v1", "check"]) => check(shared, stream, req)?,
        ("POST", ["v1", "jobs"]) => submit(shared, stream, req)?,
        ("GET", ["v1", "jobs", id]) => match find_job(shared, id) {
            Some(JobRef::Live(job)) => respond(stream, 200, &[], &job.status_json())?,
            Some(JobRef::Stored(meta)) => respond(stream, 200, &[], &meta.status_json())?,
            None => respond(stream, 404, &[], &error_body("no such job"))?,
        },
        ("GET", ["v1", "jobs", id, "results"]) => {
            return stream_results(shared, stream, id, req);
        }
        ("DELETE", ["v1", "jobs", id]) => match find_job(shared, id) {
            // Cancelling a job that already reached a terminal state
            // is an idempotent no-op: 200 with the status, without
            // tripping the cancel token — tripping it would race the
            // terminal publication and could flip a `done` job's
            // state string mid-flight.
            Some(JobRef::Live(job)) => {
                if job.state().is_terminal() {
                    respond(stream, 200, &[], &job.status_json())?;
                } else {
                    job.cancel.cancel();
                    respond(stream, 202, &[], &job.status_json())?;
                }
            }
            Some(JobRef::Stored(meta)) => respond(stream, 200, &[], &meta.status_json())?,
            None => respond(stream, 404, &[], &error_body("no such job"))?,
        },
        ("POST", ["v1", "shutdown"]) => {
            let addr = stream.local_addr()?;
            respond(stream, 202, &[], "{\"ok\":true,\"draining\":true}")?;
            initiate_shutdown(shared, addr);
        }
        _ => respond(stream, 404, &[], &error_body("no such endpoint"))?,
    }
    Ok(false)
}

/// `GET /v1/jobs/:id/results[?from=K][&wait=0]`: streams the result
/// records from `from` as a chunked transfer-coded body, each record
/// flushed as its point finishes — a 100k-point job's results never
/// buffer whole, and a watcher sees records live. With `wait=0` the
/// response is the old non-blocking poll: only records already
/// finished, plus a `next` cursor to resume from. HTTP/1.0 clients
/// predate chunked coding and get a raw close-delimited body instead
/// (the returned `true` forces the close).
fn stream_results(
    shared: &Shared,
    stream: &mut TcpStream,
    id: &str,
    req: &Request,
) -> std::io::Result<bool> {
    let from = req
        .query("from")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let wait = req.query("wait") != Some("0");
    let framed = req.http11;
    let job = match find_job(shared, id) {
        Some(JobRef::Live(job)) => job,
        Some(JobRef::Stored(meta)) => {
            return stream_stored_results(shared, stream, &meta, from, framed);
        }
        None => {
            respond(stream, 404, &[], &error_body("no such job"))?;
            return Ok(false);
        }
    };

    let mut w = respond_chunked(stream, 200, &[], framed)?;
    w.write_chunk(
        format!(
            "{{\"id\":{},\"from\":{},\"total\":{},\"points\":[",
            job.id,
            from,
            job.points.len()
        )
        .as_bytes(),
    )?;
    let mut next = from;
    loop {
        let record = if wait {
            job.wait_result(next)
        } else {
            job.result_at(next)
        };
        let Some(record) = record else { break };
        let mut chunk = Vec::with_capacity(record.len() + 1);
        if next > from {
            chunk.push(b',');
        }
        chunk.extend_from_slice(record.as_bytes());
        w.write_chunk(&chunk)?;
        next += 1;
    }
    // The tail carries the cursor and the state — which is only
    // honest *after* the records: a blocking stream outlives the
    // submit-time state.
    w.write_chunk(
        format!("],\"next\":{},\"state\":\"{}\"}}", next, job.state().name()).as_bytes(),
    )?;
    w.finish()?;
    Ok(!framed)
}

/// Streams a disk-backed job's results from its spill, in the same
/// frame as the live stream — for a `done` job the body is
/// byte-identical to what the live server sent. Records stream from
/// `from` while contiguous (a crash-recovered job serves its durable
/// prefix; the `next` cursor is honest about where it ends).
fn stream_stored_results(
    shared: &Shared,
    stream: &mut TcpStream,
    meta: &StoredMeta,
    from: usize,
    framed: bool,
) -> std::io::Result<bool> {
    let mut by_index: Vec<Option<String>> = vec![None; meta.points];
    if let Some(store) = &shared.store {
        for (index, record) in store.read_results(meta.id).unwrap_or_default() {
            if let Some(slot) = by_index.get_mut(index as usize) {
                *slot = Some(record);
            }
        }
    }
    let mut w = respond_chunked(stream, 200, &[], framed)?;
    w.write_chunk(
        format!(
            "{{\"id\":{},\"from\":{},\"total\":{},\"points\":[",
            meta.id, from, meta.points
        )
        .as_bytes(),
    )?;
    let mut next = from;
    while let Some(Some(record)) = by_index.get(next) {
        let mut chunk = Vec::with_capacity(record.len() + 1);
        if next > from {
            chunk.push(b',');
        }
        chunk.extend_from_slice(record.as_bytes());
        w.write_chunk(&chunk)?;
        next += 1;
    }
    w.write_chunk(format!("],\"next\":{},\"state\":\"{}\"}}", next, meta.state).as_bytes())?;
    w.finish()?;
    Ok(!framed)
}

/// Where a job id resolved: the live registry, or the durable store
/// (a job evicted by `--job-cap` or left by a previous process).
enum JobRef {
    Live(Arc<Job>),
    Stored(StoredMeta),
}

/// Resolves a job id: live registry first, then the durable store.
fn find_job(shared: &Shared, id: &str) -> Option<JobRef> {
    let id = id.parse::<u64>().ok()?;
    if let Some(job) = shared.job(id) {
        return Some(JobRef::Live(job));
    }
    let meta = shared.store.as_ref()?.lookup(id)?;
    Some(JobRef::Stored(meta))
}

fn health(shared: &Shared, stream: &mut TcpStream) -> std::io::Result<()> {
    let (active, total) = {
        let jobs = shared.jobs.lock().expect("no poisoned registry lock");
        let active = jobs.values().filter(|j| !j.state().is_terminal()).count();
        (active, jobs.len())
    };
    let store = shared.store.as_ref().map(|s| s.stats());
    let body = format!(
        concat!(
            "{{\"ok\":true,\"check_only\":{},\"draining\":{},\"uptime_us\":{},",
            "\"jobs\":{{\"active\":{},\"total\":{}}},",
            "\"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{}}},",
            "\"store\":{{\"enabled\":{},\"jobs\":{},\"degraded\":{}}}}}"
        ),
        shared.check_only,
        shared.sched.is_draining(),
        shared.started.elapsed().as_micros(),
        active,
        total,
        shared.cache.len(),
        shared.cache.hits.load(Ordering::Relaxed),
        shared.cache.misses.load(Ordering::Relaxed),
        store.is_some(),
        store.as_ref().map_or(0, |s| s.jobs),
        store.as_ref().is_some_and(|s| s.degraded),
    );
    respond(stream, 200, &[], &body)
}

/// `GET /v1/metrics`: the Prometheus text-format scrape.
fn metrics(shared: &Shared, stream: &mut TcpStream) -> std::io::Result<()> {
    let (ordering_cache_hits, ordering_cache_misses) = mems_numerics::ordering::cache_stats();
    let (symbolic_cache_hits, symbolic_cache_misses) =
        mems_numerics::supernodal::symbolic_cache_stats();
    let gauges = Gauges {
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        draining: shared.sched.is_draining(),
        connections_active: shared.conns.load(Ordering::SeqCst),
        queue_depth_chunks: shared.sched.queue_depth(),
        jobs_active: shared.sched.active_jobs(),
        cache_entries: shared.cache.len(),
        cache_hits: shared.cache.hits.load(Ordering::Relaxed),
        cache_misses: shared.cache.misses.load(Ordering::Relaxed),
        cache_evictions: shared.cache.evictions.load(Ordering::Relaxed),
        ordering_cache_hits,
        ordering_cache_misses,
        symbolic_cache_hits,
        symbolic_cache_misses,
        store: shared.store.as_ref().map(|s| s.stats()),
    };
    let body = shared.metrics.render(&gauges);
    respond_typed(stream, 200, "text/plain; version=0.0.4", &[], &body)
}

/// `POST /v1/check`: parse + elaborate, answer the shared
/// machine-readable diagnostics format (also emitted by
/// `mems check --json`).
fn check(shared: &Shared, stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    let source = match deck_source(req) {
        Ok(s) => s,
        Err(msg) => return respond(stream, 400, &[], &error_body(&msg)),
    };
    let mut resolver = shared.resolver();
    let outcome = shared.cache.resolve(&source, &mut *resolver);
    let body = match outcome {
        Ok(_) => "{\"ok\":true,\"diagnostics\":[]}".to_string(),
        Err(e) => format!(
            "{{\"ok\":false,\"diagnostics\":{}}}",
            diagnostics_json(&source, &[Diagnostic::from_error(&e)])
        ),
    };
    respond(stream, 200, &[], &body)
}

/// `POST /v1/jobs`: admit a deck submission.
fn submit(shared: &Shared, stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    if shared.check_only {
        return respond(stream, 403, &[], &error_body("server is check-only"));
    }
    if !shared.accepting.load(Ordering::SeqCst) {
        shared
            .metrics
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        return respond(stream, 503, &[], &error_body("server is shutting down"));
    }
    let (source, client) = match submission(req) {
        Ok(parts) => parts,
        Err(msg) => return respond(stream, 400, &[], &error_body(&msg)),
    };

    let t0 = Instant::now();
    let mut resolver = shared.resolver();
    let (entry, lookup) = match shared.cache.resolve(&source, &mut *resolver) {
        Ok(resolved) => resolved,
        Err(e) => {
            let body = format!(
                "{{\"error\":\"invalid deck\",\"diagnostics\":{}}}",
                diagnostics_json(&source, &[Diagnostic::from_error(&e)])
            );
            return respond(stream, 400, &[], &body);
        }
    };
    let parse_us = match lookup {
        crate::cache::Lookup::Hit => 0,
        crate::cache::Lookup::Miss => t0.elapsed().as_micros() as u64,
    };

    let points = entry.job_points();
    let chunks = shared.sched.chunks_for(points.len());
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    let job = Arc::new(Job::new(
        id, client, entry, lookup, points, chunks, parse_us,
    ));
    // Open the spill *before* admission: a worker may draw the job's
    // first chunk the instant `submit` returns, and its records must
    // find the writer already registered.
    if let Some(store) = &shared.store {
        store.begin(job.id, &job.client, job.points.len(), job.entry.fingerprint);
    }
    match shared.sched.submit(&job) {
        Ok(()) => {
            shared
                .metrics
                .jobs_submitted
                .fetch_add(1, Ordering::Relaxed);
            shared
                .jobs
                .lock()
                .expect("no poisoned registry lock")
                .insert(id, Arc::clone(&job));
            respond(stream, 201, &[], &job.status_json())
        }
        Err(refusal) => {
            if let Some(store) = &shared.store {
                store.discard(job.id);
            }
            match refusal {
                Refusal::Busy => {
                    shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                    respond(
                        stream,
                        429,
                        &[("Retry-After", "1")],
                        &error_body("job queue is full"),
                    )
                }
                Refusal::OverQuota => {
                    shared
                        .metrics
                        .rejected_quota
                        .fetch_add(1, Ordering::Relaxed);
                    respond(
                        stream,
                        429,
                        &[("Retry-After", "1")],
                        &error_body("client active-job quota reached"),
                    )
                }
                Refusal::Draining => {
                    shared
                        .metrics
                        .rejected_draining
                        .fetch_add(1, Ordering::Relaxed);
                    respond(stream, 503, &[], &error_body("server is shutting down"))
                }
            }
        }
    }
}

/// The deck source of a check/submit request: either the `deck`
/// member of a JSON body, or the raw body for `text/plain`
/// submissions (the curl-friendly path).
fn deck_source(req: &Request) -> Result<String, String> {
    let text = req.body_text()?.to_string();
    if text.is_empty() {
        return Err("empty request body".to_string());
    }
    let is_json = req
        .header("content-type")
        .is_some_and(|ct| ct.to_ascii_lowercase().contains("json"));
    if !is_json {
        return Ok(text);
    }
    let doc = Json::parse(&text).map_err(|e| format!("bad JSON body: {e}"))?;
    doc.get("deck")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "JSON body needs a string `deck` member".to_string())
}

/// Splits a submission into deck source and fair-share client id
/// (JSON `client` member, else `?client=` query, else `"anon"`).
fn submission(req: &Request) -> Result<(String, String), String> {
    let source = deck_source(req)?;
    let from_json = || -> Option<String> {
        let doc = Json::parse(req.body_text().ok()?).ok()?;
        doc.get("client").and_then(Json::as_str).map(str::to_string)
    };
    let is_json = req
        .header("content-type")
        .is_some_and(|ct| ct.to_ascii_lowercase().contains("json"));
    let client = if is_json { from_json() } else { None }
        .or_else(|| req.query("client").map(str::to_string))
        .unwrap_or_else(|| "anon".to_string());
    Ok((source, client))
}
