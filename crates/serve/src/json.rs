//! Minimal JSON *reader* for request bodies.
//!
//! The tool chain already owns a JSON writer (`mems_netlist::report`'s
//! NaN-safe emitter); the serve protocol additionally needs to *parse*
//! the small request documents clients POST (`{"deck": "...",
//! "client": "ci"}`). This is a strict recursive-descent reader for
//! exactly the JSON grammar — objects, arrays, strings with the full
//! escape set (`\uXXXX` incl. surrogate pairs), numbers, literals —
//! with byte offsets in every error. No serde, matching the repo's
//! offline no-new-deps style.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keyed map — the serve protocol never depends on
    /// member order, and a map gives O(log n) lookups.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member of an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects
    /// fractional and negative values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes, appended as one UTF-8
            // slice (multibyte deck titles never hit the escape path).
            while self
                .peek()
                .is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(c) => return Err(format!("raw control byte {c:#04x} at byte {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let c = self
            .peek()
            .ok_or_else(|| "unterminated escape".to_string())?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(format!("unpaired surrogate before byte {}", self.pos));
                        }
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(cp)
                            .ok_or_else(|| format!("bad surrogate pair before byte {}", self.pos))?
                    } else {
                        return Err(format!("unpaired surrogate before byte {}", self.pos));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(format!("unpaired surrogate before byte {}", self.pos));
                } else {
                    char::from_u32(hi).expect("BMP scalar")
                }
            }
            other => return Err(format!("bad escape `\\{}`", other as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape `{text}` at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"hi\"").unwrap().as_str().unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(r#"{"deck":"r1 a b 1k","opts":{"threads":4},"tags":[1,2]}"#).unwrap();
        assert_eq!(doc.get("deck").unwrap().as_str(), Some("r1 a b 1k"));
        assert_eq!(
            doc.get("opts").unwrap().get("threads").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(
            doc.get("tags").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])
        );
    }

    #[test]
    fn resolves_the_full_escape_set() {
        let s = Json::parse(r#""q\" b\\ s\/ \b\f\n\r\t uA""#).unwrap();
        assert_eq!(
            s.as_str().unwrap(),
            "q\" b\\ s/ \u{8}\u{c}\n\r\t uA".to_string()
        );
    }

    #[test]
    fn resolves_surrogate_pairs() {
        let s = Json::parse(r#""🌀""#).unwrap();
        assert_eq!(s.as_str().unwrap(), "\u{1f300}");
        assert!(Json::parse(r#""\ud83c x""#).is_err());
        assert!(Json::parse(r#""\udf00""#).is_err());
    }

    #[test]
    fn round_trips_the_writers_escapes() {
        // Whatever the report writer escapes, this reader must give
        // back verbatim — deck titles and probe labels round-trip
        // through the serve protocol.
        for nasty in ["x1.mid", "say \"hi\"\\no", "ctl\u{1}\u{1f}", "xµ.共振 β"] {
            let doc = format!("{{\"t\":\"{}\"}}", mems_netlist::report::json_escape(nasty));
            let back = Json::parse(&doc).unwrap();
            assert_eq!(back.get("t").unwrap().as_str(), Some(nasty));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }
}
