//! Hand-rolled HTTP/1.1 plumbing for the serve protocol.
//!
//! Enough of RFC 9112 for a JSON job API consumed by `curl` and test
//! harnesses: request line + headers + `Content-Length` *or* chunked
//! transfer-coded bodies in, fixed-length or chunked transfer-coded
//! responses out, per-connection keep-alive with version-aware close
//! semantics. The
//! reader is bounded everywhere a client controls a length — request
//! line, header lines, header count, body — so a hostile peer can
//! cost at most a few KiB before being answered with the right 4xx.
//! No TLS — the daemon is an intranet tool, like the simulation farms
//! the paper's methodology feeds.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (decks are text; 4 MiB is roomy).
pub const MAX_BODY: usize = 4 << 20;

/// Longest accepted request line or header line, bytes (terminator
/// included). Overflow answers 414 (request line) or 431 (header).
pub const MAX_LINE: usize = 8 << 10;

/// Most header fields accepted on one request; overflow answers 431.
pub const MAX_HEADERS: usize = 100;

/// How reading a request can fail.
#[derive(Debug)]
pub enum ReadError {
    /// The client violated the protocol: the caller answers `status`
    /// with `message` and hangs up (the framing can no longer be
    /// trusted, so the connection is not reusable).
    Protocol {
        /// Response status to answer with (400/413/414/431/501).
        status: u16,
        /// Human-readable violation, sent as the error body.
        message: String,
    },
    /// Socket-level failure (timeouts included): hang up silently.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn bad(msg: &str) -> ReadError {
    ReadError::Protocol {
        status: 400,
        message: msg.to_string(),
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path (`/v1/jobs/42`), query stripped.
    pub path: String,
    /// Decoded query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lowercased header names and their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when the request carries none).
    pub body: Vec<u8>,
    /// `true` for HTTP/1.1 requests, `false` for HTTP/1.0.
    pub http11: bool,
}

impl Request {
    /// First query value under `key`.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection drops after this exchange. HTTP/1.1
    /// defaults to keep-alive unless the client sends
    /// `Connection: close`; HTTP/1.0 defaults to close unless the
    /// client opts in with `Connection: keep-alive`.
    pub fn wants_close(&self) -> bool {
        let has_token = |t: &str| {
            self.header("connection")
                .is_some_and(|v| v.split(',').any(|p| p.trim().eq_ignore_ascii_case(t)))
        };
        if has_token("close") {
            return true;
        }
        !self.http11 && !has_token("keep-alive")
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// A message naming the encoding problem.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }
}

/// Reads one line (up to `\n`) without ever buffering more than
/// `cap` bytes; an over-long line is a protocol violation answered
/// with `overflow_status`. `Ok(None)` is EOF before any byte.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    cap: usize,
    overflow_status: u16,
) -> Result<Option<String>, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(bad("EOF inside a line"));
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |p| p + 1);
        if line.len() + take > cap {
            // Drain what we peeked so the 4xx response is not mixed
            // into the tail of the over-long line, then refuse.
            reader.consume(take);
            return Err(ReadError::Protocol {
                status: overflow_status,
                message: format!("line exceeds {cap} bytes"),
            });
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if newline.is_some() {
            let text = String::from_utf8_lossy(&line).into_owned();
            return Ok(Some(text.trim_end_matches(['\r', '\n']).to_string()));
        }
    }
}

/// Reads one request off the connection. `Ok(None)` is a clean EOF
/// (client closed between requests); [`ReadError::Protocol`] carries
/// the status the caller answers before hanging up.
///
/// # Errors
///
/// Malformed or over-long request line/headers (400/414/431),
/// conflicting `Content-Length` values or `Transfer-Encoding`
/// alongside `Content-Length` (400 — the request-smuggling combos),
/// transfer codings other than `chunked` (501), bodies over
/// [`MAX_BODY`] (413), or I/O failures (timeouts included).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, ReadError> {
    let Some(line) = read_line_limited(reader, MAX_LINE, 414)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => return Err(bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let http11 = version != "HTTP/1.0";

    let mut headers = Vec::new();
    loop {
        let line =
            read_line_limited(reader, MAX_LINE, 431)?.ok_or_else(|| bad("EOF inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Protocol {
                status: 431,
                message: format!("more than {MAX_HEADERS} header fields"),
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let te_tokens: Vec<String> = headers
        .iter()
        .filter(|(k, _)| k == "transfer-encoding")
        .flat_map(|(_, v)| v.split(','))
        .map(|t| t.trim().to_ascii_lowercase())
        .collect();
    let body = if te_tokens.is_empty() {
        // Every Content-Length must parse and agree — silently taking
        // the first of conflicting values is the request-smuggling
        // classic.
        let mut content_length: Option<usize> = None;
        for (name, value) in &headers {
            if name != "content-length" {
                continue;
            }
            let n: usize = value.parse().map_err(|_| bad("bad Content-Length"))?;
            match content_length {
                Some(prev) if prev != n => {
                    return Err(bad("conflicting Content-Length headers"));
                }
                _ => content_length = Some(n),
            }
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > MAX_BODY {
            return Err(ReadError::Protocol {
                status: 413,
                message: "request body too large".to_string(),
            });
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        body
    } else {
        // Both framings on one request is the other smuggling classic:
        // two parsers in a chain can disagree on where the body ends.
        if headers.iter().any(|(k, _)| k == "content-length") {
            return Err(bad("Transfer-Encoding alongside Content-Length"));
        }
        if te_tokens != ["chunked"] {
            return Err(ReadError::Protocol {
                status: 501,
                message: "only the chunked transfer coding is supported".to_string(),
            });
        }
        read_chunked_request_body(reader)?
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target.as_str(), Vec::new()),
    };
    Ok(Some(Request {
        method,
        // `+` means space only inside query strings; a path keeps it.
        path: percent_decode(path, false),
        query,
        headers,
        body,
        http11,
    }))
}

/// Decodes a chunked transfer-coded request body. Bounded like the
/// fixed-length path: [`MAX_BODY`] cumulative payload bytes (413
/// past it), [`MAX_LINE`] per size line, [`MAX_HEADERS`] trailer
/// fields — a hostile peer cannot stream chunks forever.
fn read_chunked_request_body(reader: &mut BufReader<TcpStream>) -> Result<Vec<u8>, ReadError> {
    let mut body = Vec::new();
    loop {
        let line = read_line_limited(reader, MAX_LINE, 400)?
            .ok_or_else(|| bad("EOF before chunk size"))?;
        // Chunk extensions (`;name=value`) are legal; ignore them.
        let size_text = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16).map_err(|_| bad("bad chunk size"))?;
        if size == 0 {
            break;
        }
        if size > MAX_BODY - body.len() {
            return Err(ReadError::Protocol {
                status: 413,
                message: "request body too large".to_string(),
            });
        }
        let at = body.len();
        body.resize(at + size, 0);
        reader.read_exact(&mut body[at..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("chunk data not CRLF-terminated"));
        }
    }
    // Trailer section: header-like lines up to the blank terminator.
    // We accept and discard them (nothing in the job API uses
    // trailers), but still bound the count.
    for _ in 0..=MAX_HEADERS {
        let line = read_line_limited(reader, MAX_LINE, 431)?
            .ok_or_else(|| bad("EOF inside chunked trailers"))?;
        if line.is_empty() {
            return Ok(body);
        }
    }
    Err(ReadError::Protocol {
        status: 431,
        message: format!("more than {MAX_HEADERS} trailer fields"),
    })
}

/// Splits and percent-decodes a query string.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k, true), percent_decode(v, true))
        })
        .collect()
}

/// `%XX` decoding; `+` maps to space only when `plus_is_space` (query
/// components). Bad escapes pass through verbatim.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 3 <= bytes.len()
                && s.is_char_boundary(i + 1)
                && s.is_char_boundary(i + 3) =>
            {
                match u8::from_str_radix(&s[i + 1..i + 3], 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reason phrases for the statuses the protocol emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete response with fixed length, the given content
/// type, and optional extra headers (e.g. `Retry-After`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn respond_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a JSON response with fixed length and optional extra
/// headers.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    respond_typed(stream, status, "application/json", extra_headers, body)
}

/// An in-flight streaming response body.
///
/// In `framed` mode (HTTP/1.1 clients) the body uses chunked transfer
/// coding, every [`write_chunk`](ChunkedWriter::write_chunk) lands on
/// the wire immediately, and the connection stays reusable after
/// [`finish`](ChunkedWriter::finish). For HTTP/1.0 clients — which
/// predate chunked coding — the body is raw and delimited by
/// connection close, so the caller must hang up after `finish`.
pub struct ChunkedWriter<'a, W: Write + ?Sized = TcpStream> {
    sink: &'a mut W,
    framed: bool,
}

/// Starts a streaming JSON response: writes the head (with
/// `Transfer-Encoding: chunked` when `framed`, `Connection: close`
/// otherwise) and returns the body writer.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn respond_chunked<'a, W: Write + ?Sized>(
    sink: &'a mut W,
    status: u16,
    extra_headers: &[(&str, &str)],
    framed: bool,
) -> std::io::Result<ChunkedWriter<'a, W>> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n",
        reason(status)
    );
    head.push_str(if framed {
        "Transfer-Encoding: chunked\r\n"
    } else {
        "Connection: close\r\n"
    });
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    sink.write_all(head.as_bytes())?;
    sink.flush()?;
    Ok(ChunkedWriter { sink, framed })
}

impl<W: Write + ?Sized> ChunkedWriter<'_, W> {
    /// Writes one body chunk and flushes it onto the wire — the unit
    /// of streaming progress. Empty payloads are skipped: an empty
    /// chunk would terminate the chunked body early.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        if self.framed {
            write!(self.sink, "{:x}\r\n", data.len())?;
            self.sink.write_all(data)?;
            self.sink.write_all(b"\r\n")?;
        } else {
            self.sink.write_all(data)?;
        }
        self.sink.flush()
    }

    /// Terminates the body (the zero-length chunk in framed mode).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(self) -> std::io::Result<()> {
        if self.framed {
            self.sink.write_all(b"0\r\n\r\n")?;
        }
        self.sink.flush()
    }
}

/// Reads one chunk of a chunked-coded body; `Ok(None)` is the
/// zero-length terminator (trailer consumed). Client-side helper for
/// the tests, the `serve_roundtrip` bench, and any consumer that
/// wants records as they stream rather than the whole body.
///
/// # Errors
///
/// Malformed chunk framing or socket failures.
pub fn read_chunk(reader: &mut impl BufRead) -> std::io::Result<Option<Vec<u8>>> {
    let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(invalid("EOF before chunk size"));
    }
    let size = usize::from_str_radix(line.trim(), 16).map_err(|_| invalid("bad chunk size"))?;
    if size == 0 {
        let mut end = String::new();
        reader.read_line(&mut end)?;
        return Ok(None);
    }
    let mut data = vec![0u8; size];
    reader.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(invalid("chunk data not CRLF-terminated"));
    }
    Ok(Some(data))
}

/// De-chunks a whole chunked-coded body.
///
/// # Errors
///
/// Malformed chunk framing or socket failures.
pub fn read_chunked_body(reader: &mut impl BufRead) -> std::io::Result<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(chunk) = read_chunk(reader)? {
        out.extend_from_slice(&chunk);
    }
    Ok(out)
}

/// The uniform error body: `{"error":"..."}`.
pub fn error_body(msg: &str) -> String {
    format!(
        "{{\"error\":\"{}\"}}",
        mems_netlist::report::json_escape(msg)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Feeds `raw` through a real socket pair and returns what
    /// `read_request` makes of it.
    fn parse_raw(raw: &[u8]) -> Result<Option<Request>, ReadError> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let out = read_request(&mut reader);
        writer.join().unwrap();
        out
    }

    fn protocol_status(result: Result<Option<Request>, ReadError>) -> u16 {
        match result {
            Err(ReadError::Protocol { status, .. }) => status,
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }

    #[test]
    fn query_strings_decode() {
        let q = parse_query("client=ci+box&mode=sweep&title=%E5%85%B1%E6%8C%AF&flag");
        assert_eq!(q[0], ("client".into(), "ci box".into()));
        assert_eq!(q[1], ("mode".into(), "sweep".into()));
        assert_eq!(q[2], ("title".into(), "共振".into()));
        assert_eq!(q[3], ("flag".into(), String::new()));
    }

    #[test]
    fn percent_decoding_tolerates_bad_escapes() {
        assert_eq!(percent_decode("a%2Fb", false), "a/b");
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("%zz", false), "%zz");
    }

    #[test]
    fn plus_is_space_only_in_query_strings() {
        // Regression: `+` in a *path* used to decode to a space and
        // mis-route; only query components give `+` that meaning.
        let req = parse_raw(b"GET /v1/jobs/a+b?client=ci+box HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/v1/jobs/a+b");
        assert_eq!(req.query("client"), Some("ci box"));
    }

    #[test]
    fn requests_round_trip_over_a_socket_pair() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /v1/jobs?client=t HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\ndeck",
            )
            .unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query("client"), Some("t"));
        assert_eq!(req.body_text().unwrap(), "deck");
        assert!(req.http11 && !req.wants_close());
        assert!(read_request(&mut reader).unwrap().is_none());
        writer.join().unwrap();
    }

    #[test]
    fn http10_defaults_to_close_and_keep_alive_opts_in() {
        // Regression: HTTP/1.0 requests without a Connection header
        // used to be treated as keep-alive, hanging 1.0 clients that
        // wait for EOF until the read timeout.
        let plain = parse_raw(b"GET /v1/health HTTP/1.0\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!plain.http11);
        assert!(plain.wants_close());

        let opted = parse_raw(b"GET /v1/health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!opted.wants_close());

        let multi = parse_raw(b"GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(multi.wants_close());
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // Regression: the first of several Content-Length headers
        // used to win silently (request-smuggling class).
        let status = protocol_status(parse_raw(
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\ndeck!",
        ));
        assert_eq!(status, 400);

        // Identical duplicates are harmless and accepted.
        let req = parse_raw(
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\ndeck",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body_text().unwrap(), "deck");

        let status = protocol_status(parse_raw(
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ));
        assert_eq!(status, 400);
    }

    #[test]
    fn oversized_lines_and_header_floods_are_bounded() {
        // Regression: header reads used to be unbounded — a client
        // streaming headers forever exhausted memory.
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
        assert_eq!(protocol_status(parse_raw(long_target.as_bytes())), 414);

        let long_header = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "b".repeat(MAX_LINE));
        assert_eq!(protocol_status(parse_raw(long_header.as_bytes())), 431);

        let mut flood = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            flood.push_str(&format!("X-H{i}: v\r\n"));
        }
        flood.push_str("\r\n");
        assert_eq!(protocol_status(parse_raw(flood.as_bytes())), 431);
    }

    #[test]
    fn chunked_request_bodies_decode() {
        // Chunk extensions and trailer fields are consumed; the body
        // is the concatenated chunk payloads.
        let req = parse_raw(
            b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              4;ext=1\r\ndeck\r\n6\r\n-works\r\n0\r\nX-Trailer: ok\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body_text().unwrap(), "deck-works");

        // An empty chunked body is a valid empty body.
        let req =
            parse_raw(b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n")
                .unwrap()
                .unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_chunked_requests_are_refused() {
        // Regression: chunked request bodies used to be a blanket 501;
        // now each malformation gets the precise refusal.
        let te = "POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n";
        // Bad hex in the chunk size.
        assert_eq!(
            protocol_status(parse_raw(format!("{te}\r\nzz\r\n\r\n").as_bytes())),
            400
        );
        // Chunk data missing its CRLF terminator.
        assert_eq!(
            protocol_status(parse_raw(
                format!("{te}\r\n4\r\ndeckXX0\r\n\r\n").as_bytes()
            )),
            400
        );
        // Transfer-Encoding alongside Content-Length (smuggling).
        assert_eq!(
            protocol_status(parse_raw(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\n0\r\n\r\n",
            )),
            400
        );
        // A coding we don't implement.
        assert_eq!(
            protocol_status(parse_raw(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n",
            )),
            501
        );
        // A single chunk past the body cap is refused from its size
        // line alone — no bytes are buffered first.
        let over = format!("{te}\r\n{:x}\r\n", MAX_BODY + 1);
        assert_eq!(protocol_status(parse_raw(over.as_bytes())), 413);
    }

    #[test]
    fn chunked_writer_frames_and_dechunks() {
        let mut wire: Vec<u8> = Vec::new();
        let mut w = respond_chunked(&mut wire, 200, &[("X-Job", "7")], true).unwrap();
        w.write_chunk(b"{\"points\":[").unwrap();
        w.write_chunk(b"").unwrap(); // skipped, not a terminator
        w.write_chunk("0123456789abcdef+".as_bytes()).unwrap(); // 17 bytes: 2-digit hex size
        w.write_chunk(b"]}").unwrap();
        w.finish().unwrap();

        let text = String::from_utf8(wire.clone()).unwrap();
        let head_end = text.find("\r\n\r\n").expect("head terminator") + 4;
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("X-Job: 7\r\n"));
        assert!(text.contains("\r\n11\r\n0123456789abcdef+\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));

        let mut body = &wire[head_end..];
        let out = read_chunked_body(&mut body).unwrap();
        assert_eq!(out, b"{\"points\":[0123456789abcdef+]}");
    }

    #[test]
    fn unframed_mode_streams_raw_bytes_for_http10() {
        let mut wire: Vec<u8> = Vec::new();
        let mut w = respond_chunked(&mut wire, 200, &[], false).unwrap();
        w.write_chunk(b"abc").unwrap();
        w.write_chunk(b"def").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nabcdef"));
    }

    proptest! {
        /// Any payload, cut into arbitrary chunk sizes, de-chunks to
        /// exactly the original bytes.
        #[test]
        fn chunk_coding_round_trips(
            len in 0usize..600,
            bytes in proptest::collection::vec(0usize..256, 600),
            cuts in proptest::collection::vec(1usize..48, 24),
        ) {
            let payload: Vec<u8> = bytes[..len].iter().map(|&b| b as u8).collect();
            let mut wire: Vec<u8> = Vec::new();
            {
                let mut w = respond_chunked(&mut wire, 200, &[], true).unwrap();
                let mut at = 0;
                let mut cut = cuts.iter().cycle();
                while at < payload.len() {
                    let take = (*cut.next().unwrap()).min(payload.len() - at);
                    w.write_chunk(&payload[at..at + take]).unwrap();
                    at += take;
                }
                w.finish().unwrap();
            }
            let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
            let mut body = &wire[head_end..];
            let out = read_chunked_body(&mut body).unwrap();
            prop_assert_eq!(out, payload);
        }

        /// Any payload, framed as a chunked *request* body with
        /// arbitrary cut points, decodes to exactly the original
        /// bytes through `read_request`.
        #[test]
        fn chunked_request_decode_round_trips(
            len in 0usize..600,
            bytes in proptest::collection::vec(0usize..256, 600),
            cuts in proptest::collection::vec(1usize..48, 24),
        ) {
            let payload: Vec<u8> = bytes[..len].iter().map(|&b| b as u8).collect();
            let mut raw: Vec<u8> =
                b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
            let mut at = 0;
            let mut cut = cuts.iter().cycle();
            while at < payload.len() {
                let take = (*cut.next().unwrap()).min(payload.len() - at);
                raw.extend_from_slice(format!("{take:x}\r\n").as_bytes());
                raw.extend_from_slice(&payload[at..at + take]);
                raw.extend_from_slice(b"\r\n");
                at += take;
            }
            raw.extend_from_slice(b"0\r\n\r\n");
            let req = parse_raw(&raw).unwrap().unwrap();
            prop_assert_eq!(req.body, payload);
        }
    }
}
