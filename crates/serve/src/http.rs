//! Hand-rolled HTTP/1.1 plumbing for the serve protocol.
//!
//! Enough of RFC 9112 for a JSON job API consumed by `curl` and test
//! harnesses: request line + headers + `Content-Length` bodies in,
//! fixed-length responses out, per-connection keep-alive. No chunked
//! transfer coding, no TLS — the daemon is an intranet tool, like the
//! simulation farms the paper's methodology feeds.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (decks are text; 4 MiB is roomy).
pub const MAX_BODY: usize = 4 << 20;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path (`/v1/jobs/42`), query stripped.
    pub path: String,
    /// Decoded query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lowercased header names and their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when the request carries none).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value under `key`.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// A message naming the encoding problem.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }
}

/// Reads one request off the connection. `Ok(None)` is a clean EOF
/// (client closed between requests); errors are protocol violations
/// the caller answers with 400 and a hangup.
///
/// # Errors
///
/// Malformed request line/headers, bodies over [`MAX_BODY`], or I/O
/// failures (timeouts included).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => return Err(bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("EOF inside headers"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| bad("bad Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target.as_str(), Vec::new()),
    };
    Ok(Some(Request {
        method,
        path: percent_decode(path),
        query,
        headers,
        body,
    }))
}

/// Splits and percent-decodes a query string.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

/// `%XX` + `+`-as-space decoding; bad escapes pass through verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 3 <= bytes.len()
                && s.is_char_boundary(i + 1)
                && s.is_char_boundary(i + 3) =>
            {
                match u8::from_str_radix(&s[i + 1..i + 3], 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reason phrases for the statuses the protocol emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a JSON response with fixed length and optional extra
/// headers (e.g. `Retry-After`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The uniform error body: `{"error":"..."}`.
pub fn error_body(msg: &str) -> String {
    format!(
        "{{\"error\":\"{}\"}}",
        mems_netlist::report::json_escape(msg)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_decode() {
        let q = parse_query("client=ci+box&mode=sweep&title=%E5%85%B1%E6%8C%AF&flag");
        assert_eq!(q[0], ("client".into(), "ci box".into()));
        assert_eq!(q[1], ("mode".into(), "sweep".into()));
        assert_eq!(q[2], ("title".into(), "共振".into()));
        assert_eq!(q[3], ("flag".into(), String::new()));
    }

    #[test]
    fn percent_decoding_tolerates_bad_escapes() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn requests_round_trip_over_a_socket_pair() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /v1/jobs?client=t HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\ndeck",
            )
            .unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query("client"), Some("t"));
        assert_eq!(req.body_text().unwrap(), "deck");
        assert!(read_request(&mut reader).unwrap().is_none());
        writer.join().unwrap();
    }
}
