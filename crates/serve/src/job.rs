//! Job lifecycle: one submitted deck run (single point or a full
//! `.STEP`/`.MC` batch), its per-point results, cancellation handle,
//! and the cache/timing metadata the HTTP API reports.

use crate::cache::{DeckEntry, Lookup};
use mems_netlist::report::{json_escape, point_json, solver_stats_json};
use mems_netlist::{BatchPoint, CancelToken, PointResult, RunStats, SolverStats, CANCELLED_POINT};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Where a job is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Chunks are queued, none finished yet.
    Queued,
    /// At least one chunk has run; more remain.
    Running,
    /// Cancellation requested; workers are still retiring chunks.
    Cancelling,
    /// Every point simulated.
    Done,
    /// Cancelled by `DELETE`; unvisited points carry
    /// [`CANCELLED_POINT`] failures. Terminal.
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Cancelling => "cancelling",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether no further results can arrive.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled)
    }
}

/// Aggregated run metadata, reported on `GET /v1/jobs/:id`.
#[derive(Debug, Default, Clone, Copy)]
pub struct JobMeta {
    /// Reuse counters summed over every chunk's context.
    pub stats: RunStats,
    /// Whether any chunk checked out a context that already carried
    /// artifacts (circuits / symbolic factorization).
    pub warm_checkout: bool,
    /// Linear-solver snapshot from the busiest chunk (the one whose
    /// context had performed the most factor + refactor calls) —
    /// reports which backend/ordering/factorization path served the
    /// job and what it cost.
    pub solver: Option<SolverStats>,
    /// Completion stamp from the server's monotonic sequence (0 while
    /// unfinished) — lets tests assert finish *order* without racing
    /// on wall-clock.
    pub finish_seq: u64,
}

/// One submitted job.
pub struct Job {
    /// Server-unique id.
    pub id: u64,
    /// Fair-share queue key (from the request's `client` field).
    pub client: String,
    /// The cached deck this job runs.
    pub entry: Arc<DeckEntry>,
    /// Whether submission hit the artifact cache.
    pub cache_hit: bool,
    /// The expanded point list (a single empty-override point for
    /// decks without `.STEP`/`.MC`).
    pub points: Vec<BatchPoint>,
    /// Cooperative cancellation, checked between points.
    pub cancel: CancelToken,
    /// Rendered per-point JSON records, filled as points finish.
    results: Mutex<Vec<Option<String>>>,
    /// Signalled whenever a result lands or the job turns terminal —
    /// streaming readers block here instead of polling.
    results_cv: Condvar,
    /// Simulated-point count (monotonic, lock-free readers).
    completed: AtomicUsize,
    /// Points cancellation skipped (recorded as [`CANCELLED_POINT`]
    /// failures, never simulated).
    skipped: AtomicUsize,
    /// Chunks remaining (queued or running).
    chunks_left: AtomicUsize,
    /// Set by [`Job::publish_terminal`] once the last chunk has
    /// retired *and* the server has finished its end-of-job
    /// accounting. Readers treat the job as terminal only once this
    /// is up, so anything sequenced before `publish_terminal` (metric
    /// counters, eviction bookkeeping) is visible to whoever observed
    /// the terminal state.
    terminal: std::sync::atomic::AtomicBool,
    /// Sequential `.TRAN` warm-start guesses, computed once by the
    /// first worker to touch the job (exactly the CLI pre-chain, so
    /// served results stay bit-identical to `mems sweep`).
    pub guesses: OnceLock<Option<Vec<Option<Vec<f64>>>>>,
    /// Aggregated metadata.
    meta: Mutex<JobMeta>,
    /// Submission wall-clock anchor.
    pub submitted: Instant,
    /// Microseconds spent in parse + elaborate fail-fast at submit
    /// (0 on cache hits — nothing was parsed).
    pub parse_us: u64,
    /// First-result / finish latency in µs from `submitted`.
    first_result_us: AtomicU64,
    /// Finish latency in µs from `submitted` (0 while unfinished).
    finished_us: AtomicU64,
}

impl Job {
    /// A freshly submitted job over `chunks` scheduler chunks.
    pub fn new(
        id: u64,
        client: String,
        entry: Arc<DeckEntry>,
        lookup: Lookup,
        points: Vec<BatchPoint>,
        chunks: usize,
        parse_us: u64,
    ) -> Self {
        let n = points.len();
        Job {
            id,
            client,
            entry,
            cache_hit: lookup == Lookup::Hit,
            points,
            cancel: CancelToken::new(),
            results: Mutex::new({
                let mut v = Vec::with_capacity(n);
                v.resize_with(n, || None);
                v
            }),
            results_cv: Condvar::new(),
            completed: AtomicUsize::new(0),
            skipped: AtomicUsize::new(0),
            chunks_left: AtomicUsize::new(chunks),
            terminal: std::sync::atomic::AtomicBool::new(false),
            guesses: OnceLock::new(),
            meta: Mutex::new(JobMeta::default()),
            submitted: Instant::now(),
            parse_us,
            first_result_us: AtomicU64::new(0),
            finished_us: AtomicU64::new(0),
        }
    }

    /// Records one finished point (rendered with the same writer as
    /// `mems sweep --json`, so streams compare byte-for-byte).
    /// Returns the rendered record so the caller can spill it to the
    /// durable store without rendering twice.
    pub fn record(&self, index: usize, result: &PointResult) -> String {
        let rendered = point_json(result);
        self.results.lock().expect("no poisoned results lock")[index] = Some(rendered.clone());
        self.results_cv.notify_all();
        self.completed.fetch_add(1, Ordering::SeqCst);
        let us = self.submitted.elapsed().as_micros() as u64;
        let _ =
            self.first_result_us
                .compare_exchange(0, us.max(1), Ordering::SeqCst, Ordering::SeqCst);
        rendered
    }

    /// Marks one chunk finished; returns `true` when it was the last.
    /// The caller that drew `true` owns the job's retirement: it must
    /// finish any end-of-job accounting (terminal-state counters,
    /// registry bookkeeping) and then call [`Job::publish_terminal`],
    /// which is what actually makes the job observable as terminal.
    pub fn finish_chunk(&self, chunk_meta: JobMeta) -> bool {
        {
            let mut meta = self.meta.lock().expect("no poisoned meta lock");
            meta.stats.circuits_built += chunk_meta.stats.circuits_built;
            meta.stats.circuits_patched += chunk_meta.stats.circuits_patched;
            meta.warm_checkout |= chunk_meta.warm_checkout;
            if let Some(s) = chunk_meta.solver {
                let busier = meta
                    .solver
                    .is_none_or(|cur| s.factors + s.refactors > cur.factors + cur.refactors);
                if busier {
                    meta.solver = Some(s);
                }
            }
        }
        self.chunks_left.fetch_sub(1, Ordering::SeqCst) == 1
    }

    /// Publishes the terminal state: stamps the finish time and
    /// sequence number, flips the terminal flag, and wakes streamers
    /// blocked in [`Job::wait_result`] so they can emit their tail.
    /// Called exactly once, by whoever [`Job::finish_chunk`] told they
    /// retired the last chunk — *after* that caller's accounting, so
    /// an observer of the terminal state never reads counters that
    /// haven't moved yet.
    pub fn publish_terminal(&self, finish_seq: &AtomicU64) {
        self.finished_us.store(
            (self.submitted.elapsed().as_micros() as u64).max(1),
            Ordering::SeqCst,
        );
        let seq = finish_seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.meta.lock().expect("no poisoned meta lock").finish_seq = seq;
        // Flip the flag under the results lock: `wait_result` checks
        // it under the same lock, so a streamer either sees the flag
        // or blocks until the notify below.
        let _guard = self.results.lock().expect("no poisoned results lock");
        self.terminal.store(true, Ordering::SeqCst);
        self.results_cv.notify_all();
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        if self.terminal.load(Ordering::SeqCst) {
            // A job cancelled only after every point simulated is
            // simply done.
            if self.skipped.load(Ordering::SeqCst) > 0 {
                JobState::Cancelled
            } else {
                JobState::Done
            }
        } else if self.cancel.is_cancelled() {
            JobState::Cancelling
        } else if self.completed.load(Ordering::SeqCst) == 0 {
            JobState::Queued
        } else {
            JobState::Running
        }
    }

    /// Finished-point count.
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::SeqCst)
    }

    /// Cancellation-skipped point count.
    pub fn skipped(&self) -> usize {
        self.skipped.load(Ordering::SeqCst)
    }

    /// The rendered record at `index`, if that point has finished.
    pub fn result_at(&self, index: usize) -> Option<String> {
        self.results
            .lock()
            .expect("no poisoned results lock")
            .get(index)
            .and_then(|r| r.clone())
    }

    /// Blocks until the record at `index` exists, then returns it.
    /// Returns `None` once the job is terminal with no record there
    /// (out-of-range index) — in-range gaps are always filled with
    /// [`CANCELLED_POINT`] markers before the last chunk retires, so
    /// a terminal job has a record at every valid index.
    pub fn wait_result(&self, index: usize) -> Option<String> {
        let mut results = self.results.lock().expect("no poisoned results lock");
        loop {
            if let Some(Some(r)) = results.get(index) {
                return Some(r.clone());
            }
            // Re-check terminality *while holding the lock*: the
            // finisher flips the flag and notifies under this lock,
            // so a terminal state observed here is final and no
            // record can still arrive.
            if self.terminal.load(Ordering::SeqCst) {
                return results.get(index).and_then(|r| r.clone());
            }
            let (guard, _timeout) = self
                .results_cv
                .wait_timeout(results, Duration::from_millis(50))
                .expect("no poisoned results lock");
            results = guard;
        }
    }

    /// Metadata snapshot.
    pub fn meta(&self) -> JobMeta {
        *self.meta.lock().expect("no poisoned meta lock")
    }

    /// The contiguous run of rendered results starting at `from`
    /// (stops at the first unfinished point), plus the next cursor.
    pub fn results_from(&self, from: usize) -> (Vec<String>, usize) {
        let results = self.results.lock().expect("no poisoned results lock");
        let mut out = Vec::new();
        let mut next = from.min(results.len());
        while let Some(Some(r)) = results.get(next) {
            out.push(r.clone());
            next += 1;
        }
        (out, next)
    }

    /// The status document for `GET /v1/jobs/:id` and submit
    /// responses.
    pub fn status_json(&self) -> String {
        let state = self.state();
        let meta = self.meta();
        let first = self.first_result_us.load(Ordering::SeqCst);
        let finished = self.finished_us.load(Ordering::SeqCst);
        format!(
            concat!(
                "{{\"id\":{},\"client\":\"{}\",\"state\":\"{}\",",
                "\"points\":{},\"completed\":{},\"skipped\":{},",
                "\"cache\":{{\"hit\":{},\"fingerprint\":\"{:016x}\",",
                "\"circuits_built\":{},\"circuits_patched\":{},\"warm_checkout\":{}}},",
                "\"solver\":{},",
                "\"timing\":{{\"parse_us\":{},\"first_result_us\":{},\"finished_us\":{}}},",
                "\"finish_seq\":{}}}"
            ),
            self.id,
            json_escape(&self.client),
            state.name(),
            self.points.len(),
            self.completed(),
            self.skipped.load(Ordering::SeqCst),
            self.cache_hit,
            self.entry.fingerprint,
            meta.stats.circuits_built,
            meta.stats.circuits_patched,
            meta.warm_checkout,
            meta.solver
                .as_ref()
                .map_or_else(|| "null".to_string(), solver_stats_json),
            self.parse_us,
            first,
            finished,
            meta.finish_seq,
        )
    }

    /// Fills every unvisited point of the range with the cancelled
    /// marker — called by the worker that retires a cancelled chunk,
    /// so `results_from` streams a complete (if partly failed) point
    /// list. Returns the `(index, rendered)` markers it filled, so
    /// the caller can spill them to the durable store.
    pub fn mark_cancelled_gaps(&self, range: std::ops::Range<usize>) -> Vec<(usize, String)> {
        let mut filled = Vec::new();
        let mut results = self.results.lock().expect("no poisoned results lock");
        for index in range {
            if results[index].is_none() {
                let rendered = point_json(&PointResult {
                    point: self.points[index].clone(),
                    outcome: Err(CANCELLED_POINT.to_string()),
                });
                results[index] = Some(rendered.clone());
                filled.push((index, rendered));
            }
        }
        if !filled.is_empty() {
            self.results_cv.notify_all();
        }
        drop(results);
        self.skipped.fetch_add(filled.len(), Ordering::SeqCst);
        filled
    }
}
