//! `/v1/metrics` — Prometheus text-format observability.
//!
//! The server already computes most of these numbers and used to
//! discard them; this module keeps them as lock-free counters and
//! renders the exposition format (version 0.0.4) a Prometheus scrape
//! expects: `# HELP`/`# TYPE` preamble per family, cumulative
//! `_bucket{le=…}` histogram series, `_total` counters. Gauges the
//! server derives live (queue depth, cache residency, uptime) are
//! passed in at render time as a [`Gauges`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Chunk-latency histogram bucket upper bounds, seconds. Chunks are
/// `chunk_size` simulation points, so the spread is wide: sub-ms
/// divider sweeps up to multi-second meshed transients.
const CHUNK_BUCKETS: [f64; 8] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

/// A fixed-bucket latency histogram (lock-free observe).
#[derive(Default)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) observation counts; rendered
    /// cumulatively as Prometheus requires.
    buckets: [AtomicU64; CHUNK_BUCKETS.len()],
    /// Observations above the last bound.
    overflow: AtomicU64,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observed values, microseconds (rendered as seconds).
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let secs = us as f64 / 1e6;
        match CHUNK_BUCKETS.iter().position(|&b| secs <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render_into(&self, out: &mut String, name: &str, help: &str) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bound) in CHUNK_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        let count = self.count();
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n{name}_count {count}\n",
            self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
    }
}

/// Counters keyed by linear-solver factorization path (the
/// [`SolverStats::factor_path`](mems_netlist::SolverStats) names).
#[derive(Default)]
pub struct PathCounters {
    dense: AtomicU64,
    scalar: AtomicU64,
    supernodal: AtomicU64,
    other: AtomicU64,
}

impl PathCounters {
    /// Adds `n` to the counter for `path`.
    pub fn add(&self, path: &str, n: u64) {
        if n == 0 {
            return;
        }
        let slot = match path {
            "dense" => &self.dense,
            "scalar" => &self.scalar,
            "supernodal" => &self.supernodal,
            _ => &self.other,
        };
        slot.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over every path.
    pub fn total(&self) -> u64 {
        [&self.dense, &self.scalar, &self.supernodal, &self.other]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    fn series(&self) -> [(&'static str, u64); 4] {
        [
            ("dense", self.dense.load(Ordering::Relaxed)),
            ("scalar", self.scalar.load(Ordering::Relaxed)),
            ("supernodal", self.supernodal.load(Ordering::Relaxed)),
            ("other", self.other.load(Ordering::Relaxed)),
        ]
    }
}

/// The server's monotonic counters, updated by the accept loop,
/// connection handlers, and workers.
#[derive(Default)]
pub struct Metrics {
    /// Requests successfully parsed and routed.
    pub requests: AtomicU64,
    /// Protocol violations answered with a 4xx/5xx and a hangup.
    pub bad_requests: AtomicU64,
    /// Jobs admitted (201 answered).
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached the `done` terminal state.
    pub jobs_done: AtomicU64,
    /// Jobs that reached the `cancelled` terminal state.
    pub jobs_cancelled: AtomicU64,
    /// Terminal jobs evicted from the registry at the `--job-cap`
    /// bound.
    pub jobs_evicted: AtomicU64,
    /// Submissions bounced off the active-job bound (429).
    pub rejected_busy: AtomicU64,
    /// Submissions bounced off a client's `--client-quota` (429).
    pub rejected_quota: AtomicU64,
    /// Submissions refused during the shutdown drain (503).
    pub rejected_draining: AtomicU64,
    /// Connections refused at the `--max-conns` cap (503).
    pub rejected_over_capacity: AtomicU64,
    /// Simulation points that produced a record.
    pub points_completed: AtomicU64,
    /// Points cancellation skipped.
    pub points_skipped: AtomicU64,
    /// Wall time of each retired scheduler chunk.
    pub chunk_seconds: Histogram,
    /// Fresh factorizations by factor path, summed over chunk deltas.
    pub solver_factors: PathCounters,
    /// Numeric-only refactorizations by factor path.
    pub solver_refactors: PathCounters,
    /// Fast-path give-ups (supernodal → scalar, refactor → factor).
    pub solver_fallbacks: AtomicU64,
    /// Microseconds spent computing fill-reducing orders (0-cost on
    /// ordering/symbolic cache hits — a warm machine stops moving
    /// this counter).
    pub solver_order_us: AtomicU64,
}

/// Point-in-time gauges the server derives at scrape time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Whether the graceful drain has begun.
    pub draining: bool,
    /// Connections currently being served.
    pub connections_active: usize,
    /// Scheduler chunks queued and not yet drawn by a worker.
    pub queue_depth_chunks: usize,
    /// Jobs admitted and not yet terminal.
    pub jobs_active: usize,
    /// Decks resident in the artifact cache.
    pub cache_entries: usize,
    /// Lifetime cache hits.
    pub cache_hits: u64,
    /// Lifetime cache misses.
    pub cache_misses: u64,
    /// Lifetime cache evictions.
    pub cache_evictions: u64,
    /// Process-wide fill-ordering cache hits
    /// ([`mems_numerics::ordering::cache_stats`]).
    pub ordering_cache_hits: u64,
    /// Process-wide fill-ordering cache misses.
    pub ordering_cache_misses: u64,
    /// Process-wide supernodal symbolic-analysis cache hits
    /// ([`mems_numerics::supernodal::symbolic_cache_stats`]).
    pub symbolic_cache_hits: u64,
    /// Process-wide supernodal symbolic-analysis cache misses.
    pub symbolic_cache_misses: u64,
    /// Durable-store snapshot; `None` when running memory-only
    /// (no `--data-dir`).
    pub store: Option<crate::store::StoreStats>,
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

impl Metrics {
    /// Renders the full exposition document.
    pub fn render(&self, g: &Gauges) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::with_capacity(4096);

        family(
            &mut out,
            "mems_serve_uptime_seconds",
            "gauge",
            "Seconds since the server started.",
        );
        out.push_str(&format!("mems_serve_uptime_seconds {}\n", g.uptime_seconds));
        family(
            &mut out,
            "mems_serve_draining",
            "gauge",
            "1 once the graceful drain has begun.",
        );
        out.push_str(&format!("mems_serve_draining {}\n", u8::from(g.draining)));
        family(
            &mut out,
            "mems_serve_connections_active",
            "gauge",
            "Connections currently being served.",
        );
        out.push_str(&format!(
            "mems_serve_connections_active {}\n",
            g.connections_active
        ));
        family(
            &mut out,
            "mems_serve_queue_depth_chunks",
            "gauge",
            "Scheduler chunks queued and not yet drawn by a worker.",
        );
        out.push_str(&format!(
            "mems_serve_queue_depth_chunks {}\n",
            g.queue_depth_chunks
        ));
        family(
            &mut out,
            "mems_serve_jobs_active",
            "gauge",
            "Jobs admitted and not yet terminal.",
        );
        out.push_str(&format!("mems_serve_jobs_active {}\n", g.jobs_active));

        family(
            &mut out,
            "mems_serve_requests_total",
            "counter",
            "HTTP requests successfully parsed and routed.",
        );
        out.push_str(&format!(
            "mems_serve_requests_total {}\n",
            load(&self.requests)
        ));
        family(
            &mut out,
            "mems_serve_bad_requests_total",
            "counter",
            "Protocol violations answered with an error status.",
        );
        out.push_str(&format!(
            "mems_serve_bad_requests_total {}\n",
            load(&self.bad_requests)
        ));

        family(
            &mut out,
            "mems_serve_jobs_submitted_total",
            "counter",
            "Jobs admitted to the scheduler.",
        );
        out.push_str(&format!(
            "mems_serve_jobs_submitted_total {}\n",
            load(&self.jobs_submitted)
        ));
        family(
            &mut out,
            "mems_serve_jobs_total",
            "counter",
            "Jobs finished, by terminal state.",
        );
        out.push_str(&format!(
            "mems_serve_jobs_total{{state=\"done\"}} {}\n",
            load(&self.jobs_done)
        ));
        out.push_str(&format!(
            "mems_serve_jobs_total{{state=\"cancelled\"}} {}\n",
            load(&self.jobs_cancelled)
        ));
        family(
            &mut out,
            "mems_serve_jobs_evicted_total",
            "counter",
            "Terminal jobs evicted from the registry at the --job-cap bound.",
        );
        out.push_str(&format!(
            "mems_serve_jobs_evicted_total {}\n",
            load(&self.jobs_evicted)
        ));

        family(
            &mut out,
            "mems_serve_rejected_total",
            "counter",
            "Work refused, by reason (429 busy, 503 draining/over-capacity).",
        );
        out.push_str(&format!(
            "mems_serve_rejected_total{{reason=\"busy\"}} {}\n",
            load(&self.rejected_busy)
        ));
        out.push_str(&format!(
            "mems_serve_rejected_total{{reason=\"quota\"}} {}\n",
            load(&self.rejected_quota)
        ));
        out.push_str(&format!(
            "mems_serve_rejected_total{{reason=\"draining\"}} {}\n",
            load(&self.rejected_draining)
        ));
        out.push_str(&format!(
            "mems_serve_rejected_total{{reason=\"over_capacity\"}} {}\n",
            load(&self.rejected_over_capacity)
        ));

        family(
            &mut out,
            "mems_serve_points_total",
            "counter",
            "Simulation points, by outcome.",
        );
        out.push_str(&format!(
            "mems_serve_points_total{{outcome=\"completed\"}} {}\n",
            load(&self.points_completed)
        ));
        out.push_str(&format!(
            "mems_serve_points_total{{outcome=\"skipped\"}} {}\n",
            load(&self.points_skipped)
        ));

        family(
            &mut out,
            "mems_serve_cache_entries",
            "gauge",
            "Decks resident in the artifact cache.",
        );
        out.push_str(&format!("mems_serve_cache_entries {}\n", g.cache_entries));
        family(
            &mut out,
            "mems_serve_cache_events_total",
            "counter",
            "Artifact-cache lookups and evictions, by event.",
        );
        out.push_str(&format!(
            "mems_serve_cache_events_total{{event=\"hit\"}} {}\n",
            g.cache_hits
        ));
        out.push_str(&format!(
            "mems_serve_cache_events_total{{event=\"miss\"}} {}\n",
            g.cache_misses
        ));
        out.push_str(&format!(
            "mems_serve_cache_events_total{{event=\"eviction\"}} {}\n",
            g.cache_evictions
        ));
        family(
            &mut out,
            "mems_serve_ordering_cache_events_total",
            "counter",
            "Process-wide fill-ordering and symbolic-analysis cache lookups.",
        );
        for (cache, hits, misses) in [
            ("ordering", g.ordering_cache_hits, g.ordering_cache_misses),
            ("symbolic", g.symbolic_cache_hits, g.symbolic_cache_misses),
        ] {
            out.push_str(&format!(
                "mems_serve_ordering_cache_events_total{{cache=\"{cache}\",event=\"hit\"}} {hits}\n"
            ));
            out.push_str(&format!(
                "mems_serve_ordering_cache_events_total{{cache=\"{cache}\",event=\"miss\"}} {misses}\n"
            ));
        }

        self.chunk_seconds.render_into(
            &mut out,
            "mems_serve_chunk_seconds",
            "Wall time per retired scheduler chunk.",
        );

        family(
            &mut out,
            "mems_serve_solver_factors_total",
            "counter",
            "Fresh (symbolic + numeric) factorizations, by factor path.",
        );
        for (path, n) in self.solver_factors.series() {
            out.push_str(&format!(
                "mems_serve_solver_factors_total{{path=\"{path}\"}} {n}\n"
            ));
        }
        family(
            &mut out,
            "mems_serve_solver_refactors_total",
            "counter",
            "Numeric-only refactorizations, by factor path.",
        );
        for (path, n) in self.solver_refactors.series() {
            out.push_str(&format!(
                "mems_serve_solver_refactors_total{{path=\"{path}\"}} {n}\n"
            ));
        }
        family(
            &mut out,
            "mems_serve_solver_fallbacks_total",
            "counter",
            "Linear-solver fast-path give-ups.",
        );
        out.push_str(&format!(
            "mems_serve_solver_fallbacks_total {}\n",
            load(&self.solver_fallbacks)
        ));
        family(
            &mut out,
            "mems_serve_solver_order_seconds_total",
            "counter",
            "Wall time spent computing fill-reducing orders (cache hits cost 0).",
        );
        out.push_str(&format!(
            "mems_serve_solver_order_seconds_total {}\n",
            load(&self.solver_order_us) as f64 / 1e6
        ));

        if let Some(s) = &g.store {
            family(
                &mut out,
                "mems_serve_store_jobs",
                "gauge",
                "Terminal jobs queryable from the durable spill.",
            );
            out.push_str(&format!("mems_serve_store_jobs {}\n", s.jobs));
            family(
                &mut out,
                "mems_serve_store_degraded",
                "gauge",
                "1 once a store I/O error dropped the server to memory-only mode.",
            );
            out.push_str(&format!(
                "mems_serve_store_degraded {}\n",
                u8::from(s.degraded)
            ));
            family(
                &mut out,
                "mems_serve_store_bytes_written_total",
                "counter",
                "Result-record bytes appended to the spill (framing included).",
            );
            out.push_str(&format!(
                "mems_serve_store_bytes_written_total {}\n",
                s.bytes_written
            ));
            family(
                &mut out,
                "mems_serve_store_writes_total",
                "counter",
                "Result records appended to the spill.",
            );
            out.push_str(&format!("mems_serve_store_writes_total {}\n", s.writes));
            family(
                &mut out,
                "mems_serve_store_replayed_jobs_total",
                "counter",
                "Jobs recovered from the data dir at startup.",
            );
            out.push_str(&format!(
                "mems_serve_store_replayed_jobs_total {}\n",
                s.replayed_jobs
            ));
            family(
                &mut out,
                "mems_serve_store_corrupt_records_total",
                "counter",
                "Torn or corrupt spill tails dropped on replay, never served.",
            );
            out.push_str(&format!(
                "mems_serve_store_corrupt_records_total {}\n",
                s.corrupt_records
            ));
            family(
                &mut out,
                "mems_serve_store_evicted_jobs_total",
                "counter",
                "Stored jobs evicted to enforce --spill-cap-bytes.",
            );
            out.push_str(&format!(
                "mems_serve_store_evicted_jobs_total {}\n",
                s.evicted_jobs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Value of a sample line, by exact series name (with labels).
    fn sample(body: &str, series: &str) -> Option<f64> {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{series} ")))
            .and_then(|v| v.parse().ok())
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe_us(500); // 0.0005 s → le=0.001
        h.observe_us(3_000); // le=0.005
        h.observe_us(3_500); // le=0.005
        h.observe_us(20_000_000); // 20 s → +Inf only
        let mut out = String::new();
        h.render_into(&mut out, "t", "test histogram");
        assert!(out.contains("# TYPE t histogram\n"));
        assert_eq!(sample(&out, "t_bucket{le=\"0.001\"}"), Some(1.0));
        assert_eq!(sample(&out, "t_bucket{le=\"0.005\"}"), Some(3.0));
        assert_eq!(sample(&out, "t_bucket{le=\"5\"}"), Some(3.0));
        assert_eq!(sample(&out, "t_bucket{le=\"+Inf\"}"), Some(4.0));
        assert_eq!(sample(&out, "t_count"), Some(4.0));
        assert!((sample(&out, "t_sum").unwrap() - 20.007).abs() < 1e-9);
    }

    #[test]
    fn path_counters_route_and_total() {
        let p = PathCounters::default();
        p.add("supernodal", 3);
        p.add("scalar", 2);
        p.add("dense", 0); // no-op
        p.add("mystery", 1);
        assert_eq!(p.total(), 6);
        let series = p.series();
        assert_eq!(series[1], ("scalar", 2));
        assert_eq!(series[2], ("supernodal", 3));
        assert_eq!(series[3], ("other", 1));
    }

    #[test]
    fn render_is_well_formed_exposition_text() {
        let m = Metrics::default();
        m.jobs_done.fetch_add(2, Ordering::Relaxed);
        m.rejected_busy.fetch_add(1, Ordering::Relaxed);
        m.chunk_seconds.observe_us(1_234);
        m.solver_factors.add("supernodal", 5);
        let g = Gauges {
            uptime_seconds: 1.5,
            queue_depth_chunks: 7,
            cache_hits: 3,
            ..Gauges::default()
        };
        let body = m.render(&g);

        // Every sample line belongs to a family announced by a TYPE
        // line, and every line is `name value` or a comment.
        let mut announced = std::collections::HashSet::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                announced.insert(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            if line.starts_with("# HELP ") {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            let name = series.split('{').next().unwrap();
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                announced.contains(family),
                "sample `{line}` precedes its TYPE line"
            );
            value.parse::<f64>().expect("numeric value");
        }
        assert_eq!(
            sample(&body, "mems_serve_jobs_total{state=\"done\"}"),
            Some(2.0)
        );
        assert_eq!(
            sample(&body, "mems_serve_rejected_total{reason=\"busy\"}"),
            Some(1.0)
        );
        assert_eq!(sample(&body, "mems_serve_queue_depth_chunks"), Some(7.0));
        assert_eq!(
            sample(
                &body,
                "mems_serve_solver_factors_total{path=\"supernodal\"}"
            ),
            Some(5.0)
        );
        assert_eq!(sample(&body, "mems_serve_chunk_seconds_count"), Some(1.0));
    }

    #[test]
    fn store_families_render_only_when_enabled() {
        let m = Metrics::default();
        let g = Gauges {
            store: Some(crate::store::StoreStats {
                jobs: 3,
                degraded: true,
                corrupt_records: 1,
                ..Default::default()
            }),
            ..Gauges::default()
        };
        let body = m.render(&g);
        assert_eq!(sample(&body, "mems_serve_store_jobs"), Some(3.0));
        assert_eq!(sample(&body, "mems_serve_store_degraded"), Some(1.0));
        assert_eq!(
            sample(&body, "mems_serve_store_corrupt_records_total"),
            Some(1.0)
        );
        // Memory-only servers don't announce store families at all.
        let memory_only = m.render(&Gauges::default());
        assert!(!memory_only.contains("mems_serve_store_"));
    }
}
