//! The server-wide artifact cache.
//!
//! Keyed on the submitted deck **source text** (verified by equality,
//! not just by hash), each entry owns the parsed [`Deck`] and a pool
//! of warm [`RunCtx`]s — elaborated circuits that workers re-bind in
//! place via the `set_param` patch path, plus assembly workspaces
//! whose sparse symbolic factorization + AMD ordering survive across
//! jobs. A re-submitted or parameter-tweaked deck therefore skips
//! parse, elaborate, *and* symbolic analysis: the second submission's
//! job reports `circuits_built == 0`.
//!
//! [`RunCtx`] itself guards against cross-deck reuse with the deck
//! fingerprint ([`mems_netlist::deck_fingerprint`]), so a pooled
//! context handed to the wrong entry would rebuild rather than
//! mis-patch — the pool keeps that from ever happening, the guard
//! keeps it from ever mattering.
//!
//! The cache is deliberately **memory-only**: its artifacts (warm
//! contexts, symbolic factorizations) are process-lifetime objects
//! that are cheap to rebuild on a cache miss. Durability of *results*
//! lives in [`crate::store`], which spills finished jobs to
//! `--data-dir`; the two never overlap — a restarted server serves
//! stored results from disk while rebuilding simulation artifacts
//! from scratch on first touch.

use mems_netlist::{deck_fingerprint, BatchPoint, Deck, IncludeResolver, NetlistError, RunCtx};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached deck and its reusable simulation artifacts.
pub struct DeckEntry {
    /// The submitted source, byte-for-byte (the real cache key).
    pub source: String,
    /// The parsed deck.
    pub deck: Deck,
    /// Definition fingerprint (`deck_fingerprint`), reported to
    /// clients as cache metadata.
    pub fingerprint: u64,
    /// The deck's expanded `.STEP`/`.MC` point list (`None` when the
    /// deck has neither card). Point expansion is deterministic —
    /// `.MC` sampling is keyed on `(seed, point, variable)` — so it is
    /// computed once at parse time and cloned per submission: a cache
    /// hit re-runs *nothing*, not even sweep expansion.
    pub batch_points: Option<Vec<BatchPoint>>,
    /// Warm run contexts checked out by workers and returned after
    /// each chunk.
    pool: Mutex<Vec<RunCtx>>,
    /// How many submissions resolved to this entry after the first.
    pub hits: AtomicU64,
}

/// Cap on pooled contexts per entry; beyond it a returned context is
/// dropped (its artifacts are cheap to rebuild relative to holding
/// unbounded memory for idle decks).
const POOL_CAP: usize = 8;

impl DeckEntry {
    /// Hands out a warm context (or a cold one when the pool is dry)
    /// together with a flag telling whether it carries artifacts.
    pub fn checkout(&self) -> (RunCtx, bool) {
        match self.pool.lock().expect("no poisoned pool lock").pop() {
            Some(ctx) => {
                let warm = ctx.is_warm();
                (ctx, warm)
            }
            None => (RunCtx::default(), false),
        }
    }

    /// The point list a job over this deck runs: the expanded
    /// `.STEP`/`.MC` points, or one empty-override point for plain
    /// decks (a job is always a stream of ≥ 1 point records).
    pub fn job_points(&self) -> Vec<BatchPoint> {
        match &self.batch_points {
            Some(points) => points.clone(),
            None => vec![BatchPoint {
                index: 0,
                overrides: Vec::new(),
            }],
        }
    }

    /// Returns a context to the pool for the next chunk or job.
    pub fn checkin(&self, mut ctx: RunCtx) {
        // A guess chained from one job's last point must not leak
        // into another job's Newton solves.
        ctx.op_guess = None;
        let mut pool = self.pool.lock().expect("no poisoned pool lock");
        if pool.len() < POOL_CAP {
            pool.push(ctx);
        }
    }
}

/// What a cache lookup did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The source was already cached; nothing was parsed.
    Hit,
    /// The source was parsed and elaboration-checked, then cached.
    Miss,
}

/// The fingerprint-keyed deck cache (LRU over submitted sources).
pub struct ArtifactCache {
    inner: Mutex<CacheState>,
    /// Lifetime hit/miss counters, exported on `/v1/health` and
    /// `/v1/metrics`.
    pub hits: AtomicU64,
    /// Lifetime miss counter.
    pub misses: AtomicU64,
    /// Lifetime LRU evictions.
    pub evictions: AtomicU64,
    /// Max resident entries.
    cap: usize,
}

struct CacheState {
    /// Source-hash → entries with that hash (collisions resolved by
    /// source equality).
    by_hash: HashMap<u64, Vec<Arc<DeckEntry>>>,
    /// LRU order of source hashes + the exact source, oldest first.
    order: Vec<(u64, usize)>,
    /// Monotonic use counter backing the LRU order.
    clock: usize,
}

impl ArtifactCache {
    /// An empty cache holding at most `cap` decks.
    pub fn new(cap: usize) -> Self {
        ArtifactCache {
            inner: Mutex::new(CacheState {
                by_hash: HashMap::new(),
                order: Vec::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("no poisoned cache lock")
            .by_hash
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves submitted source text to a cached entry, parsing and
    /// caching on miss. The parse on the miss path also performs the
    /// elaborate fail-fast (`Elaborator::new`), so a returned entry is
    /// always simulatable-or-diagnosed up front.
    ///
    /// # Errors
    ///
    /// Parse/elaborate diagnostics for the submitted deck.
    pub fn resolve(
        &self,
        source: &str,
        includes: &mut dyn IncludeResolver,
    ) -> Result<(Arc<DeckEntry>, Lookup), NetlistError> {
        let key = source_hash(source);
        {
            let mut state = self.inner.lock().expect("no poisoned cache lock");
            if let Some(candidates) = state.by_hash.get(&key) {
                if let Some(entry) = candidates.iter().find(|e| e.source == source) {
                    let entry = Arc::clone(entry);
                    state.touch(key);
                    drop(state);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    entry.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry, Lookup::Hit));
                }
            }
        }

        // Parse outside the lock: a slow deck must not stall lookups.
        let deck = Deck::parse_with_includes(source, includes)?;
        let elab = mems_netlist::Elaborator::new(&deck)?;
        let batch_points = match mems_netlist::batch_points_with(&elab) {
            Ok(points) => Some(points),
            // The span-less elab error is "no .STEP/.MC card" — a
            // plain single-run deck, not a diagnostic.
            Err(NetlistError::Elab { span: None, .. }) => None,
            Err(e) => return Err(e),
        };
        drop(elab);
        let entry = Arc::new(DeckEntry {
            source: source.to_string(),
            fingerprint: deck_fingerprint(&deck),
            batch_points,
            deck,
            pool: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
        });

        let mut state = self.inner.lock().expect("no poisoned cache lock");
        // A racing submitter may have cached the same source while we
        // parsed; prefer theirs so the warm pool stays shared.
        if let Some(candidates) = state.by_hash.get(&key) {
            if let Some(existing) = candidates.iter().find(|e| e.source == source) {
                let existing = Arc::clone(existing);
                state.touch(key);
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                existing.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((existing, Lookup::Hit));
            }
        }
        state
            .by_hash
            .entry(key)
            .or_default()
            .push(Arc::clone(&entry));
        state.touch(key);
        if state.by_hash.values().map(Vec::len).sum::<usize>() > self.cap {
            state.evict_oldest();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(state);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((entry, Lookup::Miss))
    }
}

impl CacheState {
    /// Stamps `key` as most recently used.
    fn touch(&mut self, key: u64) {
        self.clock += 1;
        let clock = self.clock;
        match self.order.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = clock,
            None => self.order.push((key, clock)),
        }
    }

    /// Drops the least recently used hash bucket.
    fn evict_oldest(&mut self) {
        if let Some(pos) = self
            .order
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(pos, _)| pos)
        {
            let (key, _) = self.order.swap_remove(pos);
            self.by_hash.remove(&key);
        }
    }
}

/// Hash of the raw submitted source (pre-parse, pre-include-splice):
/// the cache must answer before doing any work, so it keys on exactly
/// the bytes the client sent.
fn source_hash(source: &str) -> u64 {
    let mut h = DefaultHasher::new();
    source.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_netlist::NoIncludes;

    const DECK: &str = "divider\nVs in 0 6\nR1 in out 1k\nR2 out 0 2k\n.op\n.print op v(out)\n";

    #[test]
    fn second_resolve_is_a_hit() {
        let cache = ArtifactCache::new(4);
        let (a, first) = cache.resolve(DECK, &mut NoIncludes).unwrap();
        let (b, second) = cache.resolve(DECK, &mut NoIncludes).unwrap();
        assert_eq!(first, Lookup::Miss);
        assert_eq!(second, Lookup::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits.load(Ordering::Relaxed), 1);
        assert_eq!(a.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn different_sources_are_different_entries() {
        let cache = ArtifactCache::new(4);
        let (a, _) = cache.resolve(DECK, &mut NoIncludes).unwrap();
        let tweaked = DECK.replace("2k", "3k");
        let (b, what) = cache.resolve(&tweaked, &mut NoIncludes).unwrap();
        assert_eq!(what, Lookup::Miss);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn lru_eviction_bounds_residency() {
        let cache = ArtifactCache::new(2);
        for r2 in ["1k", "2k", "3k"] {
            let deck = DECK.replace("2k", r2);
            cache.resolve(&deck, &mut NoIncludes).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions.load(Ordering::Relaxed), 1);
        // The oldest ("1k") was evicted: resubmitting it misses.
        let (_, what) = cache
            .resolve(&DECK.replace("2k", "1k"), &mut NoIncludes)
            .unwrap();
        assert_eq!(what, Lookup::Miss);
    }

    #[test]
    fn checkout_reports_warmth() {
        let cache = ArtifactCache::new(4);
        let (entry, _) = cache.resolve(DECK, &mut NoIncludes).unwrap();
        let (ctx, warm) = entry.checkout();
        assert!(!warm);
        // Run one point so the context accrues artifacts.
        let elab = mems_netlist::Elaborator::new(&entry.deck).unwrap();
        let mut ctx = ctx;
        mems_netlist::run_elaborated_ctx(&elab, &Default::default(), &mut ctx).unwrap();
        assert_eq!(ctx.stats.circuits_built, 1);
        entry.checkin(ctx);
        let (ctx, warm) = entry.checkout();
        assert!(warm && ctx.is_warm());
    }

    #[test]
    fn bad_decks_do_not_enter_the_cache() {
        let cache = ArtifactCache::new(4);
        assert!(cache.resolve("t\nbogus card\n", &mut NoIncludes).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.misses.load(Ordering::Relaxed), 0);
    }
}
