//! Fair-share chunk scheduler.
//!
//! Jobs are split into fixed-size point chunks and enqueued per
//! client; workers draw chunks round-robin **across clients**, so a
//! client streaming a 10k-point `.MC` batch cannot starve another
//! client's two-point sanity sweep — the small job's chunks interleave
//! with the big one's. Admission is bounded two ways: past
//! `queue_cap` active jobs overall — or past `client_quota` active
//! jobs for one client — the submit path answers 429 with
//! `Retry-After` instead of queueing unboundedly.

use crate::job::Job;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// A contiguous range of one job's points, the scheduler's work unit
/// (and the granularity of cancellation: a cancelled job stops within
/// one chunk boundary).
pub struct Chunk {
    /// The owning job.
    pub job: Arc<Job>,
    /// First point index.
    pub start: usize,
    /// One past the last point index.
    pub end: usize,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The active-job bound is reached — retry later (429).
    Busy,
    /// The submitting client is at its per-client active-job quota
    /// (`--client-quota`) — retry later (429).
    OverQuota,
    /// The scheduler is draining for shutdown (503).
    Draining,
}

struct State {
    /// One FIFO of chunks per client, in first-seen order.
    clients: Vec<(String, VecDeque<Chunk>)>,
    /// Round-robin cursor over `clients`.
    cursor: usize,
    /// Jobs admitted but not yet retired (queued chunks + running).
    active_jobs: usize,
    /// Active jobs per client, for the `--client-quota` bound.
    active_per_client: std::collections::HashMap<String, usize>,
    /// Set once: no further admissions, workers exit when drained.
    draining: bool,
}

/// The shared scheduler.
pub struct Scheduler {
    state: Mutex<State>,
    ready: Condvar,
    /// Points per chunk.
    pub chunk_size: usize,
    /// Max active jobs before refusing admissions.
    pub queue_cap: usize,
    /// Max active jobs per client (`0` = unlimited).
    pub client_quota: usize,
}

impl Scheduler {
    /// A scheduler chunking jobs into `chunk_size`-point slices,
    /// admitting at most `queue_cap` active jobs overall and
    /// `client_quota` per client (`0` = unlimited).
    pub fn new(chunk_size: usize, queue_cap: usize, client_quota: usize) -> Self {
        Scheduler {
            state: Mutex::new(State {
                clients: Vec::new(),
                cursor: 0,
                active_jobs: 0,
                active_per_client: std::collections::HashMap::new(),
                draining: false,
            }),
            ready: Condvar::new(),
            chunk_size: chunk_size.max(1),
            queue_cap: queue_cap.max(1),
            client_quota,
        }
    }

    /// Number of chunks `points` splits into.
    pub fn chunks_for(&self, points: usize) -> usize {
        points.max(1).div_ceil(self.chunk_size)
    }

    /// Admits a job: splits its points into chunks on the owning
    /// client's queue.
    ///
    /// # Errors
    ///
    /// [`Refusal::Busy`] at the admission bound,
    /// [`Refusal::OverQuota`] at the submitting client's quota,
    /// [`Refusal::Draining`] during shutdown.
    pub fn submit(&self, job: &Arc<Job>) -> Result<(), Refusal> {
        let mut state = self.state.lock().expect("no poisoned sched lock");
        if state.draining {
            return Err(Refusal::Draining);
        }
        if state.active_jobs >= self.queue_cap {
            return Err(Refusal::Busy);
        }
        if self.client_quota > 0
            && state
                .active_per_client
                .get(&job.client)
                .is_some_and(|&n| n >= self.client_quota)
        {
            return Err(Refusal::OverQuota);
        }
        state.active_jobs += 1;
        *state
            .active_per_client
            .entry(job.client.clone())
            .or_insert(0) += 1;
        let queue = match state
            .clients
            .iter_mut()
            .find(|(name, _)| *name == job.client)
        {
            Some((_, queue)) => queue,
            None => {
                state.clients.push((job.client.clone(), VecDeque::new()));
                &mut state.clients.last_mut().expect("just pushed").1
            }
        };
        let n = job.points.len().max(1);
        for start in (0..n).step_by(self.chunk_size) {
            queue.push_back(Chunk {
                job: Arc::clone(job),
                start,
                end: (start + self.chunk_size).min(n),
            });
        }
        drop(state);
        self.ready.notify_all();
        Ok(())
    }

    /// Blocks for the next chunk, drawn round-robin across clients.
    /// `None` means the scheduler is draining and empty — the worker
    /// should exit.
    pub fn next_chunk(&self) -> Option<Chunk> {
        let mut state = self.state.lock().expect("no poisoned sched lock");
        loop {
            let n = state.clients.len();
            for step in 0..n {
                let at = (state.cursor + step) % n;
                if let Some(chunk) = state.clients[at].1.pop_front() {
                    // Advance past the served client so the next draw
                    // starts at its neighbor.
                    state.cursor = (at + 1) % n;
                    return Some(chunk);
                }
            }
            if state.draining {
                return None;
            }
            state = self.ready.wait(state).expect("no poisoned sched lock");
        }
    }

    /// Marks one of `client`'s jobs retired (its last chunk finished).
    pub fn job_retired(&self, client: &str) {
        let mut state = self.state.lock().expect("no poisoned sched lock");
        state.active_jobs = state.active_jobs.saturating_sub(1);
        if let Some(n) = state.active_per_client.get_mut(client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                state.active_per_client.remove(client);
            }
        }
    }

    /// Starts the drain: no further admissions; queued chunks still
    /// run; workers exit once the queues are dry.
    pub fn drain(&self) {
        self.state.lock().expect("no poisoned sched lock").draining = true;
        self.ready.notify_all();
    }

    /// Whether the drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("no poisoned sched lock").draining
    }

    /// Chunks queued across every client, not yet drawn by a worker
    /// (running chunks are not counted).
    pub fn queue_depth(&self) -> usize {
        self.state
            .lock()
            .expect("no poisoned sched lock")
            .clients
            .iter()
            .map(|(_, queue)| queue.len())
            .sum()
    }

    /// Jobs admitted and not yet retired.
    pub fn active_jobs(&self) -> usize {
        self.state
            .lock()
            .expect("no poisoned sched lock")
            .active_jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ArtifactCache;
    use mems_netlist::{BatchPoint, NoIncludes};

    fn stub_job(id: u64, client: &str, points: usize) -> Arc<Job> {
        static CACHE: std::sync::OnceLock<ArtifactCache> = std::sync::OnceLock::new();
        let cache = CACHE.get_or_init(|| ArtifactCache::new(2));
        let (entry, lookup) = cache
            .resolve("t\nVs a 0 1\nR1 a 0 1k\n.op\n", &mut NoIncludes)
            .unwrap();
        let points = (0..points)
            .map(|index| BatchPoint {
                index,
                overrides: Vec::new(),
            })
            .collect();
        Arc::new(Job::new(id, client.into(), entry, lookup, points, 1, 0))
    }

    #[test]
    fn chunks_interleave_across_clients() {
        let sched = Scheduler::new(2, 16, 0);
        sched.submit(&stub_job(1, "big", 8)).unwrap();
        sched.submit(&stub_job(2, "small", 2)).unwrap();
        let order: Vec<u64> = (0..5).map(|_| sched.next_chunk().unwrap().job.id).collect();
        // big, small, big, big, big — the small client's one chunk
        // rides second, not after all four of big's.
        assert_eq!(order, vec![1, 2, 1, 1, 1]);
    }

    #[test]
    fn same_client_chunks_stay_fifo() {
        let sched = Scheduler::new(4, 16, 0);
        sched.submit(&stub_job(1, "c", 4)).unwrap();
        sched.submit(&stub_job(2, "c", 4)).unwrap();
        assert_eq!(sched.next_chunk().unwrap().job.id, 1);
        assert_eq!(sched.next_chunk().unwrap().job.id, 2);
    }

    #[test]
    fn admission_is_bounded_and_drain_refuses() {
        let sched = Scheduler::new(4, 2, 0);
        sched.submit(&stub_job(1, "a", 1)).unwrap();
        sched.submit(&stub_job(2, "a", 1)).unwrap();
        assert_eq!(sched.submit(&stub_job(3, "a", 1)), Err(Refusal::Busy));
        sched.job_retired("a");
        sched.submit(&stub_job(4, "a", 1)).unwrap();
        sched.drain();
        assert_eq!(sched.submit(&stub_job(5, "a", 1)), Err(Refusal::Draining));
    }

    #[test]
    fn client_quota_bounds_one_client_without_starving_others() {
        let sched = Scheduler::new(4, 16, 2);
        sched.submit(&stub_job(1, "greedy", 1)).unwrap();
        sched.submit(&stub_job(2, "greedy", 1)).unwrap();
        assert_eq!(
            sched.submit(&stub_job(3, "greedy", 1)),
            Err(Refusal::OverQuota)
        );
        // Another client is unaffected by greedy's quota.
        sched.submit(&stub_job(4, "modest", 1)).unwrap();
        // Retiring one of greedy's jobs frees a quota slot.
        sched.job_retired("greedy");
        sched.submit(&stub_job(5, "greedy", 1)).unwrap();
    }

    #[test]
    fn drained_empty_scheduler_releases_workers() {
        let sched = Arc::new(Scheduler::new(4, 4, 0));
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                let mut served = 0;
                while sched.next_chunk().is_some() {
                    served += 1;
                }
                served
            })
        };
        sched.submit(&stub_job(1, "a", 8)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.drain();
        assert_eq!(worker.join().unwrap(), 2);
    }
}
