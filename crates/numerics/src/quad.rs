//! Numerical quadrature: Gauss–Legendre rules (used by the FE element
//! integrals and the Maxwell-stress contour integration) and composite
//! trapezoid/Simpson rules (used to integrate velocity traces into the
//! displacements plotted in Fig. 5).

/// Gauss–Legendre abscissae and weights on `[-1, 1]`.
///
/// Supported orders: 1–5 (exact for polynomials of degree `2n − 1`).
///
/// # Panics
///
/// Panics for unsupported orders.
pub fn gauss_legendre(order: usize) -> &'static [(f64, f64)] {
    // (abscissa, weight)
    const P1: [(f64, f64); 1] = [(0.0, 2.0)];
    const P2: [(f64, f64); 2] = [
        (-0.577_350_269_189_625_8, 1.0),
        (0.577_350_269_189_625_8, 1.0),
    ];
    const P3: [(f64, f64); 3] = [
        (-0.774_596_669_241_483_4, 0.555_555_555_555_555_6),
        (0.0, 0.888_888_888_888_889),
        (0.774_596_669_241_483_4, 0.555_555_555_555_555_6),
    ];
    const P4: [(f64, f64); 4] = [
        (-0.861_136_311_594_052_6, 0.347_854_845_137_453_9),
        (-0.339_981_043_584_856_3, 0.652_145_154_862_546_1),
        (0.339_981_043_584_856_3, 0.652_145_154_862_546_1),
        (0.861_136_311_594_052_6, 0.347_854_845_137_453_9),
    ];
    const P5: [(f64, f64); 5] = [
        (-0.906_179_845_938_664, 0.236_926_885_056_189_08),
        (-0.538_469_310_105_683, 0.478_628_670_499_366_47),
        (0.0, 0.568_888_888_888_888_9),
        (0.538_469_310_105_683, 0.478_628_670_499_366_47),
        (0.906_179_845_938_664, 0.236_926_885_056_189_08),
    ];
    match order {
        1 => &P1,
        2 => &P2,
        3 => &P3,
        4 => &P4,
        5 => &P5,
        _ => panic!("unsupported Gauss-Legendre order {order}"),
    }
}

/// Integrates `f` over `[a, b]` with an `order`-point Gauss rule.
pub fn gauss_integrate(f: impl Fn(f64) -> f64, a: f64, b: f64, order: usize) -> f64 {
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    gauss_legendre(order)
        .iter()
        .map(|&(x, w)| w * f(mid + half * x))
        .sum::<f64>()
        * half
}

/// Composite trapezoid rule over sampled data (irregular spacing OK).
///
/// Returns `0` for fewer than two samples.
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "trapezoid needs matching samples");
    xs.windows(2)
        .zip(ys.windows(2))
        .map(|(x, y)| 0.5 * (x[1] - x[0]) * (y[0] + y[1]))
        .sum()
}

/// Cumulative trapezoid integral (same length as the input, starts at
/// `y0`). This is how the experiment harness converts velocity traces
/// into displacement traces, mirroring the paper's "displacements
/// (integrals of velocities)".
pub fn cumtrapz(xs: &[f64], ys: &[f64], y0: f64) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "cumtrapz needs matching samples");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = y0;
    out.push(acc);
    for i in 1..xs.len() {
        acc += 0.5 * (xs[i] - xs[i - 1]) * (ys[i] + ys[i - 1]);
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_rules_integrate_polynomials_exactly() {
        // order n is exact through degree 2n-1.
        for order in 1..=5 {
            let deg = 2 * order - 1;
            // deg = 2·order − 1 is odd, and ∫_{-1}^{1} x^odd dx = 0;
            // the even-degree check below uses x^(deg-1).
            let exact = 0.0;
            let got = gauss_integrate(|x| x.powi(deg as i32), -1.0, 1.0, order);
            assert!((got - exact).abs() < 1e-13, "order {order} deg {deg}");
            let even = deg - 1;
            let exact_even = 2.0 / (even as f64 + 1.0);
            let got_even = gauss_integrate(|x| x.powi(even as i32), -1.0, 1.0, order);
            assert!(
                (got_even - exact_even).abs() < 1e-12,
                "order {order} deg {even}: {got_even} vs {exact_even}"
            );
        }
    }

    #[test]
    fn gauss_on_shifted_interval() {
        let got = gauss_integrate(|x| x * x, 1.0, 4.0, 3);
        assert!((got - 21.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_weights_sum_to_two() {
        for order in 1..=5 {
            let s: f64 = gauss_legendre(order).iter().map(|&(_, w)| w).sum();
            assert!((s - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trapezoid_linear_exact() {
        let xs = [0.0, 0.5, 2.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((trapezoid(&xs, &ys) - (3.0 * 2.0 / 2.0 * 2.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn cumtrapz_recovers_antiderivative() {
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n as f64 - 1.0)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.cos()).collect();
        let integral = cumtrapz(&xs, &ys, 0.0);
        for (x, v) in xs.iter().zip(&integral) {
            assert!((v - x.sin()).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_order_panics() {
        gauss_legendre(9);
    }
}
