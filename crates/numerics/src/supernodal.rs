//! Supernodal, level-scheduled sparse LU with static pivoting.
//!
//! The scalar [`crate::sparse_lu::SparseLu`] factors column by column
//! with a reachability DFS per column — exact, re-pivoting, and fast
//! up to a few thousand unknowns, but quadratic-ish on meshed MNA
//! systems beyond that. This module is the scale tier above it:
//!
//! - **Symbolic analysis once** ([`crate::etree`]): a value-aware
//!   maximum transversal row-matches the matrix so every diagonal is
//!   structurally *and numerically* viable (MNA saddle matrices have
//!   structurally zero diagonals on source-branch rows, and nonlinear
//!   Jacobian slots can be numerically zero at the first Newton
//!   iterate), AMD reorders the symmetrized pattern, and
//!   elimination-tree postorder + column counts replace the
//!   per-column DFS entirely.
//! - **Supernodes**: contiguous postordered columns with (nearly)
//!   identical below-diagonal structure are grouped into dense panels
//!   (amalgamation bounded by [`MAX_SUPER`]), so the inner loop is a
//!   pair of small dense GEMMs per updater instead of scattered CSC
//!   updates. Panel positions outside a column's exact fill hold
//!   *exact* zeros (every contribution to them has an exactly-zero
//!   factor), so amalgamation affects speed and memory, never values.
//! - **Level scheduling**: supernodes at the same elimination-tree
//!   level are independent; each level is fanned across `std::thread`
//!   workers (budget from [`crate::par`], shared with the batch
//!   engine). Each supernode applies its own updater list in a fixed
//!   order, so results are bitwise identical for every thread count.
//! - **Row equilibration + static pivots with the drift guard**: the
//!   numeric phase factors `D·A` where `D = diag(1/maxⱼ|aᵢⱼ|)` scales
//!   every row to unit infinity-norm (MNA mixes conductances ~1e-3
//!   with spring stiffnesses ~1e2; without equilibration a perfectly
//!   solvable matched diagonal can look 10⁻⁶× smaller than its column
//!   max). Pivots are the matched diagonal of the scaled matrix,
//!   accepted only when `|pivot| ≥ PIVOT_TAU × colmax` of the
//!   remaining panel column — the same threshold
//!   [`crate::sparse_lu::PIVOT_TAU`] the scalar refactor enforces.
//!   [`SupernodalLu::solve`] applies the same scales to `b`, so `x` is
//!   unchanged. A rejected pivot aborts with
//!   [`NumericsError::Singular`] and the caller (e.g. `SparseSystem`)
//!   falls back to the scalar re-pivoting path, so this code can cost
//!   speed but never correctness. Scales are recomputed from the input
//!   values on every (re)factor, serially — results stay bitwise
//!   identical across thread counts.
//!
//! [`SupernodalLu::factor`] runs analysis + numerics;
//! [`SupernodalLu::refactor`] replays the numeric phase on new values
//! with the same pivots, exactly like the scalar split.

use crate::etree::{self, NONE};
use crate::ordering::{order_cached, FillOrdering};
use crate::par::resolve_factor_threads;
use crate::scalar::Scalar;
use crate::sparse_lu::{CscView, PIVOT_TAU};
use crate::{NumericsError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// Hard cap on supernode width: bounds dense-panel memory and keeps
/// the in-panel elimination cache-resident.
pub const MAX_SUPER: usize = 32;

/// Relaxed-amalgamation bound: a whole etree subtree with at most
/// this many columns is grouped into one supernode (SuperLU's `relax`
/// parameter). Meshed MNA hangs a 2-column velocity/force-branch leg
/// off the electrical grid per cell edge — without subtree relaxation
/// those legs pin the mean supernode width near 2 and the dense
/// panels buy nothing.
pub const RELAX_SUBTREE: usize = 8;

/// High bit of an assembly-plan entry: destination is the U store.
const UBIT: u64 = 1 << 63;

/// Amalgamation padding budget, as a fraction `PAD_NUM/PAD_DEN` of a
/// candidate supernode's *exact* fill (from
/// [`etree::lu_col_counts`]): a merge is accepted only while the dense
/// panels stay within 10% of the exact factor cells, which is what
/// keeps total supernodal storage at parity with the scalar engine
/// instead of the 1.4–1.5× the old `zest` estimate allowed.
const PAD_NUM: usize = 11;
const PAD_DEN: usize = 10;
/// Small absolute slack on top: lets near-empty leaf columns (MNA
/// velocity/force legs, exact fill of a handful of cells) amalgamate
/// at all. Bounded by `PAD_SLACK × nsuper` in total, which is noise
/// next to the fill of any matrix large enough to route here.
const PAD_SLACK: usize = 2;

/// A level is worth spawning workers for only past this many panels…
const PAR_MIN_ITEMS: usize = 2;
/// …and this many stored panel entries (thread spawn ≈ tens of µs).
const PAR_MIN_WORK: usize = 50_000;

/// Structural data shared by every numeric (re)factorization of one
/// pattern. All labels below are *permuted* (elimination order) unless
/// suffixed otherwise.
struct Symbolic {
    n: usize,
    /// `colperm[k]` = original column eliminated at step `k`.
    colperm: Vec<usize>,
    /// `rowperm[k]` = original row pivoted at step `k`.
    rowperm: Vec<usize>,
    nsuper: usize,
    nlevels: usize,
    /// Supernode `s` spans permuted columns `first_col[s]..first_col[s+1]`.
    first_col: Vec<usize>,
    /// Below-diagonal row structure per supernode (sorted, permuted labels).
    rows_ptr: Vec<usize>,
    rows: Vec<u32>,
    /// Panel offsets into the L / U stores (assigned in (level, s) order
    /// so each level's panels are contiguous).
    l_off: Vec<usize>,
    u_off: Vec<usize>,
    /// Store boundaries per level.
    l_lvl: Vec<usize>,
    u_lvl: Vec<usize>,
    /// Supernode ids grouped by level, ascending within a level.
    level_ptr: Vec<usize>,
    level_items: Vec<u32>,
    /// Per supernode `s`: updaters `(t, p0, p1)` — supernode `t` has
    /// rows `rows[t][p0..p1]` inside `s`'s column range (positions are
    /// relative to `rows[t]`). Ascending in `t`: the fixed application
    /// order that makes results thread-count invariant.
    upd_ptr: Vec<usize>,
    updaters: Vec<(u32, u32, u32)>,
    /// Per input nonzero: destination offset, `UBIT` flags the U store.
    plan: Vec<u64>,
    l_size: usize,
    u_size: usize,
    /// Exact factor entries `(L incl. diagonal, strict U)` from
    /// [`etree::lu_col_counts`] — the padding-free figure the panel
    /// stores are measured against.
    exact_l: usize,
    exact_u: usize,
}

impl Symbolic {
    #[inline]
    fn shape(&self, s: usize) -> (usize, usize, usize, usize) {
        let c0 = self.first_col[s];
        let w = self.first_col[s + 1] - c0;
        let m = self.rows_ptr[s + 1] - self.rows_ptr[s];
        (c0, w, m, w + m)
    }

    /// Approximate heap footprint, for the symbolic-cache budget.
    fn approx_bytes(&self) -> usize {
        8 * (self.colperm.len()
            + self.rowperm.len()
            + self.first_col.len()
            + self.rows_ptr.len()
            + self.l_off.len()
            + self.u_off.len()
            + self.l_lvl.len()
            + self.u_lvl.len()
            + self.level_ptr.len()
            + self.upd_ptr.len()
            + self.plan.len())
            + 4 * (self.rows.len() + self.level_items.len())
            + 12 * self.updaters.len()
    }
}

/// Supernodal LU factorization (see module docs). Generic over
/// [`Scalar`] so transient (f64) and AC (Complex64) systems ride the
/// same kernels.
pub struct SupernodalLu<S: Scalar> {
    /// Shared with the machine-wide symbolic cache — immutable after
    /// analysis; the numeric phase only reads it.
    sym: std::sync::Arc<Symbolic>,
    lstore: Vec<S>,
    ustore: Vec<S>,
    /// Row-equilibration scales, *original* row labels: the factor is
    /// of `D·A` with `D = diag(row_scale)`. Recomputed per (re)factor.
    row_scale: Vec<f64>,
    threads_req: usize,
    threads_used: usize,
    /// Microseconds the analysis spent computing the fill order (0
    /// when the order — or the whole analysis — came from a cache).
    order_us: u64,
    /// `"cached"` / `"amd"` / `"nd"` / `"natural"`.
    order_source: &'static str,
}

/// A level-schedule work item: supernode id plus exclusive mutable
/// views of its L and U panels. The `Mutex` only satisfies `Sync` —
/// the scheduler's atomic counter guarantees exclusive access.
type PanelChunk<'a, S> = Mutex<(usize, &'a mut [S], &'a mut [S])>;

/// Per-worker scratch: the target-row map, a dense GEMM buffer, and
/// the per-updater resolved target indices.
struct Scratch<S> {
    map: Vec<u32>,
    tmp: Vec<S>,
    lidx: Vec<u32>,
}

impl<S: Scalar> Scratch<S> {
    fn new(n: usize) -> Self {
        Scratch {
            map: vec![u32::MAX; n],
            tmp: Vec::new(),
            lidx: Vec::new(),
        }
    }
}

/// Byte budget for the machine-wide symbolic cache. A symbolic
/// analysis is a pure function of (pattern, row matching, resolved
/// ordering), and real workloads — a serve daemon re-running decks,
/// `.STEP`/`.MC` batches, AC after OP — present the same MNA pattern
/// over and over. Caching the whole [`Symbolic`] (not just the
/// permutation) is what puts a known pattern's cold factor near
/// refactor cost: ordering, etree, exact counts, grouping, schedule,
/// and assembly plan are all skipped. Entries larger than half the
/// budget are not cached (a 10⁶-unknown analysis is ~200 MB; pinning
/// two of those would evict everything else for little gain).
const SYM_CACHE_BYTES: usize = 192 << 20;

struct SymEntry {
    sym: std::sync::Arc<Symbolic>,
    bytes: usize,
    last_used: u64,
}

struct SymCache {
    map: std::collections::HashMap<(u64, u64), SymEntry>,
    bytes: usize,
    tick: u64,
}

fn sym_cache() -> &'static Mutex<SymCache> {
    static CACHE: std::sync::OnceLock<Mutex<SymCache>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(SymCache {
            map: std::collections::HashMap::new(),
            bytes: 0,
            tick: 0,
        })
    })
}

static SYM_HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static SYM_MISSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Dual-FNV-1a fingerprint of everything [`analyze`] depends on: the
/// resolved ordering, the pattern, and the (value-aware) row matching.
/// A collision could only replay a valid analysis of a different
/// pattern, which the assembly plan's length check and the numeric
/// drift guard would reject — but at 128 bits it simply doesn't
/// happen.
fn sym_fingerprint(
    kind: FillOrdering,
    n: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
    imatch: &[usize],
) -> (u64, u64) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    let mut eat = |x: u64| {
        a = (a ^ x).wrapping_mul(PRIME);
        b = (b ^ x.rotate_left(32)).wrapping_mul(PRIME);
    };
    eat(kind as u64);
    eat(n as u64);
    eat(col_ptr.len() as u64);
    eat(row_idx.len() as u64);
    for &w in col_ptr {
        eat(w as u64);
    }
    for &w in row_idx {
        eat(w as u64);
    }
    for &w in imatch {
        eat(w as u64);
    }
    (a, b)
}

fn sym_cache_get(key: (u64, u64)) -> Option<std::sync::Arc<Symbolic>> {
    let mut c = sym_cache().lock().expect("symbolic cache lock");
    c.tick += 1;
    let tick = c.tick;
    if let Some(e) = c.map.get_mut(&key) {
        e.last_used = tick;
        SYM_HITS.fetch_add(1, AtomicOrdering::Relaxed);
        Some(std::sync::Arc::clone(&e.sym))
    } else {
        SYM_MISSES.fetch_add(1, AtomicOrdering::Relaxed);
        None
    }
}

fn sym_cache_put(key: (u64, u64), sym: &std::sync::Arc<Symbolic>) {
    let bytes = sym.approx_bytes();
    if bytes > SYM_CACHE_BYTES / 2 {
        return;
    }
    let mut c = sym_cache().lock().expect("symbolic cache lock");
    c.tick += 1;
    let tick = c.tick;
    if c.map.contains_key(&key) {
        return;
    }
    c.map.insert(
        key,
        SymEntry {
            sym: std::sync::Arc::clone(sym),
            bytes,
            last_used: tick,
        },
    );
    c.bytes += bytes;
    while c.bytes > SYM_CACHE_BYTES {
        let victim = c
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&k, _)| k);
        match victim {
            Some(k) => {
                if let Some(e) = c.map.remove(&k) {
                    c.bytes -= e.bytes;
                }
            }
            None => break,
        }
    }
}

/// Lifetime (hits, misses) of the machine-wide symbolic cache.
pub fn symbolic_cache_stats() -> (u64, u64) {
    (
        SYM_HITS.load(AtomicOrdering::Relaxed),
        SYM_MISSES.load(AtomicOrdering::Relaxed),
    )
}

/// Empties the symbolic cache (counters keep running) — for tests
/// that need a cold start.
pub fn clear_symbolic_cache() {
    let mut c = sym_cache().lock().expect("symbolic cache lock");
    c.map.clear();
    c.bytes = 0;
}

fn validate<S: Scalar>(a: &CscView<'_, S>) -> Result<()> {
    if a.col_ptr.len() != a.n + 1
        || a.col_ptr[a.n] != a.row_idx.len()
        || a.row_idx.len() != a.values.len()
    {
        return Err(NumericsError::InvalidInput(
            "inconsistent CSC arrays".into(),
        ));
    }
    for j in 0..a.n {
        if a.col_ptr[j] > a.col_ptr[j + 1] {
            return Err(NumericsError::InvalidInput("col_ptr not monotone".into()));
        }
    }
    if a.row_idx.iter().any(|&i| i >= a.n) {
        return Err(NumericsError::InvalidInput("row index out of range".into()));
    }
    Ok(())
}

/// Value-aware maximum transversal (a light take on MC64): match the
/// diagonal using only entries that would *survive the static pivot
/// guard* — `|a| ≥ PIVOT_TAU × colmax` after the same row
/// equilibration the numeric phase applies. A purely structural
/// matching happily lands on an entry that is structurally present
/// but numerically zero at analysis time (Jacobian slots of nonlinear
/// devices linearized at `x = 0`), which no amount of scaling can
/// rescue. Numerically empty columns keep their full structure; if
/// the filtered pattern has no complete matching the structural one
/// is used as-is (the drift guard still protects correctness).
fn weighted_transversal<S: Scalar>(a: &CscView<'_, S>) -> Option<Vec<usize>> {
    let n = a.n;
    let mut rs = vec![0.0f64; n];
    for (p, v) in a.values.iter().enumerate() {
        let m = v.modulus();
        if m > rs[a.row_idx[p]] {
            rs[a.row_idx[p]] = m;
        }
    }
    for s in rs.iter_mut() {
        *s = if *s > 0.0 && s.is_finite() {
            1.0 / *s
        } else {
            1.0
        };
    }
    let mut fp = Vec::with_capacity(n + 1);
    let mut fi = Vec::with_capacity(a.row_idx.len());
    fp.push(0usize);
    for j in 0..n {
        let (lo, hi) = (a.col_ptr[j], a.col_ptr[j + 1]);
        let mut cmax = 0.0f64;
        for p in lo..hi {
            let m = a.values[p].modulus() * rs[a.row_idx[p]];
            if m > cmax {
                cmax = m;
            }
        }
        if cmax > 0.0 && cmax.is_finite() {
            // Diagonal first: the matcher's cheap-assignment pass takes
            // the first viable row, so a viable diagonal yields the
            // identity matching — which keeps the symmetrized pattern
            // (and with it the supernodal fill) minimal on the
            // structurally symmetric matrices MNA produces.
            for p in lo..hi {
                if a.row_idx[p] == j && a.values[p].modulus() * rs[j] >= PIVOT_TAU * cmax {
                    fi.push(j);
                }
            }
            for p in lo..hi {
                if a.row_idx[p] != j && a.values[p].modulus() * rs[a.row_idx[p]] >= PIVOT_TAU * cmax
                {
                    fi.push(a.row_idx[p]);
                }
            }
        } else {
            fi.extend_from_slice(&a.row_idx[lo..hi]);
        }
        fp.push(fi.len());
    }
    etree::max_transversal(n, &fp, &fi).or_else(|| etree::max_transversal(n, a.col_ptr, a.row_idx))
}

/// One-shot structural analysis: ordering, etree, supernode grouping,
/// level schedule, and the assembly plan for this exact pattern (the
/// row matching is computed by the caller from the values).
/// Returns the analysis plus `(order_us, order_from_cache)` for the
/// caller's stats.
fn analyze(
    n: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
    imatch: Vec<usize>,
    ordering: FillOrdering,
) -> Result<(Symbolic, u64, bool)> {
    let internal = || NumericsError::InvalidInput("supernodal symbolic invariant violated".into());
    let debug = std::env::var_os("MEMS_SNL_DEBUG").is_some();
    let mut t_stage = std::time::Instant::now();
    let mut stage = |label: &str| {
        if debug {
            eprintln!(
                "supernodal analyze: {label} {:.1} ms",
                t_stage.elapsed().as_secs_f64() * 1e3
            );
        }
        t_stage = std::time::Instant::now();
    };
    let mut rinv0 = vec![0usize; n];
    for j in 0..n {
        rinv0[imatch[j]] = j;
    }
    let (sp, si) = etree::symmetrize(n, col_ptr, row_idx, Some(&rinv0));
    // Fill ordering through the machine-wide cache: `Auto` resolves to
    // ND past [`crate::ordering::ND_AUTO_THRESHOLD`], and a pattern
    // seen before skips ordering entirely (`order_us == 0`).
    stage("symmetrize");
    let resolved = ordering.resolve(n);
    let lookup = order_cached(resolved, n, &sp, &si);
    let q: &[usize] = &lookup.perm;
    stage("order");
    let (bp, bi) = etree::permute_sym(n, &sp, &si, q);
    let parent = etree::etree(n, &bp, &bi);
    let post = etree::postorder(&parent);
    let (cp, ci) = etree::permute_sym(n, &bp, &bi, &post);
    let mut postinv = vec![0usize; n];
    for (k, &p) in post.iter().enumerate() {
        postinv[p] = k;
    }
    let mut parent2 = vec![NONE; n];
    for k in 0..n {
        let pj = parent[post[k]];
        if pj != NONE {
            parent2[k] = postinv[pj];
        }
    }
    let counts = etree::col_counts(n, &cp, &ci, &parent2);

    let mut colperm = vec![0usize; n];
    let mut cinv = vec![0usize; n];
    for k in 0..n {
        colperm[k] = q[post[k]];
        cinv[colperm[k]] = k;
    }
    let mut rowperm = vec![0usize; n];
    let mut rinv = vec![0usize; n];
    for k in 0..n {
        rowperm[k] = imatch[colperm[k]];
        rinv[rowperm[k]] = k;
    }

    // Exact unsymmetric LU column counts on the row-matched, permuted
    // pattern ([`etree::lu_col_counts`]). `counts` above is the
    // Cholesky count of the *symmetrized* pattern — an overestimate on
    // unsymmetric inputs and blind to amalgamation padding either way.
    // The exact counts are what the padding test below and the fill
    // stats report are measured against.
    let mut pcp = vec![0usize; n + 1];
    for k in 0..n {
        let j = colperm[k];
        pcp[k + 1] = pcp[k] + (col_ptr[j + 1] - col_ptr[j]);
    }
    let mut pri = vec![0usize; col_ptr[n]];
    for k in 0..n {
        let j = colperm[k];
        for (w, p) in (pcp[k]..).zip(col_ptr[j]..col_ptr[j + 1]) {
            pri[w] = rinv[row_idx[p]];
        }
    }
    stage("etree+counts");
    let (lcnt, ucnt) = etree::lu_col_counts(n, &pcp, &pri);
    stage("lu_col_counts");
    // Prefix sums of exact stored cells per column (L + U, diagonal
    // once), so any column range's exact fill is O(1).
    let mut tpre = vec![0usize; n + 1];
    for j in 0..n {
        tpre[j + 1] = tpre[j] + lcnt[j] + ucnt[j] - 1;
    }

    // Supernode grouping, two rules — both keep every group a
    // contiguous postorder range whose last column is an etree
    // ancestor of all the others, which is what the level schedule
    // relies on (updates only ever flow to sup-tree ancestors):
    //
    // 1. *Relaxed bottom subtrees* (the SuperLU `relax` heuristic): a
    //    maximal etree subtree with at most [`RELAX_SUBTREE`] columns
    //    becomes one supernode. Subtrees are postorder-contiguous, have
    //    no external updaters, and merging sibling branches costs only
    //    exact-zero padding (module docs) — this is what widens panels
    //    on meshed MNA, where each cell's velocity/force legs are tiny
    //    subtrees dangling off the electrical grid.
    // 2. *Chain merges* above them: `parent2[j-1] == j` extends a
    //    group while the padding stays within budget.
    //
    // Both rules share one *exact* padding test. For any candidate
    // range `[a, b)` whose last column is an ancestor of the rest, the
    // union of member structures below row `b-1` is exactly column
    // `b-1`'s symbolic structure (the etree path theorem), so the
    // panel costs `w·(w + 2m)` cells with `m = counts[b-1] - 1` — no
    // union needs materializing to price a merge. That is compared
    // against the exact unsymmetric fill `tpre[b] - tpre[a]`.
    let pad_ok = |a: usize, b: usize| -> bool {
        let w = b - a;
        let m = counts[b - 1] - 1;
        let stored = w * (w + 2 * m);
        let exact = tpre[b] - tpre[a];
        stored * PAD_DEN <= exact * PAD_NUM + PAD_SLACK * PAD_DEN
    };
    let mut subtree = vec![1usize; n];
    for j in 0..n {
        if parent2[j] != NONE {
            subtree[parent2[j]] += subtree[j];
        }
    }
    // start_of[j] = start of the maximal relaxed subtree rooted at j.
    let mut relaxed_start = vec![NONE; n];
    for r in 0..n {
        if subtree[r] <= RELAX_SUBTREE
            && (parent2[r] == NONE || subtree[parent2[r]] > RELAX_SUBTREE)
        {
            relaxed_start[r + 1 - subtree[r]] = r;
        }
    }
    let mut first_col: Vec<usize> = vec![0];
    if n > 0 {
        let mut j = 0usize;
        while j < n {
            // A relaxed subtree merges as one supernode only if its
            // padding clears the budget; otherwise its columns fall
            // through to chain merging (relaxed_start is only set at
            // the subtree's first column, so the chain rule is free to
            // regroup the interior).
            let mut end = if relaxed_start[j] != NONE && pad_ok(j, relaxed_start[j] + 1) {
                relaxed_start[j] + 1
            } else {
                j + 1
            };
            // Chain-extend past single-column steps (a relaxed group
            // only extends through its own root's parent link).
            while end < n
                && parent2[end - 1] == end
                && relaxed_start[end] == NONE
                && end - j < MAX_SUPER
                && pad_ok(j, end + 1)
            {
                end += 1;
            }
            first_col.push(end);
            j = end;
        }
    }
    let nsuper = first_col.len() - 1;

    let mut sup_of = vec![0u32; n];
    for s in 0..nsuper {
        for j in first_col[s]..first_col[s + 1] {
            sup_of[j] = s as u32;
        }
    }
    let mut parent_sup = vec![NONE; nsuper];
    for s in 0..nsuper {
        let p = parent2[first_col[s + 1] - 1];
        if p != NONE {
            parent_sup[s] = sup_of[p] as usize;
        }
    }
    let mut child_head = vec![NONE; nsuper];
    let mut child_next = vec![NONE; nsuper];
    for s in (0..nsuper).rev() {
        if parent_sup[s] != NONE {
            child_next[s] = child_head[parent_sup[s]];
            child_head[parent_sup[s]] = s;
        }
    }

    // Below-diagonal structures, children-before-parents: union of the
    // supernode's own symmetrized-A rows and its children's structures
    // (a superset of the exact fill; the surplus holds exact zeros).
    let mut rows_ptr = vec![0usize; nsuper + 1];
    let mut rows: Vec<u32> = Vec::new();
    let mut stamp = vec![u32::MAX; n];
    let mut buf: Vec<u32> = Vec::new();
    for s in 0..nsuper {
        let (a, b) = (first_col[s], first_col[s + 1]);
        buf.clear();
        for j in a..b {
            for &r in &ci[cp[j]..cp[j + 1]] {
                if r >= b && stamp[r] != s as u32 {
                    stamp[r] = s as u32;
                    buf.push(r as u32);
                }
            }
        }
        let mut c = child_head[s];
        while c != NONE {
            let (lo, hi) = (rows_ptr[c], rows_ptr[c + 1]);
            let from = lo + rows[lo..hi].partition_point(|&r| (r as usize) < b);
            for idx in from..hi {
                let r = rows[idx] as usize;
                if stamp[r] != s as u32 {
                    stamp[r] = s as u32;
                    buf.push(r as u32);
                }
            }
            c = child_next[c];
        }
        buf.sort_unstable();
        rows.extend_from_slice(&buf);
        rows_ptr[s + 1] = rows.len();
    }
    stage("grouping+rows");

    // Level = height above the leaves in the supernode tree; children
    // always precede parents, so one ascending pass settles it.
    let mut level = vec![0usize; nsuper];
    let mut nlevels = 0usize;
    for s in 0..nsuper {
        if parent_sup[s] != NONE {
            let p = parent_sup[s];
            level[p] = level[p].max(level[s] + 1);
        }
        nlevels = nlevels.max(level[s] + 1);
    }
    let mut level_ptr = vec![0usize; nlevels + 1];
    for s in 0..nsuper {
        level_ptr[level[s] + 1] += 1;
    }
    for l in 0..nlevels {
        level_ptr[l + 1] += level_ptr[l];
    }
    let mut level_items = vec![0u32; nsuper];
    let mut cursor = level_ptr.clone();
    for s in 0..nsuper {
        level_items[cursor[level[s]]] = s as u32;
        cursor[level[s]] += 1;
    }

    // Storage offsets in (level, supernode) order: each level's panels
    // are contiguous, which is what lets the scheduler hand disjoint
    // `&mut` chunks to workers without unsafe code.
    let mut l_off = vec![0usize; nsuper];
    let mut u_off = vec![0usize; nsuper];
    let mut l_lvl = vec![0usize; nlevels + 1];
    let mut u_lvl = vec![0usize; nlevels + 1];
    let (mut lacc, mut uacc) = (0usize, 0usize);
    for l in 0..nlevels {
        l_lvl[l] = lacc;
        u_lvl[l] = uacc;
        for &su in &level_items[level_ptr[l]..level_ptr[l + 1]] {
            let s = su as usize;
            let w = first_col[s + 1] - first_col[s];
            let m = rows_ptr[s + 1] - rows_ptr[s];
            l_off[s] = lacc;
            lacc += (w + m) * w;
            u_off[s] = uacc;
            uacc += w * m;
        }
    }
    l_lvl[nlevels] = lacc;
    u_lvl[nlevels] = uacc;

    // Updater lists: supernode t updates s iff t has structure rows in
    // s's column range. rows[t] is sorted, so the runs come out grouped
    // and, iterating t ascending, each list is ascending in t.
    let mut upd_lists: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); nsuper];
    for t in 0..nsuper {
        let (lo, hi) = (rows_ptr[t], rows_ptr[t + 1]);
        let mut p = lo;
        while p < hi {
            let s = sup_of[rows[p] as usize] as usize;
            let send = first_col[s + 1];
            let mut pe = p;
            while pe < hi && (rows[pe] as usize) < send {
                pe += 1;
            }
            upd_lists[s].push((t as u32, (p - lo) as u32, (pe - lo) as u32));
            p = pe;
        }
    }
    let mut upd_ptr = vec![0usize; nsuper + 1];
    let mut updaters: Vec<(u32, u32, u32)> = Vec::new();
    for (s, list) in upd_lists.iter().enumerate() {
        updaters.extend_from_slice(list);
        upd_ptr[s + 1] = updaters.len();
    }

    // Assembly plan: one destination per input nonzero. Every entry is
    // covered because the structures above are supersets of the
    // symmetrized pattern.
    let nnz = col_ptr[n];
    let mut plan = vec![0u64; nnz];
    for j in 0..n {
        let ck = cinv[j];
        for p in col_ptr[j]..col_ptr[j + 1] {
            let rk = rinv[row_idx[p]];
            let s = sup_of[ck] as usize;
            let (a, b) = (first_col[s], first_col[s + 1]);
            plan[p] = if rk >= a {
                // Diagonal block or below: the column's supernode.
                let (w, m) = (b - a, rows_ptr[s + 1] - rows_ptr[s]);
                let li = if rk < b {
                    rk - a
                } else {
                    let rlo = rows_ptr[s];
                    w + rows[rlo..rows_ptr[s + 1]]
                        .binary_search(&(rk as u32))
                        .map_err(|_| internal())?
                };
                (l_off[s] + (ck - a) * (w + m) + li) as u64
            } else {
                // Above the diagonal block: the row's supernode, either
                // inside its diagonal block or in its U panel.
                let t = sup_of[rk] as usize;
                let (ta, tb) = (first_col[t], first_col[t + 1]);
                let (wt, mt) = (tb - ta, rows_ptr[t + 1] - rows_ptr[t]);
                if ck < tb {
                    (l_off[t] + (ck - ta) * (wt + mt) + (rk - ta)) as u64
                } else {
                    let rlo = rows_ptr[t];
                    let x = rows[rlo..rows_ptr[t + 1]]
                        .binary_search(&(ck as u32))
                        .map_err(|_| internal())?;
                    UBIT | (u_off[t] + x * wt + (rk - ta)) as u64
                }
            };
        }
    }

    stage("schedule+plan");
    let sym = Symbolic {
        n,
        colperm,
        rowperm,
        nsuper,
        nlevels,
        first_col,
        rows_ptr,
        rows,
        l_off,
        u_off,
        l_lvl,
        u_lvl,
        level_ptr,
        level_items,
        upd_ptr,
        updaters,
        plan,
        l_size: lacc,
        u_size: uacc,
        exact_l: lcnt.iter().sum(),
        exact_u: ucnt.iter().sum::<usize>() - n,
    };
    Ok((sym, lookup.order_us, lookup.hit))
}

/// Dense in-place LU of one panel (`h×w`, column-major, leading
/// dimension `h`) with static diagonal pivots: unit-lower L below the
/// diagonal (including the below-block rows, already divided), U on
/// and above it. Returns the failing local column on a rejected pivot.
fn panel_getrf<S: Scalar>(lp: &mut [S], h: usize, w: usize) -> std::result::Result<(), usize> {
    for k in 0..w {
        let colbase = k * h;
        let mut cmax = 0.0f64;
        for i in k..h {
            let a = lp[colbase + i].modulus();
            if !(a <= cmax) {
                cmax = a;
            }
        }
        let piv = lp[colbase + k];
        let pm = piv.modulus();
        if !(pm > 0.0) || !pm.is_finite() || !cmax.is_finite() || pm < PIVOT_TAU * cmax {
            return Err(k);
        }
        let inv = S::one() / piv;
        for i in k + 1..h {
            lp[colbase + i] = lp[colbase + i] * inv;
        }
        for j in k + 1..w {
            let (head, tail) = lp.split_at_mut(j * h);
            let ukj = tail[k];
            if ukj != S::zero() {
                let acol = &head[colbase + k + 1..colbase + h];
                let ccol = &mut tail[k + 1..h];
                for (c, &a) in ccol.iter_mut().zip(acol) {
                    *c -= a * ukj;
                }
            }
        }
    }
    Ok(())
}

/// Assembles and factors one supernode: apply every updater's two
/// dense GEMMs, then the in-panel elimination and the U-panel
/// triangular solve. Reads completed panels from `l_done`/`u_done`
/// (global offsets — updaters always live in strictly lower levels).
fn factor_supernode<S: Scalar>(
    sym: &Symbolic,
    s: usize,
    l_done: &[S],
    u_done: &[S],
    lp: &mut [S],
    up: &mut [S],
    scratch: &mut Scratch<S>,
) -> Result<()> {
    let (c0, w, m, h) = sym.shape(s);
    let c1 = c0 + w;
    let srows = &sym.rows[sym.rows_ptr[s]..sym.rows_ptr[s + 1]];
    for (x, &r) in srows.iter().enumerate() {
        scratch.map[r as usize] = (w + x) as u32;
    }
    for &(tu, p0u, p1u) in &sym.updaters[sym.upd_ptr[s]..sym.upd_ptr[s + 1]] {
        let (t, p0, p1) = (tu as usize, p0u as usize, p1u as usize);
        let (_, wt, mt, ht) = sym.shape(t);
        let trows = &sym.rows[sym.rows_ptr[t]..sym.rows_ptr[t + 1]];
        let lt = &l_done[sym.l_off[t]..sym.l_off[t] + ht * wt];
        let ut = &u_done[sym.u_off[t]..sym.u_off[t] + wt * mt];
        let rtotal = mt - p0;
        let nj = p1 - p0;
        // Resolve every target row of this updater once (`u32::MAX`
        // marks rows outside s's structure — their contribution is an
        // exact zero, see module docs); the scatter loops below then
        // run branch-light.
        if scratch.lidx.len() < rtotal {
            scratch.lidx.resize(rtotal, u32::MAX);
        }
        for i in 0..rtotal {
            let r = trows[p0 + i] as usize;
            scratch.lidx[i] = if r < c1 {
                (r - c0) as u32
            } else {
                scratch.map[r]
            };
        }
        let lidx = &scratch.lidx[..rtotal];
        // GEMM 1: rows of t at/below s's columns × t's U columns inside
        // s — lands in s's diagonal block and L panel.
        let c1n = rtotal * nj;
        if scratch.tmp.len() < c1n {
            scratch.tmp.resize(c1n, S::zero());
        }
        let tmp = &mut scratch.tmp[..c1n];
        for v in tmp.iter_mut() {
            *v = S::zero();
        }
        for y in 0..nj {
            let out = &mut tmp[y * rtotal..(y + 1) * rtotal];
            for q in 0..wt {
                let bq = ut[q + (p0 + y) * wt];
                if bq != S::zero() {
                    let acol = &lt[q * ht + wt + p0..q * ht + wt + p0 + rtotal];
                    for (o, &a) in out.iter_mut().zip(acol) {
                        *o += a * bq;
                    }
                }
            }
        }
        for y in 0..nj {
            let colbase = (trows[p0 + y] as usize - c0) * h;
            let tcol = &tmp[y * rtotal..(y + 1) * rtotal];
            for (i, &li) in lidx.iter().enumerate() {
                if li != u32::MAX {
                    lp[colbase + li as usize] -= tcol[i];
                }
            }
        }
        // GEMM 2: the same J rows of t × t's U columns beyond s — lands
        // in s's U panel.
        let nk = mt - p1;
        if nj > 0 && nk > 0 {
            let c2n = nj * nk;
            if scratch.tmp.len() < c2n {
                scratch.tmp.resize(c2n, S::zero());
            }
            let tmp = &mut scratch.tmp[..c2n];
            for v in tmp.iter_mut() {
                *v = S::zero();
            }
            for y in 0..nk {
                let out = &mut tmp[y * nj..(y + 1) * nj];
                for q in 0..wt {
                    let bq = ut[q + (p1 + y) * wt];
                    if bq != S::zero() {
                        let acol = &lt[q * ht + wt + p0..q * ht + wt + p0 + nj];
                        for (o, &a) in out.iter_mut().zip(acol) {
                            *o += a * bq;
                        }
                    }
                }
            }
            for y in 0..nk {
                let mm = lidx[nj + y];
                if mm == u32::MAX {
                    continue;
                }
                let ubase = (mm as usize - w) * w;
                for i in 0..nj {
                    up[ubase + (trows[p0 + i] as usize - c0)] -= tmp[i + y * nj];
                }
            }
        }
    }
    let res = panel_getrf(lp, h, w);
    if let Ok(()) = res {
        // U panel: forward-substitute each beyond-column with the unit
        // lower diagonal block.
        for x in 0..m {
            let col = &mut up[x * w..(x + 1) * w];
            for q in 0..w {
                let vq = col[q];
                if vq != S::zero() {
                    for k in q + 1..w {
                        col[k] -= lp[k + q * h] * vq;
                    }
                }
            }
        }
    }
    for &r in srows {
        scratch.map[r as usize] = u32::MAX;
    }
    res.map_err(|k| NumericsError::Singular {
        index: sym.colperm[c0 + k],
    })
}

impl<S: Scalar + Send + Sync> SupernodalLu<S> {
    /// Full factorization: symbolic analysis for this pattern plus the
    /// numeric phase. `threads` = 0 means auto (see [`crate::par`]).
    pub fn factor(a: &CscView<'_, S>, ordering: FillOrdering, threads: usize) -> Result<Self> {
        validate(a)?;
        let imatch = weighted_transversal(a).ok_or_else(|| {
            NumericsError::InvalidInput(
                "structurally singular pattern (no full transversal)".into(),
            )
        })?;
        // Machine-wide symbolic cache: the analysis is a pure function
        // of (resolved ordering, pattern, matching), so a known
        // fingerprint skips ordering, etree, exact counts, grouping,
        // and the assembly plan — cold factors of a seen pattern run
        // at allocate + numeric, i.e. near refactor cost.
        let resolved = ordering.resolve(a.n);
        let key = sym_fingerprint(resolved, a.n, a.col_ptr, a.row_idx, &imatch);
        let (sym, order_us, from_cache) = match sym_cache_get(key) {
            Some(sym) => (sym, 0, true),
            None => {
                let (sym, order_us, order_hit) =
                    analyze(a.n, a.col_ptr, a.row_idx, imatch, ordering)?;
                let sym = std::sync::Arc::new(sym);
                sym_cache_put(key, &sym);
                (sym, order_us, order_hit)
            }
        };
        let mut lu = SupernodalLu {
            lstore: vec![S::zero(); sym.l_size],
            ustore: vec![S::zero(); sym.u_size],
            row_scale: vec![1.0; a.n],
            threads_req: threads,
            threads_used: 1,
            order_us,
            order_source: if from_cache {
                "cached"
            } else {
                resolved.name()
            },
            sym,
        };
        lu.numeric(a.values, a.row_idx)?;
        Ok(lu)
    }

    /// Numeric-only refactorization on new values with the pattern and
    /// static pivots of the original [`factor`](Self::factor) call.
    /// The per-pivot drift guard is identical to the fresh factor's,
    /// so a pivot that decayed past `PIVOT_TAU × colmax` fails here
    /// exactly as it would there.
    pub fn refactor(&mut self, a: &CscView<'_, S>) -> Result<()> {
        if a.n != self.sym.n || a.values.len() != self.sym.plan.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: self.sym.plan.len(),
                found: a.values.len(),
            });
        }
        self.numeric(a.values, a.row_idx)
    }

    fn numeric(&mut self, values: &[S], row_idx: &[usize]) -> Result<()> {
        let n = self.sym.n;
        self.threads_used = resolve_factor_threads(self.threads_req).max(1);
        if n == 0 {
            return Ok(());
        }
        // Row equilibration: infinity-norm scale per original row,
        // recomputed from this call's values (serial → deterministic).
        self.row_scale.iter_mut().for_each(|s| *s = 0.0);
        for (p, v) in values.iter().enumerate() {
            let a = v.modulus();
            let r = &mut self.row_scale[row_idx[p]];
            if a > *r {
                *r = a;
            }
        }
        for s in self.row_scale.iter_mut() {
            *s = if *s > 0.0 && s.is_finite() {
                1.0 / *s
            } else {
                1.0
            };
        }
        let sym = &self.sym;
        for v in self.lstore.iter_mut() {
            *v = S::zero();
        }
        for v in self.ustore.iter_mut() {
            *v = S::zero();
        }
        let scale = &self.row_scale;
        for (p, &enc) in sym.plan.iter().enumerate() {
            let off = (enc & !UBIT) as usize;
            let v = values[p] * S::from_f64(scale[row_idx[p]]);
            if enc & UBIT != 0 {
                self.ustore[off] += v;
            } else {
                self.lstore[off] += v;
            }
        }
        let nw = self.threads_used;
        let lstore = self.lstore.as_mut_slice();
        let ustore = self.ustore.as_mut_slice();
        let mut seq_scratch = Scratch::new(n);
        for lvl in 0..sym.nlevels {
            let items = &sym.level_items[sym.level_ptr[lvl]..sym.level_ptr[lvl + 1]];
            let (l_done, l_rest) = lstore.split_at_mut(sym.l_lvl[lvl]);
            let l_cur = &mut l_rest[..sym.l_lvl[lvl + 1] - sym.l_lvl[lvl]];
            let (u_done, u_rest) = ustore.split_at_mut(sym.u_lvl[lvl]);
            let u_cur = &mut u_rest[..sym.u_lvl[lvl + 1] - sym.u_lvl[lvl]];
            if nw <= 1 || items.len() < PAR_MIN_ITEMS || l_cur.len() < PAR_MIN_WORK {
                let (mut loff, mut uoff) = (0usize, 0usize);
                for &su in items {
                    let s = su as usize;
                    let (_, w, m, h) = sym.shape(s);
                    let lp = &mut l_cur[loff..loff + h * w];
                    let up = &mut u_cur[uoff..uoff + w * m];
                    loff += h * w;
                    uoff += w * m;
                    factor_supernode(sym, s, l_done, u_done, lp, up, &mut seq_scratch)?;
                }
            } else {
                // Hand each worker disjoint panel chunks; the Mutex
                // only satisfies `Sync` — the atomic counter already
                // guarantees exclusive access per item.
                let mut chunks: Vec<PanelChunk<'_, S>> = Vec::with_capacity(items.len());
                let mut l_remain: &mut [S] = l_cur;
                let mut u_remain: &mut [S] = u_cur;
                for &su in items {
                    let s = su as usize;
                    let (_, w, m, h) = sym.shape(s);
                    let (lp, lr) = std::mem::take(&mut l_remain).split_at_mut(h * w);
                    l_remain = lr;
                    let (up, ur) = std::mem::take(&mut u_remain).split_at_mut(w * m);
                    u_remain = ur;
                    chunks.push(Mutex::new((s, lp, up)));
                }
                let next = AtomicUsize::new(0);
                let failed = AtomicBool::new(false);
                let failure: Mutex<Option<NumericsError>> = Mutex::new(None);
                let l_done_ref: &[S] = l_done;
                let u_done_ref: &[S] = u_done;
                std::thread::scope(|sc| {
                    for _ in 0..nw.min(chunks.len()) {
                        sc.spawn(|| {
                            let mut scratch = Scratch::new(n);
                            loop {
                                if failed.load(AtomicOrdering::Relaxed) {
                                    break;
                                }
                                let k = next.fetch_add(1, AtomicOrdering::SeqCst);
                                if k >= chunks.len() {
                                    break;
                                }
                                let mut guard = chunks[k].lock().unwrap();
                                let (s, ref mut lp, ref mut up) = *guard;
                                if let Err(e) = factor_supernode(
                                    sym,
                                    s,
                                    l_done_ref,
                                    u_done_ref,
                                    &mut lp[..],
                                    &mut up[..],
                                    &mut scratch,
                                ) {
                                    failed.store(true, AtomicOrdering::Relaxed);
                                    *failure.lock().unwrap() = Some(e);
                                    break;
                                }
                            }
                        });
                    }
                });
                if let Some(e) = failure.into_inner().unwrap() {
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

impl<S: Scalar> SupernodalLu<S> {
    /// Solves `A x = b`, returning `x` (same convention as
    /// [`crate::sparse_lu::SparseLu::solve`]).
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        let sym = &self.sym;
        let n = sym.n;
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Gather in pivot order, applying the same row scales the
        // factor applied to A (we factored D·A, so solve D·A x = D·b).
        let mut z: Vec<S> = (0..n)
            .map(|k| {
                let r = sym.rowperm[k];
                b[r] * S::from_f64(self.row_scale[r])
            })
            .collect();
        // Forward: unit-lower L, supernodes ascending.
        for s in 0..sym.nsuper {
            let (c0, w, _, h) = sym.shape(s);
            let srows = &sym.rows[sym.rows_ptr[s]..sym.rows_ptr[s + 1]];
            let lp = &self.lstore[sym.l_off[s]..sym.l_off[s] + h * w];
            for k in 0..w {
                let v = z[c0 + k];
                if v != S::zero() {
                    let col = &lp[k * h..(k + 1) * h];
                    for i in k + 1..w {
                        z[c0 + i] -= col[i] * v;
                    }
                    for (x, &r) in srows.iter().enumerate() {
                        z[r as usize] -= col[w + x] * v;
                    }
                }
            }
        }
        // Backward: U, supernodes descending.
        for s in (0..sym.nsuper).rev() {
            let (c0, w, m, h) = sym.shape(s);
            let srows = &sym.rows[sym.rows_ptr[s]..sym.rows_ptr[s + 1]];
            let up = &self.ustore[sym.u_off[s]..sym.u_off[s] + w * m];
            for (x, &r) in srows.iter().enumerate() {
                let vr = z[r as usize];
                if vr != S::zero() {
                    let col = &up[x * w..(x + 1) * w];
                    for k in 0..w {
                        z[c0 + k] -= col[k] * vr;
                    }
                }
            }
            let lp = &self.lstore[sym.l_off[s]..sym.l_off[s] + h * w];
            for k in (0..w).rev() {
                let mut v = z[c0 + k];
                for j in k + 1..w {
                    v -= lp[k + j * h] * z[c0 + j];
                }
                z[c0 + k] = v / lp[k + k * h];
            }
        }
        let mut x = vec![S::zero(); n];
        for k in 0..n {
            x[sym.colperm[k]] = z[k];
        }
        Ok(x)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.sym.n
    }

    /// Stored factor entries `(L, U)` — dense panel storage, i.e. the
    /// honest memory figure including amalgamation padding. The
    /// diagonal block (holding both unit-L and U) is counted once,
    /// under L.
    pub fn nnz(&self) -> (usize, usize) {
        (self.lstore.len(), self.ustore.len())
    }

    /// Exact factor entries `(L, U)` — the padding-free fill from the
    /// exact unsymmetric column counts, same diagonal convention as
    /// [`nnz`](Self::nnz). `nnz() ≥ exact_nnz()` always; the ratio is
    /// the amalgamation padding the analysis accepted.
    pub fn exact_nnz(&self) -> (usize, usize) {
        (self.sym.exact_l, self.sym.exact_u)
    }

    /// Microseconds the analysis spent computing the fill order — 0
    /// when the permutation (or the entire symbolic analysis) came
    /// from a machine-wide cache.
    pub fn order_us(&self) -> u64 {
        self.order_us
    }

    /// Where the fill order came from: `"cached"` on an ordering- or
    /// symbolic-cache hit, else the resolved ordering's name
    /// (`"amd"`, `"nd"`, `"natural"`).
    pub fn order_source(&self) -> &'static str {
        self.order_source
    }

    /// Number of supernodes (dense panels).
    pub fn supernodes(&self) -> usize {
        self.sym.nsuper
    }

    /// Depth of the level schedule.
    pub fn levels(&self) -> usize {
        self.sym.nlevels
    }

    /// Worker threads the last numeric phase resolved to.
    pub fn threads_used(&self) -> usize {
        self.threads_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::sparse_lu::{CscMatrix, SparseLu};

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
        }
    }

    /// Random square pattern with a strong-ish but not dominant
    /// diagonal plus off-diagonal spray; optionally pattern-symmetric.
    fn random_csc(seed: u64, n: usize, per_col: usize, symmetric: bool) -> CscMatrix<f64> {
        let mut rng = Lcg(seed);
        let mut trips: Vec<(usize, usize, f64)> = Vec::new();
        for j in 0..n {
            trips.push((j, j, 4.0 + rng.next()));
            for _ in 0..per_col {
                let i = ((rng.next().abs() * n as f64) as usize).min(n - 1);
                let v = rng.next();
                trips.push((i, j, v));
                if symmetric {
                    trips.push((j, i, v * 0.5));
                }
            }
        }
        CscMatrix::from_triplets(n, &trips)
    }

    fn solve_both(m: &CscMatrix<f64>, b: &[f64], threads: usize) -> (Vec<f64>, Vec<f64>) {
        let view = m.view();
        let scalar = SparseLu::factor(&view).expect("scalar factor");
        let snl = SupernodalLu::factor(&view, FillOrdering::Amd, threads).expect("snl factor");
        (scalar.solve(b).unwrap(), snl.solve(b).unwrap())
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        let scale = a.iter().fold(1.0f64, |acc, &v| acc.max(v.abs()));
        for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * scale,
                "solutions differ at {k}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_scalar_on_random_patterns() {
        for seed in 0..8u64 {
            let n = 40 + 7 * seed as usize;
            let m = random_csc(seed + 1, n, 3, seed % 2 == 0);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let (xs, xn) = solve_both(&m, &b, 1);
            assert_close(&xs, &xn, 1e-10);
        }
    }

    #[test]
    fn refactor_matches_fresh_factor_bitwise() {
        let n = 60;
        let m = random_csc(11, n, 4, false);
        let view = m.view();
        let mut snl = SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 1).unwrap();
        // New values on the same pattern.
        let mut m2 = m.clone();
        for (k, v) in m2.values.iter_mut().enumerate() {
            *v += 0.01 * ((k % 7) as f64 - 3.0) * 0.1;
        }
        let v2 = m2.view();
        snl.refactor(&v2).expect("refactor");
        let fresh = SupernodalLu::<f64>::factor(&v2, FillOrdering::Amd, 1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let xa = snl.solve(&b).unwrap();
        let xb = fresh.solve(&b).unwrap();
        assert_eq!(xa, xb, "refactor is the same numeric phase, bit for bit");
        let scalar = SparseLu::factor(&v2).unwrap();
        assert_close(&scalar.solve(&b).unwrap(), &xa, 1e-10);
    }

    #[test]
    fn thread_count_is_bitwise_invariant() {
        // Big enough that the parallel branch actually engages.
        let n = 700;
        let m = random_csc(5, n, 4, true);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let view = m.view();
        let mut gold: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 8] {
            let snl = SupernodalLu::factor(&view, FillOrdering::Amd, threads).unwrap();
            let x = snl.solve(&b).unwrap();
            match &gold {
                None => gold = Some(x),
                Some(g) => assert_eq!(g, &x, "threads={threads} changed bits"),
            }
        }
    }

    #[test]
    fn zero_diagonal_saddle_is_handled_by_matching() {
        // MNA-style: a voltage-source branch row with a structural zero
        // diagonal. Static diagonal pivoting without the transversal
        // would be impossible.
        //   [ 2  1  1 ] [x]   [1]
        //   [ 1  3  0 ] [y] = [2]
        //   [ 1  0  0 ] [z]   [3]
        let m = CscMatrix::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
            ],
        );
        let b = [1.0, 2.0, 3.0];
        let (xs, xn) = solve_both(&m, &b, 1);
        assert_close(&xs, &xn, 1e-12);
    }

    #[test]
    fn complex_systems_ride_the_same_kernels() {
        let n = 48;
        let base = random_csc(21, n, 3, false);
        let mut trips: Vec<(usize, usize, Complex64)> = Vec::new();
        let view = base.view();
        let mut rng = Lcg(99);
        for j in 0..n {
            for p in view.col_ptr[j]..view.col_ptr[j + 1] {
                trips.push((
                    view.row_idx[p],
                    j,
                    Complex64::new(view.values[p], 0.3 * rng.next()),
                ));
            }
        }
        let mc = CscMatrix::from_triplets(n, &trips);
        let vc = mc.view();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(1.0 + i as f64 * 0.1, -0.2 * i as f64))
            .collect();
        let scalar = SparseLu::factor(&vc).unwrap();
        let snl = SupernodalLu::factor(&vc, FillOrdering::Amd, 2).unwrap();
        let xs = scalar.solve(&b).unwrap();
        let xn = snl.solve(&b).unwrap();
        let scale = xs.iter().fold(1.0f64, |acc, v| acc.max(v.modulus()));
        for (x, y) in xs.iter().zip(&xn) {
            assert!((*x - *y).modulus() <= 1e-10 * scale);
        }
    }

    #[test]
    fn pivot_drift_is_rejected_on_refactor() {
        let n = 30;
        let m = random_csc(3, n, 3, false);
        let view = m.view();
        let mut snl = SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 1).unwrap();
        // Collapse one diagonal entry so its static pivot decays far
        // below the column max.
        let mut m2 = m.clone();
        {
            let target = 17usize;
            let v = m2.view();
            let range = v.col_ptr[target]..v.col_ptr[target + 1];
            let mut diag_pos = None;
            for p in range {
                if v.row_idx[p] == target {
                    diag_pos = Some(p);
                }
            }
            let p = diag_pos.expect("diagonal present");
            m2.values[p] = 1e-14;
        }
        let v2 = m2.view();
        match snl.refactor(&v2) {
            Ok(()) => {
                // The drifted pivot may still pass if AMD moved the
                // column somewhere harmless — then the answer must
                // still be right.
                let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let scalar = SparseLu::factor(&v2).unwrap();
                assert_close(&scalar.solve(&b).unwrap(), &snl.solve(&b).unwrap(), 1e-7);
            }
            Err(NumericsError::Singular { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn structurally_singular_is_reported() {
        // Empty column 1.
        let m = CscMatrix::from_triplets(3, &[(0, 0, 1.0), (2, 0, 1.0), (2, 2, 1.0), (0, 2, 1.0)]);
        let view = m.view();
        assert!(SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 1).is_err());
    }

    #[test]
    fn weighted_matching_dodges_tiny_diagonal() {
        // |a00| is 12 orders below its column max: a structural
        // matching would pivot on it and trip the drift guard, but the
        // value-aware transversal matches column 0 to row 1 instead.
        let m =
            CscMatrix::from_triplets(2, &[(0, 0, 1e-12), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]);
        let view = m.view();
        let snl = SupernodalLu::<f64>::factor(&view, FillOrdering::Natural, 1).unwrap();
        let x = snl.solve(&[1.0, 2.0]).unwrap();
        // Exact solution → [1, 1] as eps → 0.
        assert!(
            (x[0] - 1.0).abs() < 1e-6 && (x[1] - 1.0).abs() < 1e-6,
            "{x:?}"
        );
    }

    #[test]
    fn badly_row_scaled_mna_is_equilibrated() {
        // Spring-stiffness rows (~1e2) against conductance rows
        // (~1e-3): without row equilibration the matched diagonal of
        // the stiff row looks 1e-5× its column max and the static
        // pivot guard rejects a perfectly solvable system.
        let g = 1e-3;
        let k = 50.0;
        let m = CscMatrix::from_triplets(
            3,
            &[
                (0, 0, 2.0 * g),
                (1, 0, -g),
                (0, 1, -g),
                (1, 1, 2.0 * g),
                (2, 1, k),
                (1, 2, -g),
                (2, 2, k),
            ],
        );
        let view = m.view();
        let snl = SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 1).unwrap();
        let scalar = SparseLu::factor(&view).unwrap();
        let b = [1.0, 2.0, 3.0];
        assert_close(&scalar.solve(&b).unwrap(), &snl.solve(&b).unwrap(), 1e-10);
    }

    #[test]
    fn tridiagonal_and_grid_patterns() {
        // Tridiagonal: deep etree chain, exercises amalgamation.
        let n = 120;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 4.0));
            if i + 1 < n {
                trips.push((i, i + 1, -1.0));
                trips.push((i + 1, i, -1.2));
            }
        }
        let m = CscMatrix::from_triplets(n, &trips);
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let (xs, xn) = solve_both(&m, &b, 2);
        assert_close(&xs, &xn, 1e-11);

        // 2-D grid Laplacian-ish with asymmetry: wide etree, many
        // independent subtrees per level.
        let (r, c) = (14, 15);
        let n = r * c;
        let mut trips = Vec::new();
        let idx = |i: usize, j: usize| i * c + j;
        for i in 0..r {
            for j in 0..c {
                trips.push((idx(i, j), idx(i, j), 4.5));
                if i + 1 < r {
                    trips.push((idx(i, j), idx(i + 1, j), -1.0));
                    trips.push((idx(i + 1, j), idx(i, j), -0.9));
                }
                if j + 1 < c {
                    trips.push((idx(i, j), idx(i, j + 1), -1.1));
                    trips.push((idx(i, j + 1), idx(i, j), -1.0));
                }
            }
        }
        let m = CscMatrix::from_triplets(n, &trips);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let (xs, xn) = solve_both(&m, &b, 8);
        assert_close(&xs, &xn, 1e-10);
    }

    #[test]
    fn stats_are_plausible() {
        let m = random_csc(7, 200, 3, true);
        let snl = SupernodalLu::<f64>::factor(&m.view(), FillOrdering::Amd, 1).unwrap();
        assert!(snl.supernodes() >= 1 && snl.supernodes() <= 200);
        assert!(snl.levels() >= 1 && snl.levels() <= snl.supernodes());
        let (lnz, unz) = snl.nnz();
        assert!(lnz >= 200, "diag blocks alone give n entries");
        assert!(unz < 200 * 200);
        assert_eq!(snl.threads_used(), 1);
    }
}
