//! Piecewise-linear interpolation tables.
//!
//! PXT builds "piecewise linear behavioral macro models" from FE
//! sweeps (paper, §Parameter extraction); these tables are their
//! numerical backing store, and the HDL builtin `table1d` evaluates
//! them at run time.

use crate::{NumericsError, Result};

/// How a table behaves outside its breakpoint range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extrapolation {
    /// Continue the boundary segment's slope (default; matches how
    /// SPICE PWL sources behave and keeps Newton Jacobians nonzero).
    #[default]
    Linear,
    /// Clamp to the boundary value (zero outward slope).
    Clamp,
}

/// A strictly-increasing 1-D piecewise linear table `y(x)`.
///
/// ```
/// use mems_numerics::pwl::Pwl1;
/// let t = Pwl1::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])?;
/// assert_eq!(t.eval(0.5), 5.0);
/// assert_eq!(t.deriv(1.5), -10.0);
/// # Ok::<(), mems_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pwl1 {
    xs: Vec<f64>,
    ys: Vec<f64>,
    extrapolation: Extrapolation,
}

impl Pwl1 {
    /// Builds a table from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] unless `xs` is strictly
    /// increasing, finite, and at least two points long, with matching
    /// `ys`.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(NumericsError::InvalidInput(
                "PWL table needs at least two breakpoints".into(),
            ));
        }
        for w in xs.windows(2) {
            if !(w[1] > w[0]) {
                return Err(NumericsError::InvalidInput(format!(
                    "PWL breakpoints must be strictly increasing: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumericsError::InvalidInput(
                "PWL breakpoints must be finite".into(),
            ));
        }
        Ok(Pwl1 {
            xs,
            ys,
            extrapolation: Extrapolation::Linear,
        })
    }

    /// Sets the extrapolation behaviour.
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.extrapolation = e;
        self
    }

    /// Breakpoint abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Breakpoint ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Index of the segment containing `x` (clamped to valid segments).
    fn segment(&self, x: f64) -> usize {
        match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite by invariant"))
        {
            Ok(i) => i.min(self.xs.len() - 2),
            Err(0) => 0,
            Err(i) if i >= self.xs.len() => self.xs.len() - 2,
            Err(i) => i - 1,
        }
    }

    /// Interpolated value at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let i = self.segment(x);
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        let slope = (y1 - y0) / (x1 - x0);
        match self.extrapolation {
            Extrapolation::Linear => y0 + slope * (x - x0),
            Extrapolation::Clamp => {
                if x <= self.xs[0] {
                    self.ys[0]
                } else if x >= *self.xs.last().expect("nonempty") {
                    *self.ys.last().expect("nonempty")
                } else {
                    y0 + slope * (x - x0)
                }
            }
        }
    }

    /// Segment slope at `x` (the derivative almost everywhere).
    pub fn deriv(&self, x: f64) -> f64 {
        match self.extrapolation {
            Extrapolation::Clamp if x < self.xs[0] || x > *self.xs.last().expect("nonempty") => 0.0,
            _ => {
                let i = self.segment(x);
                (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i])
            }
        }
    }

    /// Maximum absolute interpolation error against a reference
    /// function sampled midway between breakpoints.
    pub fn midpoint_error(&self, f: impl Fn(f64) -> f64) -> f64 {
        self.xs
            .windows(2)
            .map(|w| {
                let m = 0.5 * (w[0] + w[1]);
                (self.eval(m) - f(m)).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// A bilinear table `z(x, y)` on a rectangular grid — the 2-D macro
/// model PXT extracts for `F(V, x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pwl2 {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Row-major `z[i][j] = z(xs[i], ys[j])`.
    zs: Vec<f64>,
}

impl Pwl2 {
    /// Builds a grid table.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] for non-increasing axes
    /// or a mis-sized value grid.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<f64>) -> Result<Self> {
        if xs.len() < 2 || ys.len() < 2 {
            return Err(NumericsError::InvalidInput(
                "bilinear table needs at least a 2x2 grid".into(),
            ));
        }
        for axis in [&xs, &ys] {
            for w in axis.windows(2) {
                if !(w[1] > w[0]) {
                    return Err(NumericsError::InvalidInput(
                        "bilinear axes must be strictly increasing".into(),
                    ));
                }
            }
        }
        if zs.len() != xs.len() * ys.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: xs.len() * ys.len(),
                found: zs.len(),
            });
        }
        Ok(Pwl2 { xs, ys, zs })
    }

    /// Grid abscissae along x.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Grid abscissae along y.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    fn bracket(axis: &[f64], v: f64) -> usize {
        match axis.binary_search_by(|p| p.partial_cmp(&v).expect("finite")) {
            Ok(i) => i.min(axis.len() - 2),
            Err(0) => 0,
            Err(i) if i >= axis.len() => axis.len() - 2,
            Err(i) => i - 1,
        }
    }

    /// Bilinear interpolation (linear extrapolation outside the grid).
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let i = Self::bracket(&self.xs, x);
        let j = Self::bracket(&self.ys, y);
        let tx = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        let ty = (y - self.ys[j]) / (self.ys[j + 1] - self.ys[j]);
        let ny = self.ys.len();
        let z = |a: usize, b: usize| self.zs[a * ny + b];
        let z00 = z(i, j);
        let z10 = z(i + 1, j);
        let z01 = z(i, j + 1);
        let z11 = z(i + 1, j + 1);
        z00 * (1.0 - tx) * (1.0 - ty)
            + z10 * tx * (1.0 - ty)
            + z01 * (1.0 - tx) * ty
            + z11 * tx * ty
    }

    /// Partial derivatives `(∂z/∂x, ∂z/∂y)` of the bilinear patch.
    pub fn grad(&self, x: f64, y: f64) -> (f64, f64) {
        let i = Self::bracket(&self.xs, x);
        let j = Self::bracket(&self.ys, y);
        let dx = self.xs[i + 1] - self.xs[i];
        let dy = self.ys[j + 1] - self.ys[j];
        let tx = (x - self.xs[i]) / dx;
        let ty = (y - self.ys[j]) / dy;
        let ny = self.ys.len();
        let z = |a: usize, b: usize| self.zs[a * ny + b];
        let (z00, z10, z01, z11) = (z(i, j), z(i + 1, j), z(i, j + 1), z(i + 1, j + 1));
        let dzdx = ((z10 - z00) * (1.0 - ty) + (z11 - z01) * ty) / dx;
        let dzdy = ((z01 - z00) * (1.0 - tx) + (z11 - z10) * tx) / dy;
        (dzdx, dzdy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_and_hits_breakpoints() {
        let t = Pwl1::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, -2.0]).unwrap();
        assert_eq!(t.eval(0.0), 0.0);
        assert_eq!(t.eval(1.0), 2.0);
        assert_eq!(t.eval(0.5), 1.0);
        assert_eq!(t.eval(2.0), 0.0);
        assert_eq!(t.deriv(0.5), 2.0);
        assert_eq!(t.deriv(2.5), -2.0);
    }

    #[test]
    fn linear_extrapolation_continues_slope() {
        let t = Pwl1::new(vec![0.0, 1.0], vec![0.0, 3.0]).unwrap();
        assert_eq!(t.eval(2.0), 6.0);
        assert_eq!(t.eval(-1.0), -3.0);
        assert_eq!(t.deriv(-1.0), 3.0);
    }

    #[test]
    fn clamped_extrapolation() {
        let t = Pwl1::new(vec![0.0, 1.0], vec![1.0, 3.0])
            .unwrap()
            .with_extrapolation(Extrapolation::Clamp);
        assert_eq!(t.eval(5.0), 3.0);
        assert_eq!(t.eval(-5.0), 1.0);
        assert_eq!(t.deriv(5.0), 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Pwl1::new(vec![0.0], vec![1.0]).is_err());
        assert!(Pwl1::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Pwl1::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Pwl1::new(vec![0.0, f64::NAN], vec![1.0, 2.0]).is_err());
        assert!(Pwl1::new(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn midpoint_error_measures_curvature() {
        let xs: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let t = Pwl1::new(xs, ys).unwrap();
        let err = t.midpoint_error(|x| x * x);
        // For y = x² on segments of width h, midpoint error is h²/4·(y''/2) = 0.0025.
        assert!((err - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn bilinear_reproduces_bilinear_function() {
        let xs = vec![0.0, 1.0, 2.0];
        let ys = vec![0.0, 2.0];
        let f = |x: f64, y: f64| 1.0 + 2.0 * x - y + 0.5 * x * y;
        let mut zs = Vec::new();
        for &x in &xs {
            for &y in &ys {
                zs.push(f(x, y));
            }
        }
        let t = Pwl2::new(xs, ys, zs).unwrap();
        for &(x, y) in &[(0.5, 1.0), (1.5, 0.25), (2.0, 2.0), (0.0, 0.0)] {
            assert!((t.eval(x, y) - f(x, y)).abs() < 1e-12);
        }
        let (dx, dy) = t.grad(0.5, 1.0);
        assert!((dx - (2.0 + 0.5 * 1.0)).abs() < 1e-12);
        assert!((dy - (-1.0 + 0.5 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn bilinear_rejects_bad_grid() {
        assert!(Pwl2::new(vec![0.0, 1.0], vec![0.0], vec![0.0, 0.0]).is_err());
        assert!(Pwl2::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]).is_err());
        assert!(Pwl2::new(vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0; 4]).is_err());
    }
}
