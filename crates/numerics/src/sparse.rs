//! Sparse matrices: a triplet (COO) builder and a compressed sparse
//! row (CSR) product format.
//!
//! The FE assembly accumulates element stiffness contributions into a
//! [`TripletMatrix`] and converts once to [`CsrMatrix`] for the
//! iterative solve.

use crate::{NumericsError, Result};

/// Coordinate-format sparse builder with duplicate accumulation.
///
/// ```
/// use mems_numerics::sparse::TripletMatrix;
/// let mut t = TripletMatrix::new(2, 2);
/// t.add(0, 0, 1.0);
/// t.add(0, 0, 2.0); // duplicates sum on conversion
/// let csr = t.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty builder of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `v` at `(i, j)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the indices are out of bounds.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols, "triplet out of bounds");
        if v != 0.0 {
            self.entries.push((i, j, v));
        }
    }

    /// Number of raw (pre-accumulation) entries.
    pub fn nnz_raw(&self) -> usize {
        self.entries.len()
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|a| (a.0, a.1));
        // Merge duplicates into (i, j, sum) runs.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (i, j, v) in sorted {
            match merged.last_mut() {
                Some((pi, pj, pv)) if *pi == i && *pj == j => *pv += v,
                _ => merged.push((i, j, v)),
            }
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &(i, _, _) in &merged {
            row_ptr[i + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, j, _)| j).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(i, j)` (zero when not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored entries of row `i` as `(col, value)`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] for wrong-length `x`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for (j, v) in self.row_iter(i) {
                acc += v * x[j];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Extracts the diagonal (zeros where unstored).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Converts to a dense matrix (tests and small problems only).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix<f64> {
        let mut d = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                d[(i, j)] += v;
            }
        }
        d
    }

    /// Maximum symmetry defect `|a_ij − a_ji|` over stored entries.
    pub fn symmetry_defect(&self) -> f64 {
        let mut d = 0.0f64;
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                d = d.max((v - self.get(j, i)).abs());
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_accumulates_duplicates() {
        let mut t = TripletMatrix::new(3, 3);
        t.add(1, 1, 2.0);
        t.add(1, 1, 3.0);
        t.add(0, 2, 1.0);
        let c = t.to_csr();
        assert_eq!(c.get(1, 1), 5.0);
        assert_eq!(c.get(0, 2), 1.0);
        assert_eq!(c.get(2, 2), 0.0);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut t = TripletMatrix::new(4, 4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 2.0);
        let c = t.to_csr();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(3, 3), 2.0);
        assert_eq!(c.row_iter(1).count(), 0);
        assert_eq!(c.row_iter(2).count(), 0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut t = TripletMatrix::new(3, 3);
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
        ];
        for (i, j, v) in entries {
            t.add(i, j, v);
        }
        let c = t.to_csr();
        let x = [1.0, 2.0, 3.0];
        let y = c.mul_vec(&x).unwrap();
        let yd = c.to_dense().mul_vec(&x).unwrap();
        assert_eq!(y, yd);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn zero_entries_are_dropped() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 0.0);
        assert_eq!(t.nnz_raw(), 0);
    }

    #[test]
    fn symmetry_defect() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 2.0);
        t.add(1, 0, 2.0);
        assert_eq!(t.to_csr().symmetry_defect(), 0.0);
        let mut t2 = TripletMatrix::new(2, 2);
        t2.add(0, 1, 2.0);
        assert_eq!(t2.to_csr().symmetry_defect(), 2.0);
    }

    #[test]
    fn get_on_unsorted_insert_order() {
        let mut t = TripletMatrix::new(2, 3);
        t.add(1, 2, 6.0);
        t.add(0, 1, 2.0);
        t.add(1, 0, 4.0);
        let c = t.to_csr();
        assert_eq!(c.get(0, 1), 2.0);
        assert_eq!(c.get(1, 0), 4.0);
        assert_eq!(c.get(1, 2), 6.0);
        let row: Vec<_> = c.row_iter(1).collect();
        assert_eq!(row, vec![(0, 4.0), (2, 6.0)]);
    }
}
