//! Preconditioned conjugate gradient for symmetric positive-definite
//! systems — the linear solver of the finite-element substrate.

use crate::dense::vecops;
use crate::sparse::CsrMatrix;
use crate::{NumericsError, Result};

/// Options for the CG solver.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Relative residual target `‖r‖ ≤ rtol·‖b‖`.
    pub rtol: f64,
    /// Absolute residual floor (guards `b = 0` edge cases).
    pub atol: f64,
    /// Iteration budget; `0` means `10·n`.
    pub max_iter: usize,
    /// Use Jacobi (diagonal) preconditioning.
    pub jacobi: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rtol: 1e-10,
            atol: 1e-300,
            max_iter: 0,
            jacobi: true,
        }
    }
}

/// Result metadata of a CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final (true) residual norm.
    pub residual: f64,
}

/// Solves `A·x = b` for SPD `A` with (optionally preconditioned) CG.
///
/// # Errors
///
/// - [`NumericsError::DimensionMismatch`] for non-square `A` or bad `b`;
/// - [`NumericsError::InvalidInput`] when a non-positive curvature
///   `pᵀAp ≤ 0` reveals the matrix is not positive definite;
/// - [`NumericsError::NoConvergence`] when the budget is exhausted.
pub fn solve_cg(a: &CsrMatrix, b: &[f64], opts: &CgOptions) -> Result<CgSolution> {
    let (n, m) = a.shape();
    if n != m {
        return Err(NumericsError::DimensionMismatch {
            expected: n,
            found: m,
        });
    }
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    let max_iter = if opts.max_iter == 0 {
        10 * n.max(10)
    } else {
        opts.max_iter
    };
    let mut precond = vec![1.0; n];
    if opts.jacobi {
        for (i, d) in a.diagonal().into_iter().enumerate() {
            if d <= 0.0 {
                return Err(NumericsError::InvalidInput(format!(
                    "Jacobi preconditioner needs positive diagonal, d[{i}] = {d}"
                )));
            }
            precond[i] = 1.0 / d;
        }
    }

    let bnorm = vecops::norm2(b);
    let target = (opts.rtol * bnorm).max(opts.atol);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&precond).map(|(ri, mi)| ri * mi).collect();
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut rnorm = vecops::norm2(&r);

    let mut it = 0;
    while rnorm > target && it < max_iter {
        let ap = a.mul_vec(&p)?;
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            return Err(NumericsError::InvalidInput(format!(
                "matrix is not positive definite (p'Ap = {pap:.3e} at iteration {it})"
            )));
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        for ((zi, ri), mi) in z.iter_mut().zip(&r).zip(&precond) {
            *zi = ri * mi;
        }
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        rnorm = vecops::norm2(&r);
        it += 1;
    }

    if rnorm > target {
        return Err(NumericsError::NoConvergence {
            iterations: it,
            residual: rnorm,
        });
    }
    Ok(CgSolution {
        x,
        iterations: it,
        residual: rnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    /// 1-D Poisson matrix (tridiagonal, SPD).
    fn poisson(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i > 0 {
                t.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_poisson_exactly_within_tolerance() {
        let n = 50;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.1).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let sol = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        for (xi, ti) in sol.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn unpreconditioned_also_converges() {
        let a = poisson(20);
        let b = vec![1.0; 20];
        let sol = solve_cg(
            &a,
            &b,
            &CgOptions {
                jacobi: false,
                ..CgOptions::default()
            },
        )
        .unwrap();
        let r = a.mul_vec(&sol.x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn zero_rhs_returns_zero_without_iterations() {
        let a = poisson(5);
        let sol = solve_cg(&a, &[0.0; 5], &CgOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(1, 1, -1.0);
        let a = t.to_csr();
        let err = solve_cg(
            &a,
            &[1.0, 1.0],
            &CgOptions {
                jacobi: false,
                ..CgOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, NumericsError::InvalidInput(_)));
    }

    #[test]
    fn budget_exhaustion_reports_no_convergence() {
        let a = poisson(100);
        let b = vec![1.0; 100];
        let err = solve_cg(
            &a,
            &b,
            &CgOptions {
                max_iter: 2,
                ..CgOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NumericsError::NoConvergence { iterations: 2, .. }
        ));
    }
}
