//! Machine-wide ordering cache keyed on the sparsity pattern.
//!
//! Computing a fill-reducing order is a pure function of the pattern,
//! and real workloads (a daemon re-serving decks, `.STEP`/`.MC`
//! batches, AC after OP) present the same MNA pattern over and over.
//! [`order_cached`] memoizes [`amd_order`](super::amd_order) /
//! [`nd_order`](super::nd_order) results in a process-wide LRU map
//! keyed on a 128-bit pattern fingerprint (ordering kind, n, nnz,
//! hashed `col_ptr`/`row_idx`), so any pattern seen before skips
//! ordering entirely — cold factors of a known pattern land near
//! refactor cost.
//!
//! Permutations are shared as `Arc<Vec<usize>>` (a hit copies a
//! pointer, not O(n) memory). Hit/miss totals are exposed for the
//! `mems serve` metrics endpoint.

use super::FillOrdering;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Patterns retained; least-recently-used beyond this are dropped.
/// Each entry holds one `Vec<usize>` of length n — at the 10⁶ tier
/// that is 8 MB, so the cap keeps worst-case residency modest.
const CACHE_CAP: usize = 48;

/// Result of an ordering lookup.
pub struct OrderLookup {
    /// The permutation (`perm[k]` = column eliminated at step `k`).
    pub perm: Arc<Vec<usize>>,
    /// Whether the pattern was already resident.
    pub hit: bool,
    /// Microseconds spent computing the order — 0 on a hit, which is
    /// exactly what `SolverStats.order_us` reports so callers (and
    /// the serve tests) can prove a cache hit end to end.
    pub order_us: u64,
}

struct Entry {
    perm: Arc<Vec<usize>>,
    last_used: u64,
}

struct Cache {
    map: HashMap<(u64, u64), Entry>,
    tick: u64,
}

fn cache() -> &'static Mutex<Cache> {
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(Cache {
            map: HashMap::new(),
            tick: 0,
        })
    })
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// FNV-1a over the words of the pattern, run with two different
/// offset bases to form a 128-bit key — collisions across distinct
/// patterns are vanishingly unlikely, and a false hit could only cost
/// fill (any permutation factors correctly), never accuracy.
fn fingerprint(kind: FillOrdering, n: usize, col_ptr: &[usize], row_idx: &[usize]) -> (u64, u64) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    let mut eat = |x: u64| {
        a = (a ^ x).wrapping_mul(PRIME);
        b = (b ^ x.rotate_left(32)).wrapping_mul(PRIME);
    };
    eat(kind as u64);
    eat(n as u64);
    eat(col_ptr.len() as u64);
    eat(row_idx.len() as u64);
    for &w in col_ptr {
        eat(w as u64);
    }
    for &w in row_idx {
        eat(w as u64);
    }
    (a, b)
}

/// Returns the fill-reducing order for the pattern under the given
/// (already resolved) ordering kind, serving repeats from the cache.
/// `FillOrdering::Natural` and `Auto` are caller errors in spirit —
/// they compute nothing and return the identity uncached.
pub fn order_cached(
    kind: FillOrdering,
    n: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
) -> OrderLookup {
    let kind = kind.resolve(n);
    if n <= 1 || !matches!(kind, FillOrdering::Amd | FillOrdering::Nd) {
        return OrderLookup {
            perm: Arc::new((0..n).collect()),
            hit: false,
            order_us: 0,
        };
    }
    let key = fingerprint(kind, n, col_ptr, row_idx);
    {
        let mut c = cache().lock().expect("ordering cache lock");
        c.tick += 1;
        let tick = c.tick;
        if let Some(entry) = c.map.get_mut(&key) {
            entry.last_used = tick;
            HITS.fetch_add(1, AtomicOrdering::Relaxed);
            return OrderLookup {
                perm: Arc::clone(&entry.perm),
                hit: true,
                order_us: 0,
            };
        }
    }
    // Compute outside the lock: concurrent misses on distinct
    // patterns must not serialize behind one large ordering.
    let start = Instant::now();
    let perm = Arc::new(match kind {
        FillOrdering::Nd => super::nd_order(n, col_ptr, row_idx),
        _ => super::amd_order(n, col_ptr, row_idx),
    });
    let order_us = (start.elapsed().as_micros() as u64).max(1);
    MISSES.fetch_add(1, AtomicOrdering::Relaxed);
    let mut c = cache().lock().expect("ordering cache lock");
    c.tick += 1;
    let tick = c.tick;
    c.map.entry(key).or_insert(Entry {
        perm: Arc::clone(&perm),
        last_used: tick,
    });
    if c.map.len() > CACHE_CAP {
        if let Some(&victim) = c
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k)
        {
            c.map.remove(&victim);
        }
    }
    OrderLookup {
        perm,
        hit: false,
        order_us,
    }
}

/// Lifetime (hits, misses) of the process-wide cache.
pub fn cache_stats() -> (u64, u64) {
    (
        HITS.load(AtomicOrdering::Relaxed),
        MISSES.load(AtomicOrdering::Relaxed),
    )
}

/// Empties the cache (counters keep running) — for tests that need a
/// cold start.
pub fn clear_cache() {
    cache().lock().expect("ordering cache lock").map.clear();
}

#[cfg(test)]
mod tests {
    use super::super::{amd_order, nd_order};
    use super::*;

    fn chain_pattern(n: usize) -> (Vec<usize>, Vec<usize>) {
        let mut col_ptr = vec![0usize];
        let mut row_idx = Vec::new();
        for j in 0..n {
            let mut rows = vec![j];
            if j > 0 {
                rows.push(j - 1);
            }
            if j + 1 < n {
                rows.push(j + 1);
            }
            rows.sort_unstable();
            row_idx.extend(rows);
            col_ptr.push(row_idx.len());
        }
        (col_ptr, row_idx)
    }

    #[test]
    fn second_lookup_hits_and_reports_zero_cost() {
        let (cp, ri) = chain_pattern(37);
        let first = order_cached(FillOrdering::Amd, 37, &cp, &ri);
        let again = order_cached(FillOrdering::Amd, 37, &cp, &ri);
        assert!(again.hit);
        assert_eq!(again.order_us, 0);
        assert!(first.order_us >= 1);
        assert_eq!(*again.perm, *first.perm);
        assert_eq!(*first.perm, amd_order(37, &cp, &ri));
    }

    #[test]
    fn kinds_key_separately() {
        let (cp, ri) = chain_pattern(41);
        let amd = order_cached(FillOrdering::Amd, 41, &cp, &ri);
        let nd = order_cached(FillOrdering::Nd, 41, &cp, &ri);
        assert_eq!(*nd.perm, nd_order(41, &cp, &ri));
        assert_eq!(*amd.perm, amd_order(41, &cp, &ri));
    }

    #[test]
    fn natural_is_identity_and_uncached() {
        let (cp, ri) = chain_pattern(5);
        let l = order_cached(FillOrdering::Natural, 5, &cp, &ri);
        assert_eq!(*l.perm, vec![0, 1, 2, 3, 4]);
        assert!(!l.hit);
        assert_eq!(l.order_us, 0);
    }

    #[test]
    fn distinct_patterns_do_not_collide() {
        let (cp_a, ri_a) = chain_pattern(12);
        let mut ri_b = ri_a.clone();
        // Perturb one entry (still in range, still sorted enough for
        // the orderer) — the fingerprint must differ.
        ri_b[0] = 2;
        let a = order_cached(FillOrdering::Amd, 12, &cp_a, &ri_a);
        let b = order_cached(FillOrdering::Amd, 12, &cp_a, &ri_b);
        assert_eq!(*b.perm, amd_order(12, &cp_a, &ri_b));
        assert!(is_perm(&a.perm, 12) && is_perm(&b.perm, 12));
    }

    fn is_perm(p: &[usize], n: usize) -> bool {
        super::super::is_permutation(p, n)
    }
}
