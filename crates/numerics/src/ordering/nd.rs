//! Multilevel nested-dissection fill-reducing ordering.
//!
//! [`nd_order`] computes a nested-dissection elimination order of the
//! symmetrized pattern: recursively split the graph by a small vertex
//! separator, order the two halves first and the separator last. On
//! the 2-D/3-D meshed patterns this stack factors, the separator tree
//! yields asymptotically lower fill than minimum degree and — more
//! importantly at n ≈ 10⁵–10⁶ — costs O(|E| log n) to compute, far
//! below AMD's quotient-graph elimination, which dominates cold
//! factors past n ≈ 5·10⁴.
//!
//! Per dissection level this is the classical multilevel scheme:
//! heavy-edge-matching coarsening until the graph is small, a BFS
//! level-structure bisection of the coarsest graph seeded from a
//! pseudo-peripheral vertex, Fiduccia–Mattheyses-style boundary
//! refinement while projecting back up, then a greedy vertex cover of
//! the refined edge cut as the separator. Subgraphs below
//! [`ND_LEAF`] vertices are ordered with [`amd_order`] (minimum
//! degree is better on small irregular blocks). Every loop is
//! index-ordered with deterministic tie-breaks, so the result is a
//! pure function of the pattern — the property the pattern-keyed
//! ordering cache and the bit-identical differential tests rely on.

use super::{amd_order, is_permutation};

/// Subgraphs at or below this size are ordered with AMD instead of
/// being dissected further.
pub const ND_LEAF: usize = 128;

/// Coarsest-graph size: heavy-edge matching stops here and the level
/// bisection runs directly.
const COARSE_TARGET: usize = 192;

/// Coarsening that shrinks the vertex count by less than this factor
/// has stalled (matchings collapse on star-like graphs); bisect at
/// the current size instead of looping.
const COARSE_STALL: f64 = 0.95;

/// Each bisection side must keep at least this fraction of the total
/// vertex weight during refinement.
const BALANCE_MIN: f64 = 0.42;

/// Computes a nested-dissection elimination order for the pattern of
/// a square CSC matrix (values irrelevant; the pattern is symmetrized
/// and the diagonal ignored). Same contract as
/// [`amd_order`](super::amd_order): `perm[k]` is the original column
/// eliminated at step `k`, always a valid permutation of `0..n`;
/// out-of-range row indices are ignored.
pub fn nd_order(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let (ptr, adj) = symmetrized_csr(n, col_ptr, row_idx);
    let mut out = Vec::with_capacity(n);
    let (cptr, cadj, cids) = peel(&ptr, &adj, &mut out);
    dissect(&cptr, &cadj, &cids, &mut out);
    debug_assert!(is_permutation(&out, n));
    out
}

/// Eliminates vertices of (dynamic) degree ≤ 2 up front: degree-0/1
/// vertices add no fill at all, and a degree-2 vertex adds at most
/// one edge (its neighbors get connected) — exactly the openings
/// minimum degree would take, at O(|E|) total cost. On the MNA
/// patterns this strips the per-edge velocity/force branch chains,
/// leaving the clean mesh core (typically 5–7× smaller) for
/// dissection — which makes the ordering both faster and better: the
/// separators then cut the mesh, not the chains. Peeled vertices are
/// appended to `out` in elimination order; returns the core subgraph
/// (CSR + global ids) that remains.
fn peel(
    ptr: &[usize],
    adj: &[usize],
    out: &mut Vec<usize>,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let nv = ptr.len() - 1;
    let mut nbrs: Vec<Vec<usize>> = (0..nv).map(|v| adj[ptr[v]..ptr[v + 1]].to_vec()).collect();
    let mut alive = vec![true; nv];
    let mut inq = vec![false; nv];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..nv {
        if nbrs[v].len() <= 2 {
            queue.push_back(v);
            inq[v] = true;
        }
    }
    while let Some(v) = queue.pop_front() {
        inq[v] = false;
        if !alive[v] || nbrs[v].len() > 2 {
            continue;
        }
        alive[v] = false;
        out.push(v);
        let ns = std::mem::take(&mut nbrs[v]);
        for &u in &ns {
            if alive[u] {
                nbrs[u].retain(|&x| x != v);
            }
        }
        let live: Vec<usize> = ns.into_iter().filter(|&u| alive[u]).collect();
        if let [a, b] = live[..] {
            // Degree-2 elimination connects the two neighbors.
            if !nbrs[a].contains(&b) {
                nbrs[a].push(b);
                nbrs[b].push(a);
            }
        }
        for &u in &live {
            if nbrs[u].len() <= 2 && !inq[u] {
                queue.push_back(u);
                inq[u] = true;
            }
        }
    }
    let mut local = vec![usize::MAX; nv];
    let mut cids = Vec::new();
    for v in 0..nv {
        if alive[v] {
            local[v] = cids.len();
            cids.push(v);
        }
    }
    let mut cptr = Vec::with_capacity(cids.len() + 1);
    cptr.push(0usize);
    let mut cadj = Vec::new();
    for &v in &cids {
        let start = cadj.len();
        cadj.extend(nbrs[v].iter().map(|&u| local[u]));
        cadj[start..].sort_unstable();
        cptr.push(cadj.len());
    }
    (cptr, cadj, cids)
}

/// Symmetrized adjacency (A + Aᵀ, no diagonal, deduplicated) in CSR
/// form, built with two counting passes — no per-vertex allocations,
/// which matters at n ≈ 10⁶.
fn symmetrized_csr(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let ncols = n.min(col_ptr.len().saturating_sub(1));
    let mut deg = vec![0usize; n];
    for j in 0..ncols {
        for p in col_ptr[j]..col_ptr[j + 1].min(row_idx.len()) {
            let i = row_idx[p];
            if i < n && i != j {
                deg[i] += 1;
                deg[j] += 1;
            }
        }
    }
    let mut ptr = vec![0usize; n + 1];
    for v in 0..n {
        ptr[v + 1] = ptr[v] + deg[v];
    }
    let mut adj = vec![0usize; ptr[n]];
    let mut next = ptr.clone();
    for j in 0..ncols {
        for p in col_ptr[j]..col_ptr[j + 1].min(row_idx.len()) {
            let i = row_idx[p];
            if i < n && i != j {
                adj[next[i]] = j;
                next[i] += 1;
                adj[next[j]] = i;
                next[j] += 1;
            }
        }
    }
    // Sort + dedup each list in place (duplicate stamps and the
    // A/Aᵀ overlap both produce repeats).
    let mut w = 0usize;
    let mut new_ptr = vec![0usize; n + 1];
    for v in 0..n {
        let (lo, hi) = (ptr[v], ptr[v + 1]);
        adj[lo..hi].sort_unstable();
        let mut r = lo;
        let start = w;
        while r < hi {
            if r == lo || adj[r] != adj[r - 1] {
                adj[w] = adj[r];
                w += 1;
            }
            r += 1;
        }
        new_ptr[v] = start;
        new_ptr[v + 1] = w;
    }
    adj.truncate(w);
    (new_ptr, adj)
}

/// Recursive dissection of the subgraph `(ptr, adj)` whose local
/// vertex `v` is global vertex `ids[v]`; appends the elimination
/// order (global ids) to `out`.
fn dissect(ptr: &[usize], adj: &[usize], ids: &[usize], out: &mut Vec<usize>) {
    let nv = ids.len();
    if nv <= ND_LEAF {
        leaf_amd(ptr, adj, ids, out);
        return;
    }
    let part = bisect(ptr, adj);
    let sep = vertex_separator(ptr, adj, &part);
    let mut counts = [0usize; 3]; // [part 0, part 1, separator]
    for v in 0..nv {
        counts[if sep[v] { 2 } else { part[v] as usize }] += 1;
    }
    // A degenerate split (empty side, or a separator that swallowed
    // most of the graph) would recurse without progress — minimum
    // degree handles whatever shape caused it.
    if counts[0] == 0 || counts[1] == 0 || counts[2] * 2 >= nv {
        leaf_amd(ptr, adj, ids, out);
        return;
    }
    for side in 0..2u8 {
        let (sptr, sadj, sids) = subgraph(ptr, adj, ids, |v| !sep[v] && part[v] == side);
        dissect(&sptr, &sadj, &sids, out);
    }
    // Separator vertices eliminate last, in ascending id order.
    for v in 0..nv {
        if sep[v] {
            out.push(ids[v]);
        }
    }
}

/// Orders a small subgraph with AMD; the subgraph CSR doubles as a
/// (symmetric) CSC pattern.
fn leaf_amd(ptr: &[usize], adj: &[usize], ids: &[usize], out: &mut Vec<usize>) {
    let perm = amd_order(ids.len(), ptr, adj);
    out.extend(perm.into_iter().map(|k| ids[k]));
}

/// Extracts the vertex-induced subgraph of local vertices satisfying
/// `keep`, renumbered compactly (ascending), dropping edges that
/// leave the subset.
fn subgraph(
    ptr: &[usize],
    adj: &[usize],
    ids: &[usize],
    keep: impl Fn(usize) -> bool,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let nv = ids.len();
    let mut local = vec![usize::MAX; nv];
    let mut sids = Vec::new();
    for v in 0..nv {
        if keep(v) {
            local[v] = sids.len();
            sids.push(ids[v]);
        }
    }
    let mut sptr = Vec::with_capacity(sids.len() + 1);
    sptr.push(0usize);
    let mut sadj = Vec::new();
    for v in 0..nv {
        if local[v] == usize::MAX {
            continue;
        }
        for &u in &adj[ptr[v]..ptr[v + 1]] {
            if local[u] != usize::MAX {
                sadj.push(local[u]);
            }
        }
        sptr.push(sadj.len());
    }
    (sptr, sadj, sids)
}

/// Greedy vertex cover of the bisection's cut edges: every cut edge
/// gets the endpoint with more cut incidences (ties to the smaller
/// index), giving a vertex separator whose removal disconnects the
/// two sides.
fn vertex_separator(ptr: &[usize], adj: &[usize], part: &[u8]) -> Vec<bool> {
    let nv = part.len();
    let mut cutdeg = vec![0u32; nv];
    for v in 0..nv {
        for &u in &adj[ptr[v]..ptr[v + 1]] {
            if part[u] != part[v] {
                cutdeg[v] += 1;
            }
        }
    }
    let mut sep = vec![false; nv];
    for v in 0..nv {
        for &u in &adj[ptr[v]..ptr[v + 1]] {
            if u <= v || part[u] == part[v] || sep[v] || sep[u] {
                continue;
            }
            let pick = match cutdeg[v].cmp(&cutdeg[u]) {
                std::cmp::Ordering::Greater => v,
                std::cmp::Ordering::Less => u,
                std::cmp::Ordering::Equal => v.min(u),
            };
            sep[pick] = true;
        }
    }
    // Trim: a separator vertex with no non-separator neighbor on the
    // opposite side is not needed to disconnect the parts — return it
    // to its own side. Two passes catch cascades from the first.
    for _ in 0..2 {
        let mut trimmed = false;
        for v in 0..nv {
            if !sep[v] {
                continue;
            }
            let needed = adj[ptr[v]..ptr[v + 1]]
                .iter()
                .any(|&u| !sep[u] && part[u] != part[v]);
            if !needed {
                sep[v] = false;
                trimmed = true;
            }
        }
        if !trimmed {
            break;
        }
    }
    sep
}

/// Edge bisection of the (unit-weight) subgraph: multilevel coarsen /
/// bisect / refine. Returns a side label per vertex.
fn bisect(ptr: &[usize], adj: &[usize]) -> Vec<u8> {
    let nv = ptr.len() - 1;
    let vwgt = vec![1usize; nv];
    let ewgt = vec![1usize; adj.len()];
    multilevel_bisect(ptr, adj, &vwgt, &ewgt)
}

fn multilevel_bisect(ptr: &[usize], adj: &[usize], vwgt: &[usize], ewgt: &[usize]) -> Vec<u8> {
    let nv = ptr.len() - 1;
    if nv > COARSE_TARGET {
        let (cmap, ncoarse) = hem_match(ptr, adj, ewgt);
        if (ncoarse as f64) < COARSE_STALL * nv as f64 {
            let (cptr, cadj, cvw, cew) = coarsen(ptr, adj, vwgt, ewgt, &cmap, ncoarse);
            let cpart = multilevel_bisect(&cptr, &cadj, &cvw, &cew);
            let mut part: Vec<u8> = (0..nv).map(|v| cpart[cmap[v]]).collect();
            fm_refine(ptr, adj, vwgt, ewgt, &mut part, 3);
            return part;
        }
    }
    let mut part = level_bisect(ptr, adj, vwgt);
    fm_refine(ptr, adj, vwgt, ewgt, &mut part, 4);
    part
}

/// Heavy-edge matching: visit vertices in index order, matching each
/// unmatched vertex with its unmatched neighbor of maximum edge
/// weight (ties to the smaller index). Returns the fine→coarse map
/// and the coarse vertex count.
fn hem_match(ptr: &[usize], adj: &[usize], ewgt: &[usize]) -> (Vec<usize>, usize) {
    let nv = ptr.len() - 1;
    let mut cmap = vec![usize::MAX; nv];
    let mut ncoarse = 0usize;
    for v in 0..nv {
        if cmap[v] != usize::MAX {
            continue;
        }
        let mut best = usize::MAX;
        let mut best_w = 0usize;
        for (p, &u) in adj[ptr[v]..ptr[v + 1]].iter().enumerate() {
            let w = ewgt[ptr[v] + p];
            if cmap[u] == usize::MAX && u != v && (w > best_w || (w == best_w && u < best)) {
                best = u;
                best_w = w;
            }
        }
        cmap[v] = ncoarse;
        if best != usize::MAX {
            cmap[best] = ncoarse;
        }
        ncoarse += 1;
    }
    (cmap, ncoarse)
}

/// Contracts matched pairs into the coarse graph, summing vertex and
/// parallel-edge weights.
#[allow(clippy::type_complexity)]
fn coarsen(
    ptr: &[usize],
    adj: &[usize],
    vwgt: &[usize],
    ewgt: &[usize],
    cmap: &[usize],
    ncoarse: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) {
    let nv = ptr.len() - 1;
    let mut cvw = vec![0usize; ncoarse];
    for v in 0..nv {
        cvw[cmap[v]] += vwgt[v];
    }
    // Members of each coarse vertex, in fine-index order.
    let mut head = vec![0usize; ncoarse + 1];
    for v in 0..nv {
        head[cmap[v] + 1] += 1;
    }
    for c in 0..ncoarse {
        head[c + 1] += head[c];
    }
    let mut members = vec![0usize; nv];
    let mut cursor = head.clone();
    for v in 0..nv {
        members[cursor[cmap[v]]] = v;
        cursor[cmap[v]] += 1;
    }

    let mut cptr = Vec::with_capacity(ncoarse + 1);
    cptr.push(0usize);
    let mut cadj = Vec::new();
    let mut cew = Vec::new();
    // Dense scratch: where[c] = position of coarse neighbor c in the
    // current row, valid when stamped.
    let mut slot = vec![usize::MAX; ncoarse];
    let mut stamp = vec![usize::MAX; ncoarse];
    for c in 0..ncoarse {
        let row_start = cadj.len();
        for &v in &members[head[c]..head[c + 1]] {
            for (p, &u) in adj[ptr[v]..ptr[v + 1]].iter().enumerate() {
                let cu = cmap[u];
                if cu == c {
                    continue;
                }
                let w = ewgt[ptr[v] + p];
                if stamp[cu] == c {
                    cew[slot[cu]] += w;
                } else {
                    stamp[cu] = c;
                    slot[cu] = cadj.len();
                    cadj.push(cu);
                    cew.push(w);
                }
            }
        }
        // Deterministic neighbor order regardless of member order.
        let mut row: Vec<(usize, usize)> = cadj[row_start..]
            .iter()
            .zip(&cew[row_start..])
            .map(|(&a, &w)| (a, w))
            .collect();
        row.sort_unstable();
        for (k, (a, w)) in row.into_iter().enumerate() {
            cadj[row_start + k] = a;
            cew[row_start + k] = w;
        }
        cptr.push(cadj.len());
    }
    (cptr, cadj, cvw, cew)
}

/// Initial bisection from a BFS level structure: find a
/// pseudo-peripheral start (two BFS sweeps from the minimum-degree
/// vertex), then assign vertices to side 0 in BFS order until half
/// the total weight is covered. Unreachable vertices (disconnected
/// components) append after the reachable ones in index order.
fn level_bisect(ptr: &[usize], adj: &[usize], vwgt: &[usize]) -> Vec<u8> {
    let nv = ptr.len() - 1;
    let start = (0..nv)
        .min_by_key(|&v| (ptr[v + 1] - ptr[v], v))
        .unwrap_or(0);
    let order0 = bfs_order(ptr, adj, start);
    let far = *order0.last().expect("nonempty graph");
    let order = bfs_order(ptr, adj, far);
    let total: usize = vwgt.iter().sum();
    let mut part = vec![1u8; nv];
    let mut acc = 0usize;
    for &v in &order {
        if acc * 2 >= total {
            break;
        }
        part[v] = 0;
        acc += vwgt[v];
    }
    part
}

/// BFS visit order from `start`, with unreached vertices appended in
/// index order (each starts a fresh component sweep).
fn bfs_order(ptr: &[usize], adj: &[usize], start: usize) -> Vec<usize> {
    let nv = ptr.len() - 1;
    let mut seen = vec![false; nv];
    let mut order = Vec::with_capacity(nv);
    let mut queue = std::collections::VecDeque::new();
    let mut next_unseen = 0usize;
    let mut seed = start;
    loop {
        if !seen[seed] {
            seen[seed] = true;
            queue.push_back(seed);
        }
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in &adj[ptr[v]..ptr[v + 1]] {
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        while next_unseen < nv && seen[next_unseen] {
            next_unseen += 1;
        }
        if next_unseen == nv {
            return order;
        }
        seed = next_unseen;
    }
}

/// Fiduccia–Mattheyses-style boundary refinement: up to `passes`
/// sweeps moving positive-gain boundary vertices (zero-gain moves
/// allowed off the heavier side), each vertex at most once per sweep,
/// respecting the [`BALANCE_MIN`] weight floor. Gains are tracked
/// exactly; the lazy heap skips stale entries.
fn fm_refine(
    ptr: &[usize],
    adj: &[usize],
    vwgt: &[usize],
    ewgt: &[usize],
    part: &mut [u8],
    passes: usize,
) {
    let nv = part.len();
    let total: usize = vwgt.iter().sum();
    let min_side = ((total as f64) * BALANCE_MIN) as usize;
    let mut side_w = [0usize; 2];
    for v in 0..nv {
        side_w[part[v] as usize] += vwgt[v];
    }
    let mut gain = vec![0i64; nv];
    let mut locked = vec![false; nv];
    for _ in 0..passes {
        let mut heap: std::collections::BinaryHeap<(i64, std::cmp::Reverse<usize>)> =
            std::collections::BinaryHeap::new();
        for v in 0..nv {
            locked[v] = false;
            let mut g = 0i64;
            let mut boundary = false;
            for (p, &u) in adj[ptr[v]..ptr[v + 1]].iter().enumerate() {
                let w = ewgt[ptr[v] + p] as i64;
                if part[u] == part[v] {
                    g -= w;
                } else {
                    g += w;
                    boundary = true;
                }
            }
            gain[v] = g;
            if boundary {
                heap.push((g, std::cmp::Reverse(v)));
            }
        }
        let mut moved = 0usize;
        while let Some((g, std::cmp::Reverse(v))) = heap.pop() {
            if locked[v] || g != gain[v] {
                continue; // stale
            }
            let from = part[v] as usize;
            let improves = g > 0 || (g == 0 && side_w[from] > side_w[1 - from]);
            if !improves || side_w[from] < min_side + vwgt[v] {
                continue;
            }
            part[v] = 1 - part[v];
            side_w[from] -= vwgt[v];
            side_w[1 - from] += vwgt[v];
            locked[v] = true;
            moved += 1;
            gain[v] = -g;
            for (p, &u) in adj[ptr[v]..ptr[v + 1]].iter().enumerate() {
                if locked[u] {
                    continue;
                }
                let w = ewgt[ptr[v] + p] as i64;
                // v switched sides: edges to v flip contribution.
                gain[u] += if part[u] == part[v] { -2 * w } else { 2 * w };
                heap.push((gain[u], std::cmp::Reverse(u)));
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CSC pattern from (row, col) coordinate pairs.
    fn csc_pattern(n: usize, coords: &[(usize, usize)]) -> (Vec<usize>, Vec<usize>) {
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(r, c) in coords {
            cols[c].push(r);
        }
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::new();
        for (c, mut rows) in cols.into_iter().enumerate() {
            rows.sort_unstable();
            rows.dedup();
            col_ptr[c + 1] = col_ptr[c] + rows.len();
            row_idx.extend(rows);
        }
        (col_ptr, row_idx)
    }

    /// 5-point-stencil grid pattern (rows × cols nodes).
    fn grid_pattern(rows: usize, cols: usize) -> (usize, Vec<usize>, Vec<usize>) {
        let n = rows * cols;
        let id = |r: usize, c: usize| r * cols + c;
        let mut coords = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                coords.push((id(r, c), id(r, c)));
                if c + 1 < cols {
                    coords.push((id(r, c), id(r, c + 1)));
                    coords.push((id(r, c + 1), id(r, c)));
                }
                if r + 1 < rows {
                    coords.push((id(r, c), id(r + 1, c)));
                    coords.push((id(r + 1, c), id(r, c)));
                }
            }
        }
        let (cp, ri) = csc_pattern(n, &coords);
        (n, cp, ri)
    }

    #[test]
    fn empty_singleton_and_tiny() {
        assert!(nd_order(0, &[0], &[]).is_empty());
        assert_eq!(nd_order(1, &[0, 1], &[0]), vec![0]);
        let (cp, ri) = csc_pattern(3, &[(0, 0), (1, 1), (2, 2), (0, 1), (1, 0)]);
        assert!(is_permutation(&nd_order(3, &cp, &ri), 3));
    }

    #[test]
    fn grid_order_is_a_permutation_and_deterministic() {
        let (n, cp, ri) = grid_pattern(40, 37);
        let a = nd_order(n, &cp, &ri);
        let b = nd_order(n, &cp, &ri);
        assert!(is_permutation(&a, n));
        assert_eq!(a, b);
    }

    #[test]
    fn disconnected_graph_survives() {
        // Two components, one of them edgeless.
        let mut coords = vec![(0, 1), (1, 0)];
        for i in 0..300 {
            coords.push((i, i));
            if i > 2 && i < 200 {
                coords.push((i, i - 1));
                coords.push((i - 1, i));
            }
        }
        let (cp, ri) = csc_pattern(300, &coords);
        assert!(is_permutation(&nd_order(300, &cp, &ri), 300));
    }

    #[test]
    fn grid_fill_is_comparable_to_amd() {
        // Nested dissection should land within a modest factor of AMD
        // fill on a mesh (and far below natural order).
        let (n, cp, ri) = grid_pattern(32, 32);
        let nd = nd_order(n, &cp, &ri);
        let amd = amd_order(n, &cp, &ri);
        let fill = |perm: &[usize]| {
            let mut pinv = vec![0usize; n];
            for (k, &p) in perm.iter().enumerate() {
                pinv[p] = k;
            }
            let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
            for j in 0..n {
                for p in cp[j]..cp[j + 1] {
                    let i = ri[p];
                    if i != j {
                        adj[pinv[i]].insert(pinv[j]);
                        adj[pinv[j]].insert(pinv[i]);
                    }
                }
            }
            let mut fill = 0usize;
            for k in 0..n {
                let nbrs: Vec<usize> = adj[k].iter().copied().filter(|&v| v > k).collect();
                fill += nbrs.len();
                for (a, &i) in nbrs.iter().enumerate() {
                    for &j in &nbrs[a + 1..] {
                        adj[i].insert(j);
                        adj[j].insert(i);
                    }
                }
            }
            fill
        };
        let nd_fill = fill(&nd);
        let amd_fill = fill(&amd);
        assert!(
            (nd_fill as f64) < 1.35 * amd_fill as f64,
            "nd fill {nd_fill} vs amd fill {amd_fill}"
        );
    }

    #[test]
    fn unsymmetric_and_out_of_range_inputs_are_tolerated() {
        // Strictly lower-triangular pattern plus a bogus row index.
        let n = 50;
        let mut coords = vec![];
        for i in 0..n {
            coords.push((i, i));
            if i > 0 {
                coords.push((i, i - 1));
            }
        }
        let (cp, mut ri) = csc_pattern(n, &coords);
        ri[3] = 10_000; // out of range, must be ignored
        assert!(is_permutation(&nd_order(n, &cp, &ri), n));
    }
}
