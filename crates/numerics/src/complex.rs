//! A minimal but complete double-precision complex number.
//!
//! The workspace is restricted to a small set of external crates, so
//! complex arithmetic (needed by AC small-signal analysis, harmonic FE
//! response and rational transfer-function fitting) is implemented
//! here rather than pulled from `num-complex`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` in double precision.
///
/// ```
/// use mems_numerics::Complex64;
/// let a = Complex64::new(3.0, 4.0);
/// assert_eq!(a.abs(), 5.0);
/// assert_eq!((a * a.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar magnitude and phase (radians).
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Complex64::new(mag * phase.cos(), mag * phase.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Magnitude (Euclidean norm), computed with `hypot` for stability.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Uses Smith's algorithm to avoid overflow for extreme magnitudes.
    pub fn recip(self) -> Self {
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Complex64::new(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Complex64::new(r / d, -1.0 / d)
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        let re = ((m + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((m - self.re) * 0.5).max(0.0).sqrt();
        Complex64::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Complex exponential.
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either part is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex64::ONE;
        }
        let invert = n < 0;
        if invert {
            n = -n;
        }
        let mut base = self;
        let mut acc = Complex64::ONE;
        let mut k = n as u32;
        while k > 0 {
            if k & 1 == 1 {
                acc *= base;
            }
            base *= base;
            k >>= 1;
        }
        if invert {
            acc.recip()
        } else {
            acc
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division by multiplication with the reciprocal — intended.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.25);
        let b = Complex64::new(-0.5, 4.0);
        let c = Complex64::new(3.0, 0.125);
        // Associativity and distributivity within f64 rounding.
        let lhs = (a + b) + c;
        let rhs = a + (b + c);
        assert!((lhs - rhs).abs() < 1e-14);
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn division_and_recip_are_consistent() {
        let a = Complex64::new(2.0, -7.0);
        let b = Complex64::new(-3.0, 0.5);
        let q = a / b;
        assert!((q * b - a).abs() < 1e-12);
        assert!((b * b.recip() - Complex64::ONE).abs() < 1e-14);
    }

    #[test]
    fn recip_handles_extreme_magnitudes() {
        let tiny = Complex64::new(1e-300, 1e-300);
        let r = tiny.recip();
        assert!(r.is_finite());
        assert!((tiny * r - Complex64::ONE).abs() < 1e-10);
        // Dominant imaginary part branch.
        let b = Complex64::new(1e-10, 5.0);
        assert!((b * b.recip() - Complex64::ONE).abs() < 1e-13);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (0.0, 2.0),
            (-1.0, 0.0),
            (3.0, -4.0),
            (-5.0, -12.0),
        ] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            assert!((s * s - z).abs() < 1e-12, "sqrt({z}) = {s}");
            // Principal branch: non-negative real part.
            assert!(s.re >= -1e-15);
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex64::new(1.1, -0.3);
        let mut acc = Complex64::ONE;
        for _ in 0..7 {
            acc *= z;
        }
        assert!((z.powi(7) - acc).abs() < 1e-12);
        assert!((z.powi(-3) * z.powi(3) - Complex64::ONE).abs() < 1e-12);
        assert_eq!(z.powi(0), Complex64::ONE);
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let e = (Complex64::J * std::f64::consts::PI).exp();
        assert!((e - Complex64::new(-1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }
}
