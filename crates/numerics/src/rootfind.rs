//! Scalar root finding: bisection and Brent's method.
//!
//! Used by the transducer library to solve static equilibria (e.g.
//! the DC displacement `k·x = F(v, x)` behind Table 4's `x₀`) and to
//! locate the electrostatic pull-in point in the relay example.

use crate::{NumericsError, Result};

/// Finds a bracketed root of `f` by bisection.
///
/// # Errors
///
/// - [`NumericsError::InvalidInput`] when `[a, b]` does not bracket a
///   sign change;
/// - [`NumericsError::NoConvergence`] if the budget is exhausted.
pub fn bisect(f: impl Fn(f64) -> f64, mut a: f64, mut b: f64, tol: f64) -> Result<f64> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::InvalidInput(format!(
            "bisect: no sign change on [{a}, {b}] (f = {fa:.3e}, {fb:.3e})"
        )));
    }
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: 200,
        residual: (b - a).abs(),
    })
}

/// Finds a bracketed root of `f` with Brent's method (inverse
/// quadratic interpolation guarded by bisection).
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn brent(f: impl Fn(f64) -> f64, a0: f64, b0: f64, tol: f64) -> Result<f64> {
    let (mut a, mut b) = (a0, b0);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::InvalidInput(format!(
            "brent: no sign change on [{a0}, {b0}]"
        )));
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for it in 0..200 {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let within = (s > lo.min(b) && s < lo.max(b)) || (s > b.min(lo) && s < b.max(lo));
        let cond = !within
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && (c - d).abs() < tol);
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
        if it == 199 {
            return Err(NumericsError::NoConvergence {
                iterations: 200,
                residual: fb.abs(),
            });
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2_faster_shape() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rejects_unbracketed() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_err());
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-9).unwrap(), 1.0);
    }

    #[test]
    fn static_deflection_equation_from_table4() {
        // k·x = ε0·A·V²/(2(d+x)²) with gap-closing sign folded in:
        // solve g(x) = k·x − F(x) = 0 for the 10 V bias.
        let (eps0, a, dgap, k, v) = (8.8542e-12, 1e-4, 0.15e-3, 200.0, 10.0);
        let g = |x: f64| k * x - eps0 * a * v * v / (2.0 * (dgap - x) * (dgap - x));
        let x0 = brent(g, 0.0, dgap * 0.5, 1e-18).unwrap();
        // Paper Table 4: dc displacement magnitude 1.0e-8 m.
        assert!((x0 - 1.0e-8).abs() < 2e-10, "x0 = {x0:e}");
    }

    #[test]
    fn brent_on_steep_function() {
        let r = brent(|x| (x - 0.123).powi(3), -1.0, 1.0, 1e-15).unwrap();
        assert!((r - 0.123).abs() < 1e-5);
    }
}
