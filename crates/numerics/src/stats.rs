//! Trace statistics shared by the experiment harness: peak detection,
//! RMS, settling values, and trace comparison metrics used when
//! checking the reproduced Fig. 5 series against expectations.

/// Summary statistics of a sampled trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Minimum sample value.
    pub min: f64,
    /// Maximum sample value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Root-mean-square value.
    pub rms: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes summary statistics; returns `None` for an empty trace.
pub fn stats(ys: &[f64]) -> Option<TraceStats> {
    if ys.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut sq = 0.0;
    for &y in ys {
        min = min.min(y);
        max = max.max(y);
        sum += y;
        sq += y * y;
    }
    let n = ys.len();
    Some(TraceStats {
        min,
        max,
        mean: sum / n as f64,
        rms: (sq / n as f64).sqrt(),
        n,
    })
}

/// Maximum absolute difference between two traces of equal length.
///
/// # Panics
///
/// Panics when the traces have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "trace length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Relative L2 difference `‖a − b‖₂ / ‖b‖₂` (with `b` as reference).
///
/// Returns the absolute L2 norm of `a` when the reference is zero.
pub fn rel_l2_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "trace length mismatch");
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Mean of the last `frac` fraction of the trace — the "settled"
/// value used to read static deflections off the Fig. 5 traces.
pub fn settled_value(ys: &[f64], frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    if ys.is_empty() {
        return 0.0;
    }
    let start = ((ys.len() as f64) * (1.0 - frac)) as usize;
    let tail = &ys[start.min(ys.len() - 1)..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// Index and value of the sample with maximum absolute value.
pub fn peak(ys: &[f64]) -> Option<(usize, f64)> {
    ys.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("finite traces"))
        .map(|(i, &v)| (i, v))
}

/// Estimates the dominant oscillation frequency of a trace by counting
/// mean crossings. Returns `None` when fewer than two crossings exist.
pub fn crossing_frequency(ts: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(ts.len(), ys.len(), "trace length mismatch");
    let st = stats(ys)?;
    let mean = st.mean;
    let mut crossings = Vec::new();
    for i in 1..ys.len() {
        let (a, b) = (ys[i - 1] - mean, ys[i] - mean);
        if a == 0.0 {
            continue;
        }
        if a.signum() != b.signum() && b != 0.0 {
            // Linear interpolation of the crossing time.
            let t = ts[i - 1] + (ts[i] - ts[i - 1]) * (a / (a - b));
            crossings.push(t);
        }
    }
    if crossings.len() < 2 {
        return None;
    }
    // Each mean-crossing pair spans half a period.
    let span = crossings.last().unwrap() - crossings.first().unwrap();
    let half_periods = (crossings.len() - 1) as f64;
    Some(half_periods / (2.0 * span))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, -1.0, 3.0]).unwrap();
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 1.0).abs() < 1e-15);
        assert!((s.rms - (11.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert!(stats(&[]).is_none());
    }

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert!((rel_l2_diff(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-15);
        assert!(rel_l2_diff(&[1.0], &[0.0]) == 1.0);
    }

    #[test]
    fn settled_reads_tail() {
        let ys: Vec<f64> = (0..100).map(|i| if i < 90 { 100.0 } else { 2.0 }).collect();
        assert!((settled_value(&ys, 0.1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn peak_finds_largest_magnitude() {
        let (i, v) = peak(&[0.1, -5.0, 3.0]).unwrap();
        assert_eq!(i, 1);
        assert_eq!(v, -5.0);
        assert!(peak(&[]).is_none());
    }

    #[test]
    fn crossing_frequency_of_sine() {
        let f0 = 225.0; // close to the Fig. 5 resonator's ~225 Hz
        let n = 4000;
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 1e-5).collect();
        let ys: Vec<f64> = ts
            .iter()
            .map(|t| 1e-8 * (2.0 * std::f64::consts::PI * f0 * t).sin())
            .collect();
        let f = crossing_frequency(&ts, &ys).unwrap();
        assert!((f - f0).abs() < 2.0, "estimated {f} Hz");
    }

    #[test]
    fn crossing_frequency_needs_oscillation() {
        let ts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys = vec![1.0; 10];
        assert!(crossing_frequency(&ts, &ys).is_none());
    }
}
