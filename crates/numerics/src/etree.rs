//! Elimination-tree symbolic analysis for the supernodal LU.
//!
//! The scalar [`crate::sparse_lu`] discovers each column's fill
//! pattern by depth-first reachability at numeric time — simple and
//! exact, but the DFS is re-run per column and goes quadratic-ish on
//! meshed patterns past n ≈ 10⁴. This module provides the classic
//! one-shot alternative used by supernodal codes
//! ([`crate::supernodal`]):
//!
//! 1. [`max_transversal`] — a maximum bipartite matching (MC21-style
//!    augmenting paths) that row-permutes the matrix so every diagonal
//!    entry is structurally nonzero, making static (diagonal) pivoting
//!    possible on MNA saddle matrices whose raw diagonals contain
//!    structural zeros (source branch rows, gyrator couplings);
//! 2. [`symmetrize`] — the pattern of `A + Aᵀ` (sorted adjacency, no
//!    diagonal), the graph every downstream step works on;
//! 3. [`etree`] — Liu's elimination-tree construction with path
//!    compression, `O(nnz·α(n))`;
//! 4. [`postorder`] — a deterministic depth-first postorder of the
//!    tree; relabeling columns by it makes every supernode a
//!    contiguous column range;
//! 5. [`col_counts`] — per-column factor nonzero counts via
//!    row-subtree traversal (the COLAMD/GNP-style counting pass),
//!    `O(nnz(L))` total, replacing the per-column DFS.
//!
//! All functions are purely structural: values never enter, so the
//! results are reusable across every numeric (re)factorization of the
//! same pattern.

/// Sentinel for "no parent" / "unmatched".
pub const NONE: usize = usize::MAX;

/// Maximum transversal (MC21): a row permutation placing a structural
/// nonzero on every diagonal position.
///
/// Returns `m` with `m[j]` = the original row matched to column `j`
/// (so row `m[j]` of `A` becomes row `j` of the permuted matrix), or
/// `None` when the pattern is structurally singular (no perfect
/// matching exists). Deterministic: columns are processed in order and
/// augmenting paths explore rows in storage order.
pub fn max_transversal(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Option<Vec<usize>> {
    let mut imatch = vec![NONE; n]; // col -> row
    let mut jmatch = vec![NONE; n]; // row -> col
                                    // Cheap-assignment pointer per column (rows skipped by it are
                                    // permanently matched: augmentation never unmatches a row).
    let mut cheap: Vec<usize> = col_ptr[..n].to_vec();
    let mut mark = vec![NONE; n]; // column visited in the current augmentation
    let mut col_stack = vec![0usize; n];
    let mut pos_stack = vec![0usize; n];
    let mut row_stack = vec![0usize; n];
    for root in 0..n {
        let mut head: usize = 0;
        col_stack[0] = root;
        let mut found = false;
        'dfs: loop {
            let j = col_stack[head];
            if mark[j] != root {
                mark[j] = root;
                // Cheap assignment: first still-unmatched row of j.
                let mut p = cheap[j];
                while p < col_ptr[j + 1] {
                    let i = row_idx[p];
                    p += 1;
                    if i < n && jmatch[i] == NONE {
                        cheap[j] = p;
                        row_stack[head] = i;
                        found = true;
                        break 'dfs;
                    }
                }
                cheap[j] = p;
                pos_stack[head] = col_ptr[j];
            }
            // Depth step: descend into the matched column of an
            // unvisited row.
            let mut p = pos_stack[head];
            let mut descended = false;
            while p < col_ptr[j + 1] {
                let i = row_idx[p];
                p += 1;
                if i >= n {
                    continue;
                }
                let jm = jmatch[i];
                if mark[jm] == root {
                    continue;
                }
                pos_stack[head] = p;
                row_stack[head] = i;
                head += 1;
                col_stack[head] = jm;
                descended = true;
                break;
            }
            if descended {
                continue;
            }
            pos_stack[head] = p;
            if head == 0 {
                break; // no augmenting path from this root
            }
            head -= 1;
        }
        if found {
            // Flip the alternating path: each column on the stack
            // takes the row recorded beside it.
            for h in (0..=head).rev() {
                jmatch[row_stack[h]] = col_stack[h];
                imatch[col_stack[h]] = row_stack[h];
            }
        }
    }
    if imatch.contains(&NONE) {
        None
    } else {
        Some(imatch)
    }
}

/// Sorted adjacency of `A + Aᵀ` without the diagonal, with rows
/// relabeled through `row_of` (`row_of[i]` = new label of original row
/// `i`; pass `None` for the identity). Returns `(ptr, idx)` in CSC
/// form (columns keep their original labels).
pub fn symmetrize(
    n: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
    row_of: Option<&[usize]>,
) -> (Vec<usize>, Vec<usize>) {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for p in col_ptr[j]..col_ptr[j + 1] {
            let mut i = row_idx[p];
            if i >= n {
                continue;
            }
            if let Some(map) = row_of {
                i = map[i];
            }
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut ptr = Vec::with_capacity(n + 1);
    ptr.push(0usize);
    let mut idx = Vec::new();
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
        idx.extend_from_slice(list);
        ptr.push(idx.len());
    }
    (ptr, idx)
}

/// Relabels a symmetric adjacency (`ptr`/`idx` from [`symmetrize`])
/// through the permutation `perm` (`perm[k]` = old label at new
/// position `k`), keeping each list sorted.
pub fn permute_sym(
    n: usize,
    ptr: &[usize],
    idx: &[usize],
    perm: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    let mut inv = vec![0usize; n];
    for (k, &p) in perm.iter().enumerate() {
        inv[p] = k;
    }
    let mut out_ptr = Vec::with_capacity(n + 1);
    out_ptr.push(0usize);
    let mut out_idx = Vec::with_capacity(idx.len());
    let mut buf: Vec<usize> = Vec::new();
    for k in 0..n {
        let old = perm[k];
        buf.clear();
        buf.extend(idx[ptr[old]..ptr[old + 1]].iter().map(|&i| inv[i]));
        buf.sort_unstable();
        out_idx.extend_from_slice(&buf);
        out_ptr.push(out_idx.len());
    }
    (out_ptr, out_idx)
}

/// Liu's elimination tree of a symmetric pattern (sorted adjacency
/// from [`symmetrize`]): `parent[j]` is the etree parent of column
/// `j`, [`NONE`] for roots. Uses path compression (`ancestor`), so the
/// whole pass is effectively `O(nnz·α(n))`.
pub fn etree(n: usize, ptr: &[usize], idx: &[usize]) -> Vec<usize> {
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for j in 0..n {
        for &i in &idx[ptr[j]..ptr[j + 1]] {
            if i >= j {
                break; // sorted lists: only the lower part matters
            }
            // Climb from i to the root of its current subtree,
            // compressing the path to j.
            let mut k = i;
            while ancestor[k] != NONE && ancestor[k] != j {
                let next = ancestor[k];
                ancestor[k] = j;
                k = next;
            }
            if ancestor[k] == NONE {
                ancestor[k] = j;
                parent[k] = j;
            }
        }
    }
    parent
}

/// Deterministic depth-first postorder of a forest given as a parent
/// array: returns `post` with `post[k]` = the node visited at position
/// `k`. Children are visited in increasing node order, so equal trees
/// always produce equal postorders.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Child lists, built in reverse so popping yields ascending order.
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    let mut roots: Vec<usize> = Vec::new();
    for j in (0..n).rev() {
        let p = parent[j];
        if p == NONE {
            roots.push(j);
        } else {
            next[j] = head[p];
            head[p] = j;
        }
    }
    roots.reverse(); // ascending root order after the reverse push
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for &r in roots.iter().rev() {
        stack.push((r, false));
    }
    while let Some((node, expanded)) = stack.pop() {
        if expanded {
            post.push(node);
            continue;
        }
        stack.push((node, true));
        // Push children in reverse-ascending order so the smallest is
        // processed first.
        let mut kids = Vec::new();
        let mut c = head[node];
        while c != NONE {
            kids.push(c);
            c = next[c];
        }
        for &k in kids.iter().rev() {
            stack.push((k, false));
        }
    }
    post
}

/// Per-column nonzero counts of the Cholesky-symbolic factor `L`
/// (including the diagonal) of a symmetric pattern with elimination
/// tree `parent`: for each row `i`, every column on the walk from a
/// below-diagonal entry up the tree to `i` gains one stored entry.
/// `O(nnz(L))` total — this is the counting pass that replaces the
/// scalar LU's per-column reachability DFS.
pub fn col_counts(n: usize, ptr: &[usize], idx: &[usize], parent: &[usize]) -> Vec<usize> {
    let mut counts = vec![1usize; n]; // diagonal
    let mut mark = vec![NONE; n];
    for i in 0..n {
        mark[i] = i;
        for &j0 in &idx[ptr[i]..ptr[i + 1]] {
            if j0 >= i {
                break;
            }
            let mut j = j0;
            while j != NONE && j < i && mark[j] != i {
                counts[j] += 1;
                mark[j] = i;
                j = parent[j];
            }
        }
    }
    counts
}

/// Exact per-column nonzero counts of the LU factors under static
/// diagonal pivoting of an unsymmetric pattern (typically the
/// row-matched, fill-ordered permutation of `A`): returns
/// `(lcnt, ucnt)`, both including the diagonal, so the exact factor
/// size is `Σ lcnt + Σ ucnt − n`.
///
/// This is a symbolic Gilbert–Peierls pass with Eisenstat–Liu
/// symmetric pruning: column `j`'s structure is the reachability of
/// `A(:,j)` through the graph of already-computed `L` columns, and a
/// column whose `(L(j,k), U(k,j))` pair is structurally symmetric has
/// its search list truncated at `j` (anything deeper is reachable
/// through `j`). On (near-)symmetric patterns the pruned lists
/// collapse toward the elimination tree, so the whole pass runs in
/// `O(nnz(L)+nnz(U))` with working memory near `O(nnz(A))` — cheap
/// enough to run inside every supernodal analysis, where it replaces
/// the `A+Aᵀ` overestimate in amalgamation decisions and gives the
/// exact fill the stats report.
///
/// Rows out of range are ignored; a structurally-zero diagonal is
/// tolerated (it still counts as stored — the numeric phase decides
/// singularity).
pub fn lu_col_counts(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut lcnt = vec![1usize; n];
    let mut ucnt = vec![1usize; n];
    // Pruned search list per computed column: its L rows (> column),
    // in DFS discovery order, truncated by symmetric pruning. One flat
    // arena instead of per-column Vecs — truncation just shrinks
    // `llen`, and the hot DFS loop never allocates.
    let mut arena: Vec<u32> = Vec::with_capacity(row_idx.len().max(16));
    let mut lstart = vec![0usize; n];
    let mut llen = vec![0u32; n];
    let mut pruned = vec![false; n];
    let mut mark = vec![NONE; n];
    let mut snode: Vec<u32> = Vec::new();
    let mut spos: Vec<u32> = Vec::new();
    let mut ureach: Vec<u32> = Vec::new();
    let mut lrows: Vec<u32> = Vec::new();
    for j in 0..n {
        mark[j] = j;
        lrows.clear();
        ureach.clear();
        for p in col_ptr[j]..col_ptr[j + 1].min(row_idx.len()) {
            let i0 = row_idx[p];
            if i0 >= n || mark[i0] == j {
                continue;
            }
            mark[i0] = j;
            if i0 > j {
                lrows.push(i0 as u32);
                continue;
            }
            ureach.push(i0 as u32);
            snode.push(i0 as u32);
            spos.push(0);
            while let Some(&i) = snode.last() {
                let i = i as usize;
                let pos = *spos.last().expect("stacks in sync") as usize;
                let list = &arena[lstart[i]..lstart[i] + llen[i] as usize];
                let mut q = pos;
                let mut descended = false;
                while q < list.len() {
                    let c = list[q] as usize;
                    q += 1;
                    if mark[c] == j {
                        continue;
                    }
                    mark[c] = j;
                    if c > j {
                        lrows.push(c as u32);
                        continue;
                    }
                    if c < j {
                        ureach.push(c as u32);
                        *spos.last_mut().expect("stacks in sync") = q as u32;
                        snode.push(c as u32);
                        spos.push(0);
                        descended = true;
                        break;
                    }
                }
                if !descended {
                    snode.pop();
                    spos.pop();
                }
            }
        }
        lcnt[j] += lrows.len();
        ucnt[j] += ureach.len();
        // Symmetric pruning: for each U entry (k, j), if column k also
        // holds row j (a symmetric L partner), everything in k's list
        // beyond j is reachable through j — truncate. One scan per
        // still-unpruned k.
        for &ku in ureach.iter() {
            let k = ku as usize;
            if pruned[k] {
                continue;
            }
            let list = &mut arena[lstart[k]..lstart[k] + llen[k] as usize];
            if list.iter().any(|&r| r as usize == j) {
                let mut keep = 0usize;
                for q in 0..list.len() {
                    let r = list[q];
                    if (r as usize) <= j {
                        list[keep] = r;
                        keep += 1;
                    }
                }
                llen[k] = keep as u32;
                pruned[k] = true;
            }
        }
        lstart[j] = arena.len();
        llen[j] = lrows.len() as u32;
        arena.extend_from_slice(&lrows);
    }
    (lcnt, ucnt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 11-node pattern from Davis' "Direct Methods" Fig. 4.2
    /// (0-based): a standard etree reference.
    fn davis_pattern() -> (usize, Vec<usize>, Vec<usize>) {
        let n = 11;
        let lower: &[(usize, usize)] = &[
            (5, 0),
            (6, 0),
            (2, 1),
            (7, 1),
            (8, 2),
            (9, 2),
            (5, 3),
            (9, 3),
            (7, 4),
            (10, 4),
            (6, 5),
            (8, 5),
            (7, 6),
            (9, 6),
            (10, 7),
            (9, 8),
            (10, 9),
        ];
        let mut triplets: Vec<(usize, usize)> = Vec::new();
        for &(i, j) in lower {
            triplets.push((i, j));
            triplets.push((j, i));
        }
        triplets.sort_unstable_by_key(|&(i, j)| (j, i));
        let mut ptr = vec![0usize; n + 1];
        let mut idx = Vec::new();
        for &(i, j) in &triplets {
            ptr[j + 1] += 1;
            idx.push(i);
        }
        for j in 0..n {
            ptr[j + 1] += ptr[j];
        }
        (n, ptr, idx)
    }

    #[test]
    fn etree_matches_reference() {
        let (n, ptr, idx) = davis_pattern();
        let parent = etree(n, &ptr, &idx);
        // Reference parents for this pattern (computed by hand via
        // the defining rule: parent[j] = min{i > j : L[i,j] ≠ 0}).
        assert_eq!(parent[0], 5);
        assert_eq!(parent[1], 2);
        assert_eq!(parent[2], 7);
        assert_eq!(parent[3], 5);
        assert_eq!(parent[4], 7);
        assert_eq!(parent[5], 6);
        assert_eq!(parent[6], 7);
        assert_eq!(parent[7], 8);
        assert_eq!(parent[8], 9);
        assert_eq!(parent[9], 10);
        assert_eq!(parent[10], NONE);
    }

    #[test]
    fn postorder_is_a_permutation_with_children_first() {
        let (n, ptr, idx) = davis_pattern();
        let parent = etree(n, &ptr, &idx);
        let post = postorder(&parent);
        assert!(crate::ordering::is_permutation(&post, n));
        // Every node appears after all of its children.
        let mut pos = vec![0usize; n];
        for (k, &j) in post.iter().enumerate() {
            pos[j] = k;
        }
        for j in 0..n {
            if parent[j] != NONE {
                assert!(pos[j] < pos[parent[j]], "child {j} after parent");
            }
        }
    }

    #[test]
    fn col_counts_match_brute_force_symbolic() {
        let (n, ptr, idx) = davis_pattern();
        let parent = etree(n, &ptr, &idx);
        let counts = col_counts(n, &ptr, &idx, &parent);
        // Brute-force symbolic Cholesky: struct(j) = adj(j) ∪
        // (children structs minus their diagonal).
        let mut structs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            let mut s: Vec<usize> = idx[ptr[j]..ptr[j + 1]]
                .iter()
                .copied()
                .filter(|&i| i > j)
                .collect();
            s.push(j);
            for c in 0..j {
                if parent[c] == j {
                    s.extend(structs[c].iter().copied().filter(|&i| i > j));
                }
            }
            s.sort_unstable();
            s.dedup();
            structs[j] = s;
        }
        for j in 0..n {
            assert_eq!(counts[j], structs[j].len(), "column {j}");
        }
    }

    #[test]
    fn transversal_fixes_zero_diagonals() {
        // MNA-ish saddle: node 2 is a branch row with no diagonal.
        //   [ x . x ]
        //   [ . x x ]
        //   [ x x . ]
        let col_ptr = vec![0, 2, 4, 6];
        let row_idx = vec![0, 2, 1, 2, 0, 1];
        let m = max_transversal(3, &col_ptr, &row_idx).expect("structurally nonsingular");
        // Every column matched to a distinct row with an entry there.
        let mut seen = [false; 3];
        for j in 0..3 {
            let r = m[j];
            assert!(!seen[r]);
            seen[r] = true;
            assert!(
                (col_ptr[j]..col_ptr[j + 1]).any(|p| row_idx[p] == r),
                "column {j} matched to structurally-zero row {r}"
            );
        }
    }

    #[test]
    fn transversal_reports_structural_singularity() {
        // Column 1 is empty: no perfect matching.
        let col_ptr = vec![0, 2, 2];
        let row_idx = vec![0, 1];
        assert!(max_transversal(2, &col_ptr, &row_idx).is_none());
        // Two columns sharing a single row: also singular.
        let col_ptr = vec![0, 1, 2];
        let row_idx = vec![0, 0];
        assert!(max_transversal(2, &col_ptr, &row_idx).is_none());
    }

    #[test]
    fn transversal_is_identity_when_diagonal_is_full() {
        let n = 6;
        let mut ptr = vec![0usize];
        let mut idx = Vec::new();
        for j in 0..n {
            idx.push(j);
            if j + 1 < n {
                idx.push(j + 1);
            }
            ptr.push(idx.len());
        }
        let m = max_transversal(n, &ptr, &idx).unwrap();
        assert_eq!(m, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn permute_sym_round_trips() {
        let (n, ptr, idx) = davis_pattern();
        let perm: Vec<usize> = (0..n).rev().collect();
        let (p2, i2) = permute_sym(n, &ptr, &idx, &perm);
        let (p3, i3) = permute_sym(n, &p2, &i2, &perm);
        assert_eq!(p3, ptr);
        assert_eq!(i3, idx);
    }

    /// Brute-force dense symbolic LU with static diagonal pivots: the
    /// oracle for `lu_col_counts`.
    fn dense_lu_counts(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mut m = vec![vec![false; n]; n];
        for j in 0..n {
            m[j][j] = true;
            for p in col_ptr[j]..col_ptr[j + 1] {
                m[row_idx[p]][j] = true;
            }
        }
        for k in 0..n {
            for i in k + 1..n {
                if m[i][k] {
                    for l in k + 1..n {
                        if m[k][l] {
                            m[i][l] = true;
                        }
                    }
                }
            }
        }
        let mut lcnt = vec![0usize; n];
        let mut ucnt = vec![0usize; n];
        for j in 0..n {
            for i in 0..n {
                if m[i][j] {
                    if i >= j {
                        lcnt[j] += 1;
                    }
                    if i <= j {
                        ucnt[j] += 1;
                    }
                }
            }
        }
        (lcnt, ucnt)
    }

    fn with_diagonal(n: usize, ptr: &[usize], idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mut cp = vec![0usize];
        let mut ri = Vec::new();
        for j in 0..n {
            let mut rows: Vec<usize> = idx[ptr[j]..ptr[j + 1]].to_vec();
            rows.push(j);
            rows.sort_unstable();
            rows.dedup();
            ri.extend(rows);
            cp.push(ri.len());
        }
        (cp, ri)
    }

    #[test]
    fn lu_counts_match_dense_oracle_on_davis() {
        let (n, ptr, idx) = davis_pattern();
        let (cp, ri) = with_diagonal(n, &ptr, &idx);
        let (lcnt, ucnt) = lu_col_counts(n, &cp, &ri);
        let (dl, du) = dense_lu_counts(n, &cp, &ri);
        assert_eq!(lcnt, dl);
        assert_eq!(ucnt, du);
        // The pattern is symmetric, so U = Lᵀ structurally: the column
        // counts of L equal the Cholesky counts from the etree
        // pipeline, and U holds the same total (per-column counts
        // differ — U's columns are L's rows).
        let parent = etree(n, &ptr, &idx);
        let counts = col_counts(n, &ptr, &idx, &parent);
        assert_eq!(lcnt, counts);
        assert_eq!(lcnt.iter().sum::<usize>(), ucnt.iter().sum::<usize>());
    }

    #[test]
    fn lu_counts_match_dense_oracle_on_random_unsymmetric() {
        // Deterministic LCG patterns, full diagonal, deliberately
        // unsymmetric: the exact counts must match brute force.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for &n in &[1usize, 7, 19, 41] {
            let mut cp = vec![0usize];
            let mut ri = Vec::new();
            for j in 0..n {
                let mut rows = vec![j];
                for _ in 0..3 {
                    rows.push(rng() % n);
                }
                rows.sort_unstable();
                rows.dedup();
                ri.extend(rows);
                cp.push(ri.len());
            }
            let (lcnt, ucnt) = lu_col_counts(n, &cp, &ri);
            let (dl, du) = dense_lu_counts(n, &cp, &ri);
            assert_eq!(lcnt, dl, "L counts diverge at n={n}");
            assert_eq!(ucnt, du, "U counts diverge at n={n}");
        }
    }

    #[test]
    fn lu_counts_tolerate_missing_diagonal_and_out_of_range_rows() {
        // Column 1 has no diagonal; column 0 carries an out-of-range
        // row. Counts still include the (implicit) diagonal slot.
        let cp = vec![0usize, 3, 4];
        let ri = vec![0, 1, 9, 0];
        let (lcnt, ucnt) = lu_col_counts(2, &cp, &ri);
        assert_eq!(lcnt, vec![2, 1]);
        assert_eq!(ucnt, vec![1, 2]);
    }
}
