//! LU factorization with partial pivoting, generic over [`Scalar`].
//!
//! This is the workhorse linear solver of the SPICE substrate: the
//! Newton loop refactors the Jacobian each iteration and solves for
//! the update, both in real arithmetic (DC/transient) and complex
//! arithmetic (AC).

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;
use crate::{NumericsError, Result};

/// The factors `P·A = L·U` of a square matrix.
#[derive(Debug, Clone)]
pub struct LuFactors<S: Scalar = f64> {
    lu: DenseMatrix<S>,
    perm: Vec<usize>,
    /// Sign of the permutation (`+1` or `-1`), used by [`det`](Self::det).
    perm_sign: f64,
}

impl<S: Scalar> LuFactors<S> {
    /// Factors `a` in place-copy with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Singular`] when no usable pivot exists
    /// in a column, and [`NumericsError::InvalidInput`] for non-square
    /// input.
    pub fn factor(a: &DenseMatrix<S>) -> Result<Self> {
        if !a.is_square() {
            return Err(NumericsError::InvalidInput(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Pivot search on column k.
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].modulus();
            for i in (k + 1)..n {
                let mag = lu[(i, k)].modulus();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if !(pivot_mag > 0.0) || !pivot_mag.is_finite() {
                return Err(NumericsError::Singular { index: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == S::zero() {
                    continue;
                }
                for j in (k + 1)..n {
                    let delta = m * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(LuFactors {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when `b` has the
    /// wrong length.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        let n = self.order();
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Apply permutation: y = P·b.
        let mut x: Vec<S> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution L·y = P·b (unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution U·x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves with one step of iterative refinement against the
    /// original matrix `a` (cheap and often worth a digit or two).
    pub fn solve_refined(&self, a: &DenseMatrix<S>, b: &[S]) -> Result<Vec<S>> {
        let mut x = self.solve(b)?;
        let ax = a.mul_vec(&x)?;
        let r: Vec<S> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        let dx = self.solve(&r)?;
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += *di;
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> S {
        let mut d = S::from_f64(self.perm_sign);
        for i in 0..self.order() {
            d = d * self.lu[(i, i)];
        }
        d
    }

    /// A cheap condition estimate: `max|u_ii| / min|u_ii|`.
    ///
    /// This is not a rigorous condition number but flags pathological
    /// pivoting well enough to trigger gmin stepping in the simulator.
    pub fn pivot_growth(&self) -> f64 {
        let mut mx = 0.0f64;
        let mut mn = f64::INFINITY;
        for i in 0..self.order() {
            let m = self.lu[(i, i)].modulus();
            mx = mx.max(m);
            mn = mn.min(m);
        }
        if mn == 0.0 {
            f64::INFINITY
        } else {
            mx / mn
        }
    }
}

/// One-shot dense solve `A·x = b`.
///
/// # Errors
///
/// Propagates factorization and dimension errors.
pub fn solve_dense<S: Scalar>(a: &DenseMatrix<S>, b: &[S]) -> Result<Vec<S>> {
    LuFactors::factor(a)?.solve(b)
}

/// Inverts a small dense matrix (used by two-port conversions).
///
/// # Errors
///
/// Returns [`NumericsError::Singular`] for singular input.
pub fn invert<S: Scalar>(a: &DenseMatrix<S>) -> Result<DenseMatrix<S>> {
    let n = a.rows();
    let lu = LuFactors::factor(a)?;
    let mut inv = DenseMatrix::zeros(n, n);
    let mut e = vec![S::zero(); n];
    for j in 0..n {
        e[j] = S::one();
        let col = lu.solve(&e)?;
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
        e[j] = S::zero();
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::dense::vecops;

    #[test]
    fn solves_small_real_system() {
        let a = DenseMatrix::from_rows(&[
            &[2.0, 1.0, -1.0][..],
            &[-3.0, -1.0, 2.0][..],
            &[-2.0, 1.0, 2.0][..],
        ]);
        let x = solve_dense(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]);
        let x = solve_dense(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]);
        assert!(matches!(
            LuFactors::factor(&a),
            Err(NumericsError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            LuFactors::factor(&a),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]);
        let lu = LuFactors::factor(&a).unwrap();
        assert!((lu.det() - -1.0).abs() < 1e-14);
        let b = DenseMatrix::from_rows(&[&[3.0, 0.0][..], &[0.0, 2.0][..]]);
        assert!((LuFactors::factor(&b).unwrap().det() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn complex_solve_round_trip() {
        let j = Complex64::J;
        let a = DenseMatrix::from_rows(&[
            &[Complex64::new(1.0, 1.0), j][..],
            &[Complex64::new(2.0, -1.0), Complex64::new(0.0, 3.0)][..],
        ]);
        let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let x = solve_dense(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((*axi - *bi).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, 7.0, 1.0][..],
            &[2.0, 6.0, -3.0][..],
            &[0.5, 1.0, 9.0][..],
        ]);
        let inv = invert(&a).unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        for i in 0..3 {
            for jj in 0..3 {
                let expect = if i == jj { 1.0 } else { 0.0 };
                assert!((prod[(i, jj)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn refined_solve_no_worse_than_plain() {
        // A mildly ill-conditioned Hilbert-like matrix.
        let n = 6;
        let a = DenseMatrix::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64));
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let lu = LuFactors::factor(&a).unwrap();
        let x0 = lu.solve(&b).unwrap();
        let x1 = lu.solve_refined(&a, &b).unwrap();
        let e0 = vecops::norm2(&vecops::sub(&x0, &x_true));
        let e1 = vecops::norm2(&vecops::sub(&x1, &x_true));
        assert!(e1 <= e0 * 10.0, "refinement degraded: {e0} -> {e1}");
    }

    #[test]
    fn pivot_growth_flags_near_singular() {
        let good = DenseMatrix::<f64>::identity(3);
        assert!(LuFactors::factor(&good).unwrap().pivot_growth() < 10.0);
        let bad = DenseMatrix::from_rows(&[&[1.0, 1.0][..], &[1.0, 1.0 + 1e-13][..]]);
        assert!(LuFactors::factor(&bad).unwrap().pivot_growth() > 1e10);
    }
}
