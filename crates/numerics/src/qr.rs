//! Householder QR factorization and linear least squares.
//!
//! Used by the polynomial and rational-function fitting in
//! [`crate::poly`] and the PXT harmonic model generation, where normal
//! equations would lose too much precision on Vandermonde-like
//! systems.

use crate::dense::DenseMatrix;
use crate::{NumericsError, Result};

/// Compact Householder QR of an `m × n` matrix with `m ≥ n`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Householder vectors below the diagonal, R on and above it.
    qr: DenseMatrix<f64>,
    /// Scaling factors of the Householder reflectors.
    betas: Vec<f64>,
}

impl QrFactors {
    /// Factors `a` (requires `rows ≥ cols`).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] when `rows < cols` and
    /// [`NumericsError::Singular`] when a column is (numerically)
    /// linearly dependent.
    pub fn factor(a: &DenseMatrix<f64>) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(NumericsError::InvalidInput(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Norm of the k-th column below the diagonal.
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                return Err(NumericsError::Singular { index: k });
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha·e1, stored in the column.
            qr[(k, k)] -= alpha;
            // beta = 2 / (vᵀv); vᵀv = 2·norm·(norm + |x_k|) but compute directly.
            let mut vtv = 0.0;
            for i in k..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            if vtv == 0.0 {
                return Err(NumericsError::Singular { index: k });
            }
            let beta = 2.0 / vtv;
            betas[k] = beta;
            // Apply reflector to remaining columns.
            for j in (k + 1)..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let s = beta * dot;
                for i in k..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            // Store R's diagonal entry where the reflector freed it:
            // we keep v in the strictly-lower part and remember alpha.
            // Pack alpha temporarily: R(k,k) = alpha is written after
            // the loop by swapping storage — use betas-free approach:
            // keep v_k in a scratch and place alpha now.
            let vkk = qr[(k, k)];
            qr[(k, k)] = alpha;
            // Move v_k into the "betas" encoding: we re-derive v_k from
            // alpha and the original entry is lost, so stash it by
            // scaling the rest of v. Normalize v so v_k = 1.
            if vkk != 0.0 {
                for i in (k + 1)..m {
                    qr[(i, k)] /= vkk;
                }
                betas[k] = beta * vkk * vkk;
            }
        }
        Ok(QrFactors { qr, betas })
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to `b` in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let m = self.rows();
        let n = self.cols();
        for k in 0..n {
            // v = [1, qr[k+1..m, k]]
            let mut dot = b[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * b[i];
            }
            let s = self.betas[k] * dot;
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] for wrong-length
    /// `b` and [`NumericsError::Singular`] if `R` has a zero diagonal.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.rows();
        let n = self.cols();
        if b.len() != m {
            return Err(NumericsError::DimensionMismatch {
                expected: m,
                found: b.len(),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on R (top n×n block).
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d == 0.0 || !d.is_finite() {
                return Err(NumericsError::Singular { index: i });
            }
            x[i] = acc / d;
        }
        Ok(x)
    }

    /// Residual norm of a candidate solution against the original data.
    pub fn residual_norm(a: &DenseMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x).expect("dimension checked by caller");
        ax.iter()
            .zip(b)
            .map(|(axi, bi)| (axi - bi) * (axi - bi))
            .sum::<f64>()
            .sqrt()
    }
}

/// One-shot least squares `min ‖A·x − b‖₂`.
///
/// # Errors
///
/// Propagates factorization errors.
pub fn least_squares(a: &DenseMatrix<f64>, b: &[f64]) -> Result<Vec<f64>> {
    QrFactors::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_agrees_with_lu() {
        let a = DenseMatrix::from_rows(&[
            &[2.0, 1.0, -1.0][..],
            &[-3.0, -1.0, 2.0][..],
            &[-2.0, 1.0, 2.0][..],
        ]);
        let b = [8.0, -11.0, -3.0];
        let x = least_squares(&a, &b).unwrap();
        let lu = crate::lu::solve_dense(&a, &b).unwrap();
        for (q, l) in x.iter().zip(&lu) {
            assert!((q - l).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_line_fit() {
        // Fit y = 2x + 1 through noisy-free points: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = DenseMatrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let c = least_squares(&a, &b).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: check the normal-equation optimality
        // condition Aᵀ(Ax − b) ≈ 0.
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0][..], &[1.0, 1.0][..], &[1.0, 2.0][..]]);
        let b = [1.0, 0.0, 2.0];
        let x = least_squares(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(&b).map(|(axi, bi)| axi - bi).collect();
        let at = a.transpose();
        let atr = at.mul_vec(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-12, "gradient not zero: {v}");
        }
    }

    #[test]
    fn rejects_underdetermined() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            QrFactors::factor(&a),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn rank_deficient_consistent_system_still_satisfies_equations() {
        // Column 2 = 2 × column 1 and b = column 1: the LS solution is
        // non-unique. QR either flags singularity or returns *some*
        // x with A·x ≈ b; both are acceptable contracts.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..], &[3.0, 6.0][..]]);
        let b = [1.0, 2.0, 3.0];
        match QrFactors::factor(&a) {
            Err(NumericsError::Singular { .. }) => {}
            Ok(f) => match f.solve_least_squares(&b) {
                Err(NumericsError::Singular { .. }) => {}
                Ok(x) => {
                    let ax = a.mul_vec(&x).unwrap();
                    for (axi, bi) in ax.iter().zip(&b) {
                        assert!((axi - bi).abs() < 1e-6, "Ax = {ax:?} vs b = {b:?}");
                    }
                }
                Err(e) => panic!("unexpected error {e}"),
            },
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
