//! Polynomials: evaluation, differentiation, least-squares fitting
//! (with domain scaling for conditioning) and Durand–Kerner root
//! finding.
//!
//! The PXT model generator fits `C(x)` and `F(V, x) = V²·p(x)` as
//! polynomials and emits closed-form HDL-A expressions; the rational
//! transfer-function fitter needs denominator roots for stability
//! checking.

use crate::complex::Complex64;
use crate::dense::DenseMatrix;
use crate::qr;
use crate::{NumericsError, Result};

/// A real polynomial in ascending coefficient order:
/// `p(x) = c₀ + c₁·x + … + cₙ·xⁿ`.
///
/// ```
/// use mems_numerics::poly::Polynomial;
/// let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // 1 + x²
/// assert_eq!(p.eval(2.0), 5.0);
/// assert_eq!(p.derivative().eval(2.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Builds a polynomial from ascending coefficients.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![0.0] }
    }

    fn trim(&mut self) {
        while self.coeffs.len() > 1 && self.coeffs.last() == Some(&0.0) {
            self.coeffs.pop();
        }
        if self.coeffs.is_empty() {
            self.coeffs.push(0.0);
        }
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Ascending coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Horner evaluation.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Horner evaluation at a complex point.
    pub fn eval_complex(&self, z: Complex64) -> Complex64 {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &c| acc * z + Complex64::from_re(c))
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c * (i as f64 + 1.0))
                .collect(),
        )
    }

    /// Antiderivative with zero constant term.
    pub fn antiderivative(&self) -> Polynomial {
        let mut c = vec![0.0];
        c.extend(
            self.coeffs
                .iter()
                .enumerate()
                .map(|(i, &v)| v / (i as f64 + 1.0)),
        );
        Polynomial::new(c)
    }

    /// All complex roots via Durand–Kerner iteration.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NoConvergence`] if the iteration fails
    /// (rare for the modest degrees used here) and
    /// [`NumericsError::InvalidInput`] for the zero polynomial.
    pub fn roots(&self) -> Result<Vec<Complex64>> {
        let n = self.degree();
        if n == 0 {
            return if self.coeffs[0] == 0.0 {
                Err(NumericsError::InvalidInput(
                    "zero polynomial has indeterminate roots".into(),
                ))
            } else {
                Ok(Vec::new())
            };
        }
        // Monic normalization.
        let lead = self.coeffs[n];
        let monic: Vec<f64> = self.coeffs.iter().map(|c| c / lead).collect();
        let poly = Polynomial { coeffs: monic };
        // Initial guesses on a non-real circle (Aberth-style).
        let radius = 1.0 + poly.coeffs[..n].iter().map(|c| c.abs()).fold(0.0, f64::max);
        let mut z: Vec<Complex64> = (0..n)
            .map(|k| {
                let angle = 2.0 * std::f64::consts::PI * (k as f64) / (n as f64) + 0.4;
                Complex64::from_polar(radius * 0.8, angle)
            })
            .collect();
        let max_iter = 500;
        for it in 0..max_iter {
            let mut max_step = 0.0f64;
            for i in 0..n {
                let mut denom = Complex64::ONE;
                for j in 0..n {
                    if i != j {
                        denom *= z[i] - z[j];
                    }
                }
                if denom.abs() == 0.0 {
                    // Perturb coincident estimates.
                    z[i] += Complex64::new(1e-8, 1e-8);
                    continue;
                }
                let step = poly.eval_complex(z[i]) / denom;
                z[i] -= step;
                max_step = max_step.max(step.abs());
            }
            if max_step < 1e-13 * radius.max(1.0) {
                return Ok(z);
            }
            if it == max_iter - 1 {
                return Err(NumericsError::NoConvergence {
                    iterations: max_iter,
                    residual: max_step,
                });
            }
        }
        unreachable!()
    }
}

/// A polynomial fitted on a scaled domain `u = (x − shift)/scale`,
/// which keeps Vandermonde systems well conditioned.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledPolynomial {
    /// Polynomial in the scaled variable `u`.
    pub poly: Polynomial,
    /// Domain shift (midpoint of the fitted data).
    pub shift: f64,
    /// Domain scale (half-width of the fitted data).
    pub scale: f64,
}

impl ScaledPolynomial {
    /// Evaluates at an unscaled point.
    pub fn eval(&self, x: f64) -> f64 {
        self.poly.eval((x - self.shift) / self.scale)
    }

    /// Derivative with respect to the unscaled variable.
    pub fn deriv(&self, x: f64) -> f64 {
        self.poly.derivative().eval((x - self.shift) / self.scale) / self.scale
    }

    /// Expands into an unscaled-variable [`Polynomial`].
    ///
    /// Only sensible for modest degrees (used by code generation to
    /// print closed-form expressions).
    pub fn expand(&self) -> Polynomial {
        // Compose p((x - shift)/scale) by repeated synthetic substitution.
        let mut result = Polynomial::zero();
        // powers of (x - shift)/scale built iteratively.
        let base = Polynomial::new(vec![-self.shift / self.scale, 1.0 / self.scale]);
        let mut pow = Polynomial::new(vec![1.0]);
        for &c in self.poly.coeffs() {
            let term: Vec<f64> = pow.coeffs().iter().map(|v| v * c).collect();
            result = poly_add(&result, &Polynomial::new(term));
            pow = poly_mul(&pow, &base);
        }
        result
    }
}

/// Adds two polynomials.
pub fn poly_add(a: &Polynomial, b: &Polynomial) -> Polynomial {
    let n = a.coeffs().len().max(b.coeffs().len());
    let mut c = vec![0.0; n];
    for (i, &v) in a.coeffs().iter().enumerate() {
        c[i] += v;
    }
    for (i, &v) in b.coeffs().iter().enumerate() {
        c[i] += v;
    }
    Polynomial::new(c)
}

/// Multiplies two polynomials.
pub fn poly_mul(a: &Polynomial, b: &Polynomial) -> Polynomial {
    let mut c = vec![0.0; a.coeffs().len() + b.coeffs().len() - 1];
    for (i, &ai) in a.coeffs().iter().enumerate() {
        for (j, &bj) in b.coeffs().iter().enumerate() {
            c[i + j] += ai * bj;
        }
    }
    Polynomial::new(c)
}

/// Least-squares fits a degree-`deg` polynomial through `(x, y)` data
/// on a scaled domain.
///
/// # Errors
///
/// - [`NumericsError::InvalidInput`] when there are fewer points than
///   coefficients or the x-range is degenerate;
/// - factorization errors from the QR solve.
pub fn polyfit(xs: &[f64], ys: &[f64], deg: usize) -> Result<ScaledPolynomial> {
    if xs.len() != ys.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: xs.len(),
            found: ys.len(),
        });
    }
    if xs.len() < deg + 1 {
        return Err(NumericsError::InvalidInput(format!(
            "need at least {} points for degree {deg}, got {}",
            deg + 1,
            xs.len()
        )));
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let shift = 0.5 * (lo + hi);
    let scale = if hi > lo { 0.5 * (hi - lo) } else { 1.0 };
    if deg > 0 && hi == lo {
        return Err(NumericsError::InvalidInput(
            "degenerate x-range for polynomial fit".into(),
        ));
    }
    let a = DenseMatrix::from_fn(xs.len(), deg + 1, |i, j| {
        ((xs[i] - shift) / scale).powi(j as i32)
    });
    let coeffs = qr::least_squares(&a, ys)?;
    Ok(ScaledPolynomial {
        poly: Polynomial::new(coeffs),
        shift,
        scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_derivative() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]); // 1 - 2x + 3x²
        assert_eq!(p.eval(2.0), 9.0);
        assert_eq!(p.derivative().coeffs(), &[-2.0, 6.0]);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn antiderivative_inverts_derivative() {
        let p = Polynomial::new(vec![2.0, 6.0, 12.0]);
        let ad = p.antiderivative();
        assert_eq!(ad.derivative(), p);
    }

    #[test]
    fn trim_removes_leading_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.coeffs(), &[0.0]);
    }

    #[test]
    fn polyfit_recovers_exact_cubic() {
        let xs: Vec<f64> = (0..20).map(|i| 1.0 + 0.05 * i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 0.5 - x + 2.0 * x * x - 0.25 * x * x * x)
            .collect();
        let fit = polyfit(&xs, &ys, 3).unwrap();
        for &x in &xs {
            assert!((fit.eval(x) - (0.5 - x + 2.0 * x * x - 0.25 * x * x * x)).abs() < 1e-10);
        }
        // Derivative of the fit matches analytic derivative.
        let x = 1.3;
        let d_true = -1.0 + 4.0 * x - 0.75 * x * x;
        assert!((fit.deriv(x) - d_true).abs() < 1e-8);
    }

    #[test]
    fn expanded_polynomial_matches_scaled_eval() {
        let xs: Vec<f64> = (0..10).map(|i| -2.0 + 0.5 * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 3.0 * x - 0.5 * x * x).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        let expanded = fit.expand();
        for &x in &xs {
            assert!((expanded.eval(x) - fit.eval(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn polyfit_on_microscale_domain_is_well_conditioned() {
        // Displacements are ~1e-8 m: raw Vandermonde would be abysmal.
        let xs: Vec<f64> = (0..15).map(|i| 1e-8 * (i as f64 - 7.0)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5e-12 * (1.0 + x / 1.5e-4)).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((fit.eval(x) - y).abs() < y.abs() * 1e-9);
        }
    }

    #[test]
    fn polyfit_rejects_insufficient_points() {
        assert!(matches!(
            polyfit(&[1.0, 2.0], &[1.0, 2.0], 2),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn roots_of_quadratic() {
        // (x-2)(x+3) = x² + x − 6
        let p = Polynomial::new(vec![-6.0, 1.0, 1.0]);
        let mut roots = p.roots().unwrap();
        roots.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        assert!((roots[0].re - -3.0).abs() < 1e-9 && roots[0].im.abs() < 1e-9);
        assert!((roots[1].re - 2.0).abs() < 1e-9 && roots[1].im.abs() < 1e-9);
    }

    #[test]
    fn roots_of_complex_pair() {
        // x² + 1 → ±j
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let roots = p.roots().unwrap();
        for r in &roots {
            assert!(r.re.abs() < 1e-9);
            assert!((r.im.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn roots_of_damped_resonator_denominator() {
        // m s² + α s + k with Table-4 values: poles in the left half plane.
        let (m, alpha, k) = (1e-4, 40e-3, 200.0);
        let p = Polynomial::new(vec![k, alpha, m]);
        let roots = p.roots().unwrap();
        assert_eq!(roots.len(), 2);
        for r in &roots {
            assert!(r.re < 0.0, "pole {r} not stable");
            // |im| ≈ ω_d = sqrt(k/m - (α/2m)²)
            let wd = (k / m - (alpha / (2.0 * m)).powi(2)).sqrt();
            assert!((r.im.abs() - wd).abs() < wd * 1e-6);
        }
    }

    #[test]
    fn poly_mul_and_add() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        assert_eq!(poly_mul(&a, &b).coeffs(), &[-1.0, 0.0, 1.0]);
        assert_eq!(poly_add(&a, &b).coeffs(), &[0.0, 2.0]);
    }
}
