//! Scalar forward-mode dual numbers.
//!
//! The HDL interpreter uses its own vector-gradient duals (it needs a
//! gradient per circuit unknown); this scalar version backs the energy
//! methodology (∂W/∂state → effort) and the test suites that verify
//! symbolic derivatives against automatic ones.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A first-order dual number `v + ε·d` with `ε² = 0`.
///
/// ```
/// use mems_numerics::Dual64;
/// // d/dx of x² at x = 3 is 6.
/// let x = Dual64::variable(3.0);
/// let y = x * x;
/// assert_eq!(y.deriv(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual64 {
    v: f64,
    d: f64,
}

impl Dual64 {
    /// A constant (zero derivative).
    pub fn constant(v: f64) -> Self {
        Dual64 { v, d: 0.0 }
    }

    /// The differentiation variable (unit derivative).
    pub fn variable(v: f64) -> Self {
        Dual64 { v, d: 1.0 }
    }

    /// Creates a dual with explicit parts.
    pub fn new(v: f64, d: f64) -> Self {
        Dual64 { v, d }
    }

    /// The value part.
    pub fn value(self) -> f64 {
        self.v
    }

    /// The derivative part.
    pub fn deriv(self) -> f64 {
        self.d
    }

    /// Applies a scalar function with known derivative (chain rule).
    pub fn lift(self, f: f64, df: f64) -> Self {
        Dual64 {
            v: f,
            d: df * self.d,
        }
    }

    /// Natural exponential.
    pub fn exp(self) -> Self {
        let e = self.v.exp();
        self.lift(e, e)
    }

    /// Natural logarithm.
    pub fn ln(self) -> Self {
        self.lift(self.v.ln(), 1.0 / self.v)
    }

    /// Square root.
    pub fn sqrt(self) -> Self {
        let s = self.v.sqrt();
        self.lift(s, 0.5 / s)
    }

    /// Sine.
    pub fn sin(self) -> Self {
        self.lift(self.v.sin(), self.v.cos())
    }

    /// Cosine.
    pub fn cos(self) -> Self {
        self.lift(self.v.cos(), -self.v.sin())
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Self {
        let t = self.v.tanh();
        self.lift(t, 1.0 - t * t)
    }

    /// Real power with constant exponent.
    pub fn powf(self, p: f64) -> Self {
        self.lift(self.v.powf(p), p * self.v.powf(p - 1.0))
    }

    /// Integer power.
    pub fn powi(self, p: i32) -> Self {
        self.lift(self.v.powi(p), f64::from(p) * self.v.powi(p - 1))
    }

    /// Absolute value (derivative is the sign; zero at the kink).
    pub fn abs(self) -> Self {
        self.lift(
            self.v.abs(),
            self.v.signum() * if self.v == 0.0 { 0.0 } else { 1.0 },
        )
    }

    /// Reciprocal.
    pub fn recip(self) -> Self {
        self.lift(1.0 / self.v, -1.0 / (self.v * self.v))
    }
}

impl Add for Dual64 {
    type Output = Dual64;
    fn add(self, rhs: Dual64) -> Dual64 {
        Dual64::new(self.v + rhs.v, self.d + rhs.d)
    }
}

impl Sub for Dual64 {
    type Output = Dual64;
    fn sub(self, rhs: Dual64) -> Dual64 {
        Dual64::new(self.v - rhs.v, self.d - rhs.d)
    }
}

impl Mul for Dual64 {
    type Output = Dual64;
    fn mul(self, rhs: Dual64) -> Dual64 {
        Dual64::new(self.v * rhs.v, self.v * rhs.d + self.d * rhs.v)
    }
}

impl Div for Dual64 {
    type Output = Dual64;
    fn div(self, rhs: Dual64) -> Dual64 {
        Dual64::new(
            self.v / rhs.v,
            (self.d * rhs.v - self.v * rhs.d) / (rhs.v * rhs.v),
        )
    }
}

impl Neg for Dual64 {
    type Output = Dual64;
    fn neg(self) -> Dual64 {
        Dual64::new(-self.v, -self.d)
    }
}

impl Add<f64> for Dual64 {
    type Output = Dual64;
    fn add(self, rhs: f64) -> Dual64 {
        Dual64::new(self.v + rhs, self.d)
    }
}

impl Mul<f64> for Dual64 {
    type Output = Dual64;
    fn mul(self, rhs: f64) -> Dual64 {
        Dual64::new(self.v * rhs, self.d * rhs)
    }
}

impl Sub<f64> for Dual64 {
    type Output = Dual64;
    fn sub(self, rhs: f64) -> Dual64 {
        Dual64::new(self.v - rhs, self.d)
    }
}

impl Div<f64> for Dual64 {
    type Output = Dual64;
    fn div(self, rhs: f64) -> Dual64 {
        Dual64::new(self.v / rhs, self.d / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6 * x.abs().max(1.0);
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn arithmetic_derivatives_match_finite_differences() {
        let x0 = 1.37;
        let f = |x: f64| (x * x + 3.0 * x) / (x - 0.5);
        let fx = |x: Dual64| (x * x + x * 3.0) / (x - 0.5);
        let d = fx(Dual64::variable(x0));
        assert!((d.value() - f(x0)).abs() < 1e-12);
        assert!((d.deriv() - fd(f, x0)).abs() < 1e-5);
    }

    #[test]
    fn transcendental_chain_rule() {
        let x0 = 0.8;
        let f = |x: f64| (x.sin() * x.exp()).sqrt();
        let fx = |x: Dual64| (x.sin() * x.exp()).sqrt();
        let d = fx(Dual64::variable(x0));
        assert!((d.deriv() - fd(f, x0)).abs() < 1e-6);
    }

    #[test]
    fn electrostatic_energy_derivative() {
        // W(x) = k/(d + x): dW/dx = -k/(d+x)² — the shape of Table 2a.
        let k = 2.5e-16;
        let dgap = 1.5e-4;
        let x0 = 1e-5;
        let w = |x: Dual64| Dual64::constant(k) / (x + dgap);
        let d = w(Dual64::variable(x0));
        let expect = -k / ((dgap + x0) * (dgap + x0));
        assert!((d.deriv() - expect).abs() < expect.abs() * 1e-12);
    }

    #[test]
    fn powers() {
        let d = Dual64::variable(2.0).powi(3);
        assert_eq!(d.value(), 8.0);
        assert_eq!(d.deriv(), 12.0);
        let d = Dual64::variable(4.0).powf(0.5);
        assert!((d.deriv() - 0.25).abs() < 1e-14);
    }

    #[test]
    fn constants_have_zero_derivative() {
        let c = Dual64::constant(5.0);
        let x = Dual64::variable(2.0);
        assert_eq!((c * x).deriv(), 5.0);
        assert_eq!((c + c).deriv(), 0.0);
    }
}
