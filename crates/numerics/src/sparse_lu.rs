//! Sparse LU factorization with split symbolic/numeric phases.
//!
//! A left-looking Gilbert–Peierls factorization with threshold partial
//! pivoting over compressed-sparse-column input. The first call to
//! [`SparseLu::factor`] performs the full symbolic analysis (fill
//! pattern discovery by depth-first reachability) together with the
//! numeric elimination; [`SparseLu::refactor`] then re-runs the
//! numeric phase only, replaying the recorded pattern and pivot
//! sequence against new values on the *same* sparsity pattern. This is
//! the classic SPICE-matrix work split: a Newton iteration (or a
//! `.STEP`/`.MC` batch point with identical topology) changes values,
//! not structure, so the expensive reachability analysis is paid once.
//!
//! [`SparseLu::factor_ordered`] additionally accepts a fill-reducing
//! *column* pre-ordering (e.g. [`crate::ordering::amd_order`]):
//! columns are eliminated in the permuted order while the
//! threshold/diagonal-preference row pivoting stays in charge of
//! stability, factoring `P·A·Q = L·U`. [`SparseLu::refactor`] replays
//! whichever order was analyzed.
//!
//! Generic over [`Scalar`], so the same kernel factors the real
//! DC/transient Jacobian and the complex AC system.

use crate::scalar::Scalar;
use crate::sparse::CsrMatrix;
use crate::{NumericsError, Result};

/// Threshold-pivoting tolerance: at factorization the natural
/// diagonal entry is kept as pivot when its magnitude is at least
/// this fraction of the column's best candidate (reduces fill and
/// pivot churn on the diagonally-dominant rows MNA produces), and at
/// [`SparseLu::refactor`] a replayed pivot below this fraction of its
/// column maximum is rejected so the caller re-pivots.
pub const PIVOT_TAU: f64 = 1e-3;

/// A borrowed compressed-sparse-column matrix view.
///
/// Column `j` holds rows `row_idx[col_ptr[j]..col_ptr[j+1]]` with
/// matching `values`; rows within a column need not be sorted.
#[derive(Debug, Clone, Copy)]
pub struct CscView<'a, S: Scalar = f64> {
    /// Matrix order (square).
    pub n: usize,
    /// Column start offsets, length `n + 1`.
    pub col_ptr: &'a [usize],
    /// Row index per stored entry.
    pub row_idx: &'a [usize],
    /// Value per stored entry.
    pub values: &'a [S],
}

impl<'a, S: Scalar> CscView<'a, S> {
    /// Stored entry count.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }
}

const EMPTY: usize = usize::MAX;

/// Sparse LU factors `P·A = L·U` with recorded symbolic structure.
///
/// `L` is unit-lower-triangular (unit diagonal implicit), stored
/// column-wise with *original* row indices; `U` is upper-triangular,
/// stored column-wise with pivot-step indices in elimination replay
/// order, its diagonal kept separately.
#[derive(Debug, Clone)]
pub struct SparseLu<S: Scalar = f64> {
    n: usize,
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<S>,
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<S>,
    udiag: Vec<S>,
    /// `perm[k]` = original row pivoted at elimination step `k`.
    perm: Vec<usize>,
    /// Inverse permutation: `pinv[perm[k]] == k`.
    pinv: Vec<usize>,
    /// Column pre-ordering: `cperm[k]` = original column eliminated at
    /// step `k`. `None` means natural order.
    cperm: Option<Vec<usize>>,
}

impl<S: Scalar> SparseLu<S> {
    /// Full factorization: symbolic analysis + numeric elimination,
    /// eliminating columns in their natural order.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Singular`] when a column has no usable pivot
    /// (structurally or numerically singular), and
    /// [`NumericsError::InvalidInput`] for malformed input.
    pub fn factor(a: &CscView<'_, S>) -> Result<Self> {
        Self::factor_impl(a, None)
    }

    /// [`factor`](Self::factor) with a fill-reducing column
    /// pre-ordering: `col_order[k]` names the original column
    /// eliminated at step `k` (typically
    /// [`crate::ordering::amd_order`] of the pattern). Row pivoting
    /// (threshold + diagonal preference, where "diagonal" means the
    /// original diagonal entry of the eliminated column) is unchanged,
    /// so the ordering trades fill, never stability.
    /// [`refactor`](Self::refactor) and [`solve`](Self::solve)
    /// transparently replay/undo the permutation.
    ///
    /// # Errors
    ///
    /// As [`factor`](Self::factor), plus
    /// [`NumericsError::InvalidInput`] when `col_order` is not a
    /// permutation of `0..n`.
    pub fn factor_ordered(a: &CscView<'_, S>, col_order: &[usize]) -> Result<Self> {
        if !crate::ordering::is_permutation(col_order, a.n) {
            return Err(NumericsError::InvalidInput(format!(
                "column order is not a permutation of 0..{}",
                a.n
            )));
        }
        Self::factor_impl(a, Some(col_order))
    }

    fn factor_impl(a: &CscView<'_, S>, col_order: Option<&[usize]>) -> Result<Self> {
        let n = a.n;
        if a.col_ptr.len() != n + 1 || a.row_idx.len() != a.values.len() {
            return Err(NumericsError::InvalidInput(
                "inconsistent CSC arrays".into(),
            ));
        }
        let nnz = a.nnz();
        let mut f = SparseLu {
            n,
            lp: Vec::with_capacity(n + 1),
            li: Vec::with_capacity(nnz),
            lx: Vec::with_capacity(nnz),
            up: Vec::with_capacity(n + 1),
            ui: Vec::with_capacity(nnz),
            ux: Vec::with_capacity(nnz),
            udiag: vec![S::zero(); n],
            perm: vec![EMPTY; n],
            pinv: vec![EMPTY; n],
            cperm: col_order.map(<[usize]>::to_vec),
        };
        f.lp.push(0);
        f.up.push(0);

        // Dense accumulator (by original row), DFS marks, and stacks.
        let mut x = vec![S::zero(); n];
        let mut mark = vec![0usize; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        for k in 0..n {
            // Original column eliminated at this step.
            let j = col_order.map_or(k, |q| q[k]);
            let stamp = k + 1;
            pattern.clear();
            // Reachability DFS from the pattern of A[:,j] through the
            // columns of L built so far. Postorder gives reverse
            // topological order.
            for p in a.col_ptr[j]..a.col_ptr[j + 1] {
                let root = a.row_idx[p];
                if root >= n {
                    return Err(NumericsError::InvalidInput(format!(
                        "row index {root} out of bounds in column {j}"
                    )));
                }
                if mark[root] == stamp {
                    continue;
                }
                mark[root] = stamp;
                dfs_stack.push((root, 0));
                while let Some(&(node, child)) = dfs_stack.last() {
                    let k = f.pinv[node];
                    let (lo, hi) = if k == EMPTY {
                        (0, 0)
                    } else {
                        (f.lp[k], f.lp[k + 1])
                    };
                    let mut ci = child;
                    let mut descended = false;
                    while lo + ci < hi {
                        let next = f.li[lo + ci];
                        ci += 1;
                        if mark[next] != stamp {
                            mark[next] = stamp;
                            dfs_stack.last_mut().expect("nonempty stack").1 = ci;
                            dfs_stack.push((next, 0));
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        dfs_stack.pop();
                        pattern.push(node);
                    }
                }
            }
            // Scatter A[:,j] numerically.
            for p in a.col_ptr[j]..a.col_ptr[j + 1] {
                x[a.row_idx[p]] += a.values[p];
            }
            // Numeric sparse triangular solve in topological order
            // (reverse postorder), recording U entries as we go.
            for &i in pattern.iter().rev() {
                let k = f.pinv[i];
                if k == EMPTY {
                    continue;
                }
                let xk = x[i];
                f.ui.push(k);
                f.ux.push(xk);
                if xk != S::zero() {
                    for p in f.lp[k]..f.lp[k + 1] {
                        let r = f.li[p];
                        let delta = f.lx[p] * xk;
                        x[r] -= delta;
                    }
                }
            }
            // Pivot among the not-yet-pivotal rows of the pattern.
            let mut best = EMPTY;
            let mut best_mag = 0.0f64;
            let mut diag_mag = -1.0f64;
            for &i in &pattern {
                if f.pinv[i] != EMPTY {
                    continue;
                }
                let m = x[i].modulus();
                if !m.is_finite() {
                    return Err(NumericsError::Singular { index: j });
                }
                if m > best_mag {
                    best_mag = m;
                    best = i;
                }
                if i == j {
                    diag_mag = m;
                }
            }
            if best == EMPTY || best_mag == 0.0 {
                // Dirty accumulator is irrelevant: the factors are
                // abandoned on error.
                return Err(NumericsError::Singular { index: j });
            }
            let pivot_row = if diag_mag >= PIVOT_TAU * best_mag {
                j
            } else {
                best
            };
            let pivot = x[pivot_row];
            f.perm[k] = pivot_row;
            f.pinv[pivot_row] = k;
            f.udiag[k] = pivot;
            // Remaining non-pivotal pattern rows become L[:,j].
            for &i in &pattern {
                if f.pinv[i] == EMPTY {
                    f.li.push(i);
                    f.lx.push(x[i] / pivot);
                }
                x[i] = S::zero();
            }
            f.lp.push(f.li.len());
            f.up.push(f.ui.len());
        }
        Ok(f)
    }

    /// Numeric-only refactorization: new values, same sparsity pattern
    /// and pivot sequence as the original [`factor`](Self::factor).
    ///
    /// The input **must** have the exact CSC pattern that was
    /// factored; only values may differ. The replayed pivot is held to
    /// the same threshold-pivoting standard as a fresh factorization
    /// (it must be within [`PIVOT_TAU`] of its column's best eligible
    /// candidate): if the new values have drifted far enough that the
    /// recorded pivot order is no longer stable, the factors are left
    /// invalid and the caller should fall back to a fresh full
    /// factorization, which re-pivots.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Singular`] on a dead or unstable replayed
    /// pivot; [`NumericsError::InvalidInput`] on a pattern-size
    /// mismatch.
    pub fn refactor(&mut self, a: &CscView<'_, S>) -> Result<()> {
        if a.n != self.n || a.col_ptr.len() != self.n + 1 {
            return Err(NumericsError::InvalidInput(format!(
                "refactor pattern mismatch: factored order {}, got {}",
                self.n, a.n
            )));
        }
        let mut x = vec![S::zero(); self.n];
        for k in 0..self.n {
            // Original column eliminated at step `k`.
            let j = self.cperm.as_ref().map_or(k, |q| q[k]);
            for p in a.col_ptr[j]..a.col_ptr[j + 1] {
                x[a.row_idx[p]] += a.values[p];
            }
            // Replay the recorded elimination order.
            for q in self.up[k]..self.up[k + 1] {
                let s = self.ui[q];
                let xk = x[self.perm[s]];
                self.ux[q] = xk;
                if xk != S::zero() {
                    for p in self.lp[s]..self.lp[s + 1] {
                        let r = self.li[p];
                        let delta = self.lx[p] * xk;
                        x[r] -= delta;
                    }
                }
            }
            let pivot_row = self.perm[k];
            let pivot = x[pivot_row];
            // Stability guard: the replayed pivot must still dominate
            // its column the way threshold pivoting would demand —
            // values that drift far from the analyzed ones (a wide AC
            // sweep's reactive stamps, a homotopy ramp) would
            // otherwise cause silent element growth.
            let mut col_max = pivot.modulus();
            for p in self.lp[k]..self.lp[k + 1] {
                col_max = col_max.max(x[self.li[p]].modulus());
            }
            let pm = pivot.modulus();
            if !(pm > 0.0) || !pm.is_finite() || pm < PIVOT_TAU * col_max {
                return Err(NumericsError::Singular { index: j });
            }
            self.udiag[k] = pivot;
            for p in self.lp[k]..self.lp[k + 1] {
                let r = self.li[p];
                self.lx[p] = x[r] / pivot;
                x[r] = S::zero();
            }
            // Clear the U part of the accumulator.
            for q in self.up[k]..self.up[k + 1] {
                x[self.perm[self.ui[q]]] = S::zero();
            }
            x[pivot_row] = S::zero();
        }
        Ok(())
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Stored nonzeros `(nnz(L), nnz(U))` including the U diagonal.
    pub fn nnz(&self) -> (usize, usize) {
        (self.li.len(), self.ui.len() + self.n)
    }

    /// The column order the factors were analyzed with (`None` =
    /// natural order).
    pub fn col_order(&self) -> Option<&[usize]> {
        self.cperm.as_deref()
    }

    /// Solves `A·x = b` using the current factors.
    ///
    /// # Errors
    ///
    /// [`NumericsError::DimensionMismatch`] for a wrong-length `b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Forward: L·y = P·b, accumulating in original-row coordinates.
        let mut z: Vec<S> = b.to_vec();
        let mut y = vec![S::zero(); n];
        for k in 0..n {
            let yk = z[self.perm[k]];
            y[k] = yk;
            if yk != S::zero() {
                for p in self.lp[k]..self.lp[k + 1] {
                    let delta = self.lx[p] * yk;
                    z[self.li[p]] -= delta;
                }
            }
        }
        // Backward: U·x = y, in pivot-step coordinates.
        for j in (0..n).rev() {
            let xj = y[j] / self.udiag[j];
            y[j] = xj;
            if xj != S::zero() {
                for q in self.up[j]..self.up[j + 1] {
                    let delta = self.ux[q] * xj;
                    y[self.ui[q]] -= delta;
                }
            }
        }
        // Undo the column pre-ordering: step `k` solved for original
        // unknown `cperm[k]`.
        match &self.cperm {
            None => Ok(y),
            Some(q) => {
                let mut out = vec![S::zero(); n];
                for (k, &j) in q.iter().enumerate() {
                    out[j] = y[k];
                }
                Ok(out)
            }
        }
    }
}

/// Owned CSC storage (builder for [`CscView`]).
#[derive(Debug, Clone, Default)]
pub struct CscMatrix<S: Scalar = f64> {
    /// Matrix order.
    pub n: usize,
    /// Column offsets, length `n + 1`.
    pub col_ptr: Vec<usize>,
    /// Row index per entry.
    pub row_idx: Vec<usize>,
    /// Value per entry.
    pub values: Vec<S>,
}

impl<S: Scalar> CscMatrix<S> {
    /// Borrow as a [`CscView`].
    pub fn view(&self) -> CscView<'_, S> {
        CscView {
            n: self.n,
            col_ptr: &self.col_ptr,
            row_idx: &self.row_idx,
            values: &self.values,
        }
    }

    /// Builds CSC storage from `(row, col, value)` triplets, summing
    /// duplicates. Entries must be in range; the matrix is `n × n`.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, S)]) -> Self {
        let mut sorted: Vec<(usize, usize, S)> =
            triplets.iter().map(|&(r, c, v)| (c, r, v)).collect();
        sorted.sort_unstable_by_key(|&(c, r, _)| (c, r));
        let mut merged: Vec<(usize, usize, S)> = Vec::with_capacity(sorted.len());
        for (c, r, v) in sorted {
            match merged.last_mut() {
                Some((pc, pr, pv)) if *pc == c && *pr == r => *pv += v,
                _ => merged.push((c, r, v)),
            }
        }
        let mut col_ptr = vec![0usize; n + 1];
        for &(c, _, _) in &merged {
            col_ptr[c + 1] += 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let row_idx = merged.iter().map(|&(_, r, _)| r).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CscMatrix {
            n,
            col_ptr,
            row_idx,
            values,
        }
    }
}

/// Convenience: factors a real [`CsrMatrix`] (transposing to CSC).
///
/// # Errors
///
/// As [`SparseLu::factor`].
pub fn factor_csr(a: &CsrMatrix) -> Result<SparseLu<f64>> {
    let (rows, cols) = a.shape();
    if rows != cols {
        return Err(NumericsError::InvalidInput(format!(
            "sparse LU requires a square matrix, got {rows}x{cols}"
        )));
    }
    let mut triplets = Vec::with_capacity(a.nnz());
    for i in 0..rows {
        for (j, v) in a.row_iter(i) {
            triplets.push((i, j, v));
        }
    }
    let csc = CscMatrix::from_triplets(rows, &triplets);
    SparseLu::factor(&csc.view())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::dense::DenseMatrix;
    use crate::lu::LuFactors;

    fn dense_to_csc(a: &DenseMatrix<f64>) -> CscMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                if a[(i, j)] != 0.0 {
                    t.push((i, j, a[(i, j)]));
                }
            }
        }
        CscMatrix::from_triplets(a.rows(), &t)
    }

    /// Deterministic LCG for reproducible pseudo-random tests.
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    #[test]
    fn solves_small_system() {
        let a = DenseMatrix::from_rows(&[
            &[2.0, 1.0, -1.0][..],
            &[-3.0, -1.0, 2.0][..],
            &[-2.0, 1.0, 2.0][..],
        ]);
        let csc = dense_to_csc(&a);
        let lu = SparseLu::factor(&csc.view()).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_diagonal_needs_pivoting() {
        // MNA-style saddle matrix: voltage-source branch row has a
        // structural zero diagonal.
        let a = DenseMatrix::from_rows(&[
            &[1e-3, 0.0, 1.0][..],
            &[0.0, 2e-3, -1.0][..],
            &[1.0, -1.0, 0.0][..],
        ]);
        let csc = dense_to_csc(&a);
        let lu = SparseLu::factor(&csc.view()).unwrap();
        let b = [0.0, 0.0, 5.0];
        let x = lu.solve(&b).unwrap();
        let dense = LuFactors::factor(&a).unwrap().solve(&b).unwrap();
        for (xs, xd) in x.iter().zip(&dense) {
            assert!((xs - xd).abs() < 1e-12, "{x:?} vs {dense:?}");
        }
    }

    #[test]
    fn random_systems_match_dense_lu() {
        let mut rng = Lcg(42);
        for n in [5usize, 17, 40] {
            // ~30% fill plus a strong-ish diagonal.
            let mut a = DenseMatrix::<f64>::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let u = rng.next_f64();
                    if u.abs() < 0.3 {
                        a[(i, j)] = rng.next_f64();
                    }
                }
                a[(i, i)] += 2.0;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let csc = dense_to_csc(&a);
            let lu = SparseLu::factor(&csc.view()).unwrap();
            let xs = lu.solve(&b).unwrap();
            let xd = LuFactors::factor(&a).unwrap().solve(&b).unwrap();
            for (s, d) in xs.iter().zip(&xd) {
                assert!((s - d).abs() < 1e-9, "n = {n}: {s} vs {d}");
            }
        }
    }

    #[test]
    fn refactor_matches_fresh_factor() {
        let mut rng = Lcg(7);
        let n = 25;
        let mut pattern = Vec::new();
        for i in 0..n {
            pattern.push((i, i));
            for j in 0..n {
                if i != j && rng.next_f64().abs() < 0.2 {
                    pattern.push((i, j));
                }
            }
        }
        let values_a: Vec<f64> = pattern
            .iter()
            .map(|&(i, j)| {
                if i == j {
                    3.0 + rng.next_f64()
                } else {
                    rng.next_f64()
                }
            })
            .collect();
        let values_b: Vec<f64> = pattern
            .iter()
            .map(|&(i, j)| {
                if i == j {
                    4.0 + rng.next_f64()
                } else {
                    rng.next_f64()
                }
            })
            .collect();
        let t_a: Vec<_> = pattern
            .iter()
            .zip(&values_a)
            .map(|(&(i, j), &v)| (i, j, v))
            .collect();
        let t_b: Vec<_> = pattern
            .iter()
            .zip(&values_b)
            .map(|(&(i, j), &v)| (i, j, v))
            .collect();
        let csc_a = CscMatrix::from_triplets(n, &t_a);
        let csc_b = CscMatrix::from_triplets(n, &t_b);
        let b: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();

        let mut lu = SparseLu::factor(&csc_a.view()).unwrap();
        lu.refactor(&csc_b.view()).unwrap();
        let x_refactor = lu.solve(&b).unwrap();
        let x_fresh = SparseLu::factor(&csc_b.view()).unwrap().solve(&b).unwrap();
        for (r, f) in x_refactor.iter().zip(&x_fresh) {
            assert!((r - f).abs() < 1e-10, "{r} vs {f}");
        }
        // And refactoring back to the original values round-trips.
        lu.refactor(&csc_a.view()).unwrap();
        let x_back = lu.solve(&b).unwrap();
        let x_orig = SparseLu::factor(&csc_a.view()).unwrap().solve(&b).unwrap();
        for (r, f) in x_back.iter().zip(&x_orig) {
            assert!((r - f).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]);
        let csc = dense_to_csc(&a);
        assert!(matches!(
            SparseLu::factor(&csc.view()),
            Err(NumericsError::Singular { .. })
        ));
        // Structurally singular: an empty column.
        let csc = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(matches!(
            SparseLu::<f64>::factor(&csc.view()),
            Err(NumericsError::Singular { .. })
        ));
    }

    #[test]
    fn refactor_reports_dead_pivot() {
        let csc_ok = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut lu = SparseLu::factor(&csc_ok.view()).unwrap();
        let csc_dead = CscMatrix::from_triplets(2, &[(0, 0, 0.0), (1, 1, 1.0)]);
        assert!(matches!(
            lu.refactor(&csc_dead.view()),
            Err(NumericsError::Singular { .. })
        ));
    }

    #[test]
    fn refactor_rejects_unstable_pivot_drift() {
        // Diagonally dominant at analysis time: (0,0) is the pivot.
        let csc_a = CscMatrix::from_triplets(2, &[(0, 0, 4.0), (1, 0, 1.0), (1, 1, 3.0)]);
        let mut lu = SparseLu::factor(&csc_a.view()).unwrap();
        // New values shrink the replayed pivot far below its column
        // max: numerically alive, but unstable — must be rejected so
        // the caller re-pivots with a full factorization.
        let csc_b = CscMatrix::from_triplets(2, &[(0, 0, 1e-9), (1, 0, 1.0), (1, 1, 3.0)]);
        assert!(matches!(
            lu.refactor(&csc_b.view()),
            Err(NumericsError::Singular { .. })
        ));
        let fresh = SparseLu::factor(&csc_b.view()).unwrap();
        let x = fresh.solve(&[1e-9, 4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9, "{x:?}");
        assert!((x[1] - 1.0).abs() < 1e-9, "{x:?}");
    }

    #[test]
    fn complex_systems_solve() {
        let j = Complex64::J;
        let entries = [
            (0usize, 0usize, Complex64::new(1.0, 1.0)),
            (0, 1, j),
            (1, 0, Complex64::new(2.0, -1.0)),
            (1, 1, Complex64::new(0.0, 3.0)),
        ];
        let csc = CscMatrix::from_triplets(2, &entries);
        let lu = SparseLu::factor(&csc.view()).unwrap();
        let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let x = lu.solve(&b).unwrap();
        // Residual check A·x = b.
        let ax0 = entries[0].2 * x[0] + entries[1].2 * x[1];
        let ax1 = entries[2].2 * x[0] + entries[3].2 * x[1];
        assert!((ax0 - b[0]).abs() < 1e-12);
        assert!((ax1 - b[1]).abs() < 1e-12);
    }

    #[test]
    fn ordered_factor_matches_natural_and_dense() {
        let mut rng = Lcg(99);
        for n in [6usize, 20, 45] {
            let mut a = DenseMatrix::<f64>::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    if rng.next_f64().abs() < 0.25 {
                        a[(i, j)] = rng.next_f64();
                    }
                }
                a[(i, i)] += 3.0;
            }
            let csc = dense_to_csc(&a);
            let order = crate::ordering::amd_order(n, &csc.col_ptr, &csc.row_idx);
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let x_ord = SparseLu::factor_ordered(&csc.view(), &order)
                .unwrap()
                .solve(&b)
                .unwrap();
            let x_nat = SparseLu::factor(&csc.view()).unwrap().solve(&b).unwrap();
            let x_dense = LuFactors::factor(&a).unwrap().solve(&b).unwrap();
            for i in 0..n {
                assert!((x_ord[i] - x_dense[i]).abs() < 1e-9, "n = {n} col {i}");
                assert!((x_ord[i] - x_nat[i]).abs() < 1e-9, "n = {n} col {i}");
            }
        }
    }

    #[test]
    fn ordered_refactor_replays_the_permutation() {
        // Arrow pattern: natural order fills completely, AMD leaves
        // the hub last. Refactor with fresh values must match a fresh
        // ordered factorization.
        let n = 20;
        let mut pattern = vec![];
        for i in 0..n {
            pattern.push((i, i));
            if i > 0 {
                pattern.push((0, i));
                pattern.push((i, 0));
            }
        }
        let mut rng = Lcg(3);
        let vals = |rng: &mut Lcg| -> Vec<f64> {
            pattern
                .iter()
                .map(|&(i, j)| {
                    if i == j {
                        5.0 + rng.next_f64()
                    } else {
                        rng.next_f64()
                    }
                })
                .collect()
        };
        let va = vals(&mut rng);
        let vb = vals(&mut rng);
        let t = |vs: &[f64]| -> Vec<(usize, usize, f64)> {
            pattern
                .iter()
                .zip(vs)
                .map(|(&(i, j), &v)| (i, j, v))
                .collect()
        };
        let csc_a = CscMatrix::from_triplets(n, &t(&va));
        let csc_b = CscMatrix::from_triplets(n, &t(&vb));
        let order = crate::ordering::amd_order(n, &csc_a.col_ptr, &csc_a.row_idx);
        let mut lu = SparseLu::factor_ordered(&csc_a.view(), &order).unwrap();
        let (lnz_ord, _) = lu.nnz();
        let (lnz_nat, _) = SparseLu::factor(&csc_a.view()).unwrap().nnz();
        assert!(
            lnz_ord < lnz_nat,
            "ordered fill {lnz_ord} must beat natural {lnz_nat}"
        );
        lu.refactor(&csc_b.view()).unwrap();
        let b: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let x_re = lu.solve(&b).unwrap();
        let x_fresh = SparseLu::factor_ordered(&csc_b.view(), &order)
            .unwrap()
            .solve(&b)
            .unwrap();
        for (r, f) in x_re.iter().zip(&x_fresh) {
            assert!((r - f).abs() < 1e-10, "{r} vs {f}");
        }
    }

    #[test]
    fn ordered_factor_rejects_bad_permutations() {
        let csc = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        for bad in [&[0usize, 0][..], &[0][..], &[1, 2][..]] {
            assert!(matches!(
                SparseLu::<f64>::factor_ordered(&csc.view(), bad),
                Err(NumericsError::InvalidInput(_))
            ));
        }
    }

    #[test]
    fn ordered_complex_systems_solve() {
        let j = Complex64::J;
        let entries = [
            (0usize, 0usize, Complex64::new(1.0, 1.0)),
            (0, 1, j),
            (1, 0, Complex64::new(2.0, -1.0)),
            (1, 1, Complex64::new(0.0, 3.0)),
        ];
        let csc = CscMatrix::from_triplets(2, &entries);
        let lu = SparseLu::factor_ordered(&csc.view(), &[1, 0]).unwrap();
        let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let x = lu.solve(&b).unwrap();
        let ax0 = entries[0].2 * x[0] + entries[1].2 * x[1];
        let ax1 = entries[2].2 * x[0] + entries[3].2 * x[1];
        assert!((ax0 - b[0]).abs() < 1e-12);
        assert!((ax1 - b[1]).abs() < 1e-12);
    }

    #[test]
    fn factor_csr_convenience() {
        let mut t = crate::sparse::TripletMatrix::new(2, 2);
        t.add(0, 0, 2.0);
        t.add(0, 1, 1.0);
        t.add(1, 1, 4.0);
        let lu = factor_csr(&t.to_csr()).unwrap();
        let x = lu.solve(&[4.0, 8.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let n = 50;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let csc = CscMatrix::from_triplets(n, &t);
        let lu = SparseLu::factor(&csc.view()).unwrap();
        let (lnz, unz) = lu.nnz();
        // Diagonal pivoting keeps a tridiagonal factor: n-1 in L,
        // (n-1) + n in U.
        assert_eq!(lnz, n - 1);
        assert_eq!(unz, 2 * n - 1);
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        let dense = {
            let mut d = DenseMatrix::<f64>::zeros(n, n);
            for &(i, j, v) in &t {
                d[(i, j)] = v;
            }
            LuFactors::factor(&d).unwrap().solve(&b).unwrap()
        };
        for (s, d) in x.iter().zip(&dense) {
            assert!((s - d).abs() < 1e-12);
        }
    }
}
