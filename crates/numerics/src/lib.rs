//! # mems-numerics
//!
//! Self-contained numerical substrate for the MEMS transducer tool
//! chain. Everything the simulator, the HDL interpreter, the FE solver
//! and the parameter extractor need lives here so the workspace has no
//! external numerical dependencies:
//!
//! - [`complex`] — a `Complex64` type with the usual field operations;
//! - [`dense`] — dense row-major matrices generic over a [`Scalar`];
//! - [`lu`] — LU factorization with partial pivoting (real and complex);
//! - [`qr`] — Householder QR and least-squares solves;
//! - [`sparse`] — triplet/CSR sparse matrices and products;
//! - [`cg`] — preconditioned conjugate gradient for SPD systems;
//! - [`dual`] — scalar forward-mode dual numbers;
//! - [`poly`] — polynomial evaluation, fitting, and Durand–Kerner roots;
//! - [`pwl`] — piecewise-linear and bilinear interpolation tables;
//! - [`quad`] — Gauss–Legendre and composite quadrature;
//! - [`rootfind`] — bisection and Brent's method;
//! - [`ode`] — integrator coefficients (BE/TR/BDF2) and an RK4
//!   reference integrator used by the test suites;
//! - [`ordering`] — AMD-style fill-reducing elimination orderings for
//!   the sparse LU;
//! - [`etree`] — elimination-tree symbolic analysis (maximum
//!   transversal, postorder, column counts) for the supernodal path;
//! - [`supernodal`] — supernodal, level-scheduled parallel sparse LU
//!   for meshed systems beyond n ≈ 10³;
//! - [`par`] — the thread budget shared between parallel numeric
//!   kernels and outer sweep engines;
//! - [`stats`] — trace statistics shared by the experiment harness.
//!
//! # Example
//!
//! ```
//! use mems_numerics::dense::DenseMatrix;
//! use mems_numerics::lu::LuFactors;
//!
//! # fn main() -> Result<(), mems_numerics::NumericsError> {
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0][..], &[1.0, 3.0][..]]);
//! let lu = LuFactors::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// Index-based loops mirror the textbook matrix math they implement,
// and `!(x > y)` comparisons are deliberate NaN-rejecting guards.
#![allow(clippy::needless_range_loop, clippy::neg_cmp_op_on_partial_ord)]

pub mod cg;
pub mod complex;
pub mod dense;
pub mod dual;
pub mod etree;
pub mod lu;
pub mod ode;
pub mod ordering;
pub mod par;
pub mod poly;
pub mod pwl;
pub mod qr;
pub mod quad;
pub mod rootfind;
pub mod scalar;
pub mod sparse;
pub mod sparse_lu;
pub mod stats;
pub mod supernodal;

pub use complex::Complex64;
pub use dense::DenseMatrix;
pub use dual::Dual64;
pub use scalar::Scalar;

use std::fmt;

/// Errors produced by the numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A matrix was singular (or numerically singular) at the given
    /// pivot/column index.
    Singular { index: usize },
    /// Dimensions of the operands do not agree.
    DimensionMismatch { expected: usize, found: usize },
    /// An iterative method failed to converge within its budget.
    NoConvergence { iterations: usize, residual: f64 },
    /// The input violates a documented precondition.
    InvalidInput(String),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::Singular { index } => {
                write!(f, "matrix is singular at pivot {index}")
            }
            NumericsError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumericsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NumericsError>;

/// Returns `true` when `a` and `b` agree to `rel` relative or `abs`
/// absolute tolerance, whichever is looser.
///
/// ```
/// assert!(mems_numerics::approx_eq(1.0, 1.0 + 1e-13, 1e-9, 1e-12));
/// ```
pub fn approx_eq(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}
