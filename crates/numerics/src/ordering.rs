//! Fill-reducing elimination orderings for sparse factorization.
//!
//! The Gilbert–Peierls LU in [`crate::sparse_lu`] pivots for
//! numerical stability only; on meshed patterns (grids of coupled
//! cells, FEM-derived ladders) eliminating columns in their natural
//! order lets fill-in explode. [`amd_order`] computes an AMD-style
//! minimum-degree ordering of the *symmetrized* pattern `A + Aᵀ`
//! (Amestoy/Davis/Duff's algorithm family): a quotient-graph
//! elimination that never forms the fill explicitly, with
//! supervariable merging of indistinguishable nodes, aggressive
//! element absorption, and external-degree pivot selection. Feeding
//! the resulting column order to
//! [`SparseLu::factor_ordered`](crate::sparse_lu::SparseLu::factor_ordered)
//! cuts factor fill and flops by large factors on such matrices while
//! the row pivoting still guards stability.
//!
//! The ordering is purely structural: any permutation is *correct*
//! (the factorization re-pivots rows as usual), so a suboptimal
//! degree approximation can only cost fill, never accuracy.

use std::collections::BinaryHeap;

pub mod cache;
pub mod nd;

pub use cache::{cache_stats, clear_cache, order_cached, OrderLookup};
pub use nd::nd_order;

/// Dimension at which [`FillOrdering::Auto`] switches from minimum
/// degree to nested dissection: below this AMD's quotient-graph
/// elimination is cheap and usually slightly better on irregular
/// blocks; above it the separator tree wins on both ordering cost and
/// fill for the meshed patterns this stack factors.
pub const ND_AUTO_THRESHOLD: usize = 10_000;

/// Which column pre-ordering the sparse backend eliminates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// Eliminate columns in their natural (stamp/index) order.
    Natural,
    /// Minimum-degree order of the symmetrized pattern.
    Amd,
    /// Multilevel nested dissection of the symmetrized pattern
    /// ([`nd_order`]): separator-tree fill, O(|E| log n) to compute.
    Nd,
    /// Pick per matrix: [`FillOrdering::Nd`] at
    /// n ≥ [`ND_AUTO_THRESHOLD`], [`FillOrdering::Amd`] below (the
    /// default; deck option `order=` opts into a fixed choice).
    #[default]
    Auto,
}

impl FillOrdering {
    /// The concrete ordering `Auto` stands for at dimension `n`
    /// (fixed choices return themselves).
    pub fn resolve(self, n: usize) -> FillOrdering {
        match self {
            FillOrdering::Auto => {
                if n >= ND_AUTO_THRESHOLD {
                    FillOrdering::Nd
                } else {
                    FillOrdering::Amd
                }
            }
            other => other,
        }
    }

    /// Wire/report name of the (possibly unresolved) policy.
    pub fn name(self) -> &'static str {
        match self {
            FillOrdering::Natural => "natural",
            FillOrdering::Amd => "amd",
            FillOrdering::Nd => "nd",
            FillOrdering::Auto => "auto",
        }
    }
}

/// Node state in the quotient graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// An uneliminated (principal) supervariable.
    Variable,
    /// An eliminated pivot, kept as an element whose boundary is its
    /// would-be fill clique.
    Element,
    /// Merged into another supervariable (indistinguishable), or an
    /// element absorbed into a newer one.
    Dead,
}

/// Computes a fill-reducing elimination order for the pattern of a
/// square CSC matrix (values are irrelevant; the pattern is
/// symmetrized and the diagonal ignored).
///
/// Returns `perm` with `perm[k]` = the original column to eliminate
/// at step `k`; the result is always a valid permutation of `0..n`.
/// Out-of-range row indices are ignored (the factorization proper
/// reports them).
pub fn amd_order(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    // Symmetrized adjacency A + Aᵀ without the diagonal.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n.min(col_ptr.len().saturating_sub(1)) {
        for p in col_ptr[j]..col_ptr[j + 1].min(row_idx.len()) {
            let i = row_idx[p];
            if i < n && i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    let mut state = vec![NodeState::Variable; n];
    let mut weight = vec![1usize; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    // Adjacent principal variables / adjacent elements, per variable.
    let mut var_adj = adj;
    let mut elem_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // For elements: the boundary variable list (may hold stale dead
    // entries, filtered by state on read).
    let mut boundary: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Variables absorbed into each principal (eliminated right after
    // it, in absorption order).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Lazy min-heap over (degree, node); stale entries are skipped.
    // Ties break on the smaller node index, keeping the order
    // deterministic.
    let mut heap: BinaryHeap<std::cmp::Reverse<(usize, usize)>> = BinaryHeap::with_capacity(2 * n);
    for i in 0..n {
        heap.push(std::cmp::Reverse((degree[i], i)));
    }

    let mut mark = vec![0usize; n];
    let mut stamp = 0usize;
    let mut mark2 = vec![0usize; n];
    let mut stamp2 = 0usize;

    let mut perm = Vec::with_capacity(n);
    while perm.len() < n {
        let p = loop {
            let std::cmp::Reverse((d, cand)) = heap.pop().expect("heap cannot drain early");
            if state[cand] == NodeState::Variable && degree[cand] == d {
                break cand;
            }
        };

        // Form the element boundary Le = (A_p ∪ ⋃ L_e) \ p over live
        // variables; absorbed elements die.
        stamp += 1;
        mark[p] = stamp;
        let mut le: Vec<usize> = Vec::new();
        for &v in &var_adj[p] {
            if state[v] == NodeState::Variable && mark[v] != stamp {
                mark[v] = stamp;
                le.push(v);
            }
        }
        for e in std::mem::take(&mut elem_adj[p]) {
            if state[e] != NodeState::Element {
                continue;
            }
            for &v in &boundary[e] {
                if state[v] == NodeState::Variable && mark[v] != stamp {
                    mark[v] = stamp;
                    le.push(v);
                }
            }
            // Aggressive absorption: e's clique is a subset of p's.
            state[e] = NodeState::Dead;
            boundary[e].clear();
        }

        perm.push(p);
        perm.append(&mut members[p]);
        state[p] = NodeState::Element;
        var_adj[p].clear();
        boundary[p] = le.clone();

        // Update every boundary variable: prune its lists, recompute
        // its external degree over the quotient graph.
        for &i in &le {
            // Variables covered by the new element are reachable
            // through it; drop them (and any dead nodes) from the
            // direct list.
            var_adj[i].retain(|&v| state[v] == NodeState::Variable && mark[v] != stamp);
            elem_adj[i].retain(|&e| state[e] == NodeState::Element && e != p);
            elem_adj[i].push(p);

            stamp2 += 1;
            mark2[i] = stamp2;
            let mut deg = 0usize;
            for &v in &var_adj[i] {
                if mark2[v] != stamp2 {
                    mark2[v] = stamp2;
                    deg += weight[v];
                }
            }
            for &e in &elem_adj[i] {
                for &v in &boundary[e] {
                    if state[v] == NodeState::Variable && mark2[v] != stamp2 {
                        mark2[v] = stamp2;
                        deg += weight[v];
                    }
                }
            }
            degree[i] = deg;
        }

        // Supervariable detection: boundary variables with identical
        // quotient-graph adjacency (including themselves) are
        // indistinguishable — merge them so they are selected and
        // eliminated together. Candidates are bucketed by a
        // commutative hash and exact-checked.
        let mut hashed: Vec<(u64, usize)> = le
            .iter()
            .filter(|&&i| state[i] == NodeState::Variable)
            .map(|&i| (adjacency_hash(i, &var_adj[i], &elem_adj[i]), i))
            .collect();
        hashed.sort_unstable();
        let mut idx = 0;
        while idx < hashed.len() {
            let mut run_end = idx + 1;
            while run_end < hashed.len() && hashed[run_end].0 == hashed[idx].0 {
                run_end += 1;
            }
            for a in idx..run_end {
                let i = hashed[a].1;
                if state[i] != NodeState::Variable {
                    continue;
                }
                for b in (a + 1)..run_end {
                    let j = hashed[b].1;
                    if state[j] != NodeState::Variable {
                        continue;
                    }
                    if indistinguishable(i, j, &var_adj, &elem_adj) {
                        let absorbed = weight[j];
                        weight[i] += absorbed;
                        state[j] = NodeState::Dead;
                        let mut js = std::mem::take(&mut members[j]);
                        members[i].push(j);
                        members[i].append(&mut js);
                        var_adj[j].clear();
                        elem_adj[j].clear();
                        var_adj[i].retain(|&v| v != j);
                        // `j` was external to `i`; now it is part of
                        // it, so the external degree shrinks.
                        degree[i] = degree[i].saturating_sub(absorbed);
                    }
                }
            }
            idx = run_end;
        }

        for &i in &le {
            if state[i] == NodeState::Variable {
                heap.push(std::cmp::Reverse((degree[i], i)));
            }
        }
    }
    debug_assert!(is_permutation(&perm, n));
    perm
}

/// Commutative hash over a variable's quotient-graph adjacency plus
/// itself (so two indistinguishable variables — whose lists differ
/// only by containing each other — hash equal).
fn adjacency_hash(i: usize, vars: &[usize], elems: &[usize]) -> u64 {
    fn h(x: usize) -> u64 {
        let mut z = (x as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut acc = h(i);
    for &v in vars {
        acc = acc.wrapping_add(h(v));
    }
    for &e in elems {
        acc = acc.wrapping_add(h(e ^ 0x5555_5555_5555));
    }
    acc
}

/// Exact indistinguishability check: `Adj(i) ∪ {i} == Adj(j) ∪ {j}`
/// over both list kinds.
fn indistinguishable(i: usize, j: usize, var_adj: &[Vec<usize>], elem_adj: &[Vec<usize>]) -> bool {
    if elem_adj[i].len() != elem_adj[j].len() || var_adj[i].len() != var_adj[j].len() {
        return false;
    }
    let mut ei = elem_adj[i].clone();
    let mut ej = elem_adj[j].clone();
    ei.sort_unstable();
    ej.sort_unstable();
    if ei != ej {
        return false;
    }
    let close = |list: &[usize], selfish: usize, other: usize| -> Vec<usize> {
        let mut v: Vec<usize> = list
            .iter()
            .copied()
            .map(|x| if x == other { selfish } else { x })
            .collect();
        v.push(selfish);
        v.sort_unstable();
        v.dedup();
        v
    };
    // Substituting `j → i` (and closing over self) makes the variable
    // lists comparable as sets.
    close(&var_adj[i], i, j) == close(&var_adj[j], i, j)
}

/// `true` when `perm` is a bijection on `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CSC pattern from (row, col) coordinate pairs.
    fn csc_pattern(n: usize, coords: &[(usize, usize)]) -> (Vec<usize>, Vec<usize>) {
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(r, c) in coords {
            cols[c].push(r);
        }
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::new();
        for (c, mut rows) in cols.into_iter().enumerate() {
            rows.sort_unstable();
            rows.dedup();
            col_ptr[c + 1] = col_ptr[c] + rows.len();
            row_idx.extend(rows);
        }
        (col_ptr, row_idx)
    }

    /// 5-point-stencil grid pattern (rows × cols nodes).
    fn grid_pattern(rows: usize, cols: usize) -> (usize, Vec<usize>, Vec<usize>) {
        let n = rows * cols;
        let id = |r: usize, c: usize| r * cols + c;
        let mut coords = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                coords.push((id(r, c), id(r, c)));
                if c + 1 < cols {
                    coords.push((id(r, c), id(r, c + 1)));
                    coords.push((id(r, c + 1), id(r, c)));
                }
                if r + 1 < rows {
                    coords.push((id(r, c), id(r + 1, c)));
                    coords.push((id(r + 1, c), id(r, c)));
                }
            }
        }
        let (cp, ri) = csc_pattern(n, &coords);
        (n, cp, ri)
    }

    /// Symbolic Cholesky-style fill count for a symmetric pattern
    /// eliminated in `perm` order (counts |L| below the diagonal).
    fn symbolic_fill(n: usize, col_ptr: &[usize], row_idx: &[usize], perm: &[usize]) -> usize {
        let mut pinv = vec![0usize; n];
        for (k, &p) in perm.iter().enumerate() {
            pinv[p] = k;
        }
        // Adjacency in elimination coordinates.
        let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
        for j in 0..n {
            for p in col_ptr[j]..col_ptr[j + 1] {
                let i = row_idx[p];
                if i != j {
                    adj[pinv[i]].insert(pinv[j]);
                    adj[pinv[j]].insert(pinv[i]);
                }
            }
        }
        let mut fill = 0usize;
        for k in 0..n {
            let nbrs: Vec<usize> = adj[k].iter().copied().filter(|&v| v > k).collect();
            fill += nbrs.len();
            for (a, &i) in nbrs.iter().enumerate() {
                for &j in &nbrs[a + 1..] {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
        fill
    }

    #[test]
    fn empty_and_singleton() {
        assert!(amd_order(0, &[0], &[]).is_empty());
        assert_eq!(amd_order(1, &[0, 1], &[0]), vec![0]);
    }

    #[test]
    fn diagonal_pattern_is_identity_like() {
        let (cp, ri) = csc_pattern(4, &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let p = amd_order(4, &cp, &ri);
        assert!(is_permutation(&p, 4));
    }

    #[test]
    fn arrow_matrix_defers_the_hub() {
        // Arrow: dense first row/column. Natural order fills the
        // whole matrix; minimum degree eliminates the spokes first
        // and the hub last — zero fill.
        let n = 12;
        let mut coords = vec![];
        for i in 0..n {
            coords.push((i, i));
            if i > 0 {
                coords.push((0, i));
                coords.push((i, 0));
            }
        }
        let (cp, ri) = csc_pattern(n, &coords);
        let p = amd_order(n, &cp, &ri);
        assert!(is_permutation(&p, n));
        // The hub ties with the final spoke at degree 1, so it lands
        // in one of the last two slots.
        let hub_pos = p.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= n - 2, "hub eliminated too early: {p:?}");
        assert_eq!(symbolic_fill(n, &cp, &ri, &p), n - 1);
        let natural: Vec<usize> = (0..n).collect();
        assert_eq!(symbolic_fill(n, &cp, &ri, &natural), n * (n - 1) / 2);
    }

    #[test]
    fn tridiagonal_stays_fill_free() {
        let n = 30;
        let mut coords = vec![];
        for i in 0..n {
            coords.push((i, i));
            if i > 0 {
                coords.push((i, i - 1));
                coords.push((i - 1, i));
            }
        }
        let (cp, ri) = csc_pattern(n, &coords);
        let p = amd_order(n, &cp, &ri);
        assert!(is_permutation(&p, n));
        assert_eq!(symbolic_fill(n, &cp, &ri, &p), n - 1);
    }

    #[test]
    fn grid_fill_is_much_smaller_than_natural() {
        let (n, cp, ri) = grid_pattern(16, 16);
        let p = amd_order(n, &cp, &ri);
        assert!(is_permutation(&p, n));
        let amd_fill = symbolic_fill(n, &cp, &ri, &p);
        let natural_fill = symbolic_fill(n, &cp, &ri, &(0..n).collect::<Vec<_>>());
        assert!(
            (amd_fill as f64) < 0.55 * natural_fill as f64,
            "AMD fill {amd_fill} vs natural {natural_fill}"
        );
    }

    #[test]
    fn unsymmetric_pattern_is_symmetrized() {
        // Strictly lower-triangular pattern plus diagonal: the
        // symmetrized graph is a path, so the order stays fill-free.
        let n = 10;
        let mut coords = vec![];
        for i in 0..n {
            coords.push((i, i));
            if i > 0 {
                coords.push((i, i - 1)); // one direction only
            }
        }
        let (cp, ri) = csc_pattern(n, &coords);
        let p = amd_order(n, &cp, &ri);
        assert!(is_permutation(&p, n));
        assert_eq!(symbolic_fill(n, &cp, &ri, &p), n - 1);
    }

    #[test]
    fn deterministic_across_calls() {
        let (n, cp, ri) = grid_pattern(9, 7);
        let a = amd_order(n, &cp, &ri);
        let b = amd_order(n, &cp, &ri);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_columns_survive() {
        // Column 1 has no entries at all (structurally singular for
        // LU, but the ordering must still emit a permutation).
        let (cp, ri) = csc_pattern(3, &[(0, 0), (2, 2), (2, 0), (0, 2)]);
        let p = amd_order(3, &cp, &ri);
        assert!(is_permutation(&p, 3));
    }

    #[test]
    fn is_permutation_rejects_bad_inputs() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
    }
}
