//! Implicit integration coefficients and a reference RK4 integrator.
//!
//! The transient engine discretizes `ddt(x)` at time `t_{n+1}` as
//! `ddt(x) ≈ c0·x_{n+1} + history`, where `c0` and the history depend
//! on the [`IntegrationMethod`]. This mirrors the companion-model
//! formulation of classic SPICE implementations and is shared by the
//! native reactive devices and the HDL `ddt`/`integ` call sites.

/// The implicit integration method for transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Backward Euler: L-stable, first order, damps oscillations.
    BackwardEuler,
    /// Trapezoidal: A-stable, second order; the SPICE default and the
    /// method used for the Fig. 5 reproduction (under-damped resonator).
    #[default]
    Trapezoidal,
    /// Gear-2 (BDF2): stiffly stable, second order.
    Gear2,
}

impl IntegrationMethod {
    /// Local truncation error order.
    pub fn order(self) -> usize {
        match self {
            IntegrationMethod::BackwardEuler => 1,
            IntegrationMethod::Trapezoidal | IntegrationMethod::Gear2 => 2,
        }
    }
}

/// Per-step differentiation formula `x' ≈ c0·x + hist`.
///
/// For a quantity with previous value `x_prev`, previous derivative
/// `dx_prev`, and previous-previous value `x_prev2` (Gear-2 only):
///
/// - BE:   `x' = (x − x_prev)/h`                      → `c0 = 1/h`
/// - TR:   `x' = 2(x − x_prev)/h − dx_prev`           → `c0 = 2/h`
/// - BDF2: `x' = (3x − 4x_prev + x_prev2)/(2h)`       → `c0 = 3/(2h)`
///   (equal steps; variable-step BDF2 coefficients are produced by
///   [`DiffFormula::gear2_variable`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffFormula {
    /// Coefficient of the *new* value in the derivative formula.
    pub c0: f64,
    /// Everything else (a constant during one Newton solve).
    pub hist: f64,
}

impl DiffFormula {
    /// Builds the formula for `method` with step `h`.
    ///
    /// `x_prev` / `dx_prev` / `x_prev2` are the stored history values;
    /// unused ones are ignored by the simpler methods. `h_prev` is the
    /// previous step length (Gear-2 variable-step only).
    pub fn new(
        method: IntegrationMethod,
        h: f64,
        x_prev: f64,
        dx_prev: f64,
        x_prev2: f64,
        h_prev: f64,
        have_two_points: bool,
    ) -> Self {
        match method {
            IntegrationMethod::BackwardEuler => DiffFormula {
                c0: 1.0 / h,
                hist: -x_prev / h,
            },
            IntegrationMethod::Trapezoidal => DiffFormula {
                c0: 2.0 / h,
                hist: -2.0 * x_prev / h - dx_prev,
            },
            IntegrationMethod::Gear2 => {
                if have_two_points {
                    Self::gear2_variable(h, h_prev, x_prev, x_prev2)
                } else {
                    // First step falls back to BE.
                    DiffFormula {
                        c0: 1.0 / h,
                        hist: -x_prev / h,
                    }
                }
            }
        }
    }

    /// Variable-step BDF2 coefficients.
    pub fn gear2_variable(h: f64, h_prev: f64, x_prev: f64, x_prev2: f64) -> Self {
        let r = h / h_prev;
        let c0 = (1.0 + 2.0 * r) / (h * (1.0 + r));
        let c1 = -(1.0 + r) / h;
        let c2 = r * r / (h * (1.0 + r));
        DiffFormula {
            c0,
            hist: c1 * x_prev + c2 * x_prev2,
        }
    }

    /// Applies the formula: derivative of the new value `x`.
    pub fn ddt(&self, x: f64) -> f64 {
        self.c0 * x + self.hist
    }
}

/// Per-step integration formula `∫x ≈ (1/c0)·x + hist` (the inverse
/// view used by HDL `integ` sites): `y_{n+1} = y_n + step(x)`.
///
/// - BE: `y += h·x`
/// - TR: `y += h/2·(x + x_prev)`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegFormula {
    /// Coefficient of the new integrand value.
    pub gain: f64,
    /// Constant part (previous integral plus weighted old integrand).
    pub hist: f64,
}

impl IntegFormula {
    /// Builds the formula for `method` with step `h`, previous
    /// integral `y_prev` and previous integrand `x_prev`.
    pub fn new(method: IntegrationMethod, h: f64, y_prev: f64, x_prev: f64) -> Self {
        match method {
            IntegrationMethod::BackwardEuler | IntegrationMethod::Gear2 => IntegFormula {
                gain: h,
                hist: y_prev,
            },
            IntegrationMethod::Trapezoidal => IntegFormula {
                gain: 0.5 * h,
                hist: y_prev + 0.5 * h * x_prev,
            },
        }
    }

    /// Applies the formula: integral value given the new integrand `x`.
    pub fn integ(&self, x: f64) -> f64 {
        self.gain * x + self.hist
    }
}

/// Fixed-step classical Runge–Kutta 4 on `y' = f(t, y)`.
///
/// Used by the test suites as an independent reference when checking
/// the implicit transient engine on linear resonators.
pub fn rk4(
    f: impl Fn(f64, &[f64]) -> Vec<f64>,
    t0: f64,
    y0: &[f64],
    t_end: f64,
    steps: usize,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    let h = (t_end - t0) / steps as f64;
    let mut t = t0;
    let mut y = y0.to_vec();
    let mut ts = Vec::with_capacity(steps + 1);
    let mut ys = Vec::with_capacity(steps + 1);
    ts.push(t);
    ys.push(y.clone());
    for _ in 0..steps {
        let k1 = f(t, &y);
        let y2: Vec<f64> = y
            .iter()
            .zip(&k1)
            .map(|(yi, ki)| yi + 0.5 * h * ki)
            .collect();
        let k2 = f(t + 0.5 * h, &y2);
        let y3: Vec<f64> = y
            .iter()
            .zip(&k2)
            .map(|(yi, ki)| yi + 0.5 * h * ki)
            .collect();
        let k3 = f(t + 0.5 * h, &y3);
        let y4: Vec<f64> = y.iter().zip(&k3).map(|(yi, ki)| yi + h * ki).collect();
        let k4 = f(t + h, &y4);
        for i in 0..y.len() {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        ts.push(t);
        ys.push(y.clone());
    }
    (ts, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_formula_differentiates_linear_ramp() {
        // x(t) = 3t sampled at h = 0.1: derivative 3 exactly.
        let h = 0.1;
        let f = DiffFormula::new(IntegrationMethod::BackwardEuler, h, 0.3, 0.0, 0.0, h, false);
        assert!((f.ddt(0.3 + 3.0 * h) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tr_formula_is_second_order_on_quadratic() {
        // x(t) = t²: TR derivative at t+h given exact history is exact
        // for quadratics: x' = 2(x_new - x_old)/h - x'_old.
        let h = 0.05;
        let t = 1.0;
        let f = DiffFormula::new(
            IntegrationMethod::Trapezoidal,
            h,
            t * t,
            2.0 * t,
            0.0,
            h,
            true,
        );
        let t1 = t + h;
        assert!((f.ddt(t1 * t1) - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn gear2_exact_on_quadratic_equal_steps() {
        let h = 0.1;
        let x = |t: f64| t * t;
        let t2 = 1.0;
        let f = DiffFormula::gear2_variable(h, h, x(t2 - h), x(t2 - 2.0 * h));
        assert!((f.ddt(x(t2)) - 2.0 * t2).abs() < 1e-10);
    }

    #[test]
    fn gear2_exact_on_quadratic_variable_steps() {
        let (h, hp) = (0.1, 0.07);
        let x = |t: f64| 3.0 * t * t - t;
        let tn = 2.0;
        let f = DiffFormula::gear2_variable(h, hp, x(tn - h), x(tn - h - hp));
        assert!((f.ddt(x(tn)) - (6.0 * tn - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn integ_formulas_accumulate() {
        let h = 0.2;
        // BE: y1 = y0 + h·x1
        let f = IntegFormula::new(IntegrationMethod::BackwardEuler, h, 1.0, 0.0);
        assert!((f.integ(5.0) - 2.0).abs() < 1e-14);
        // TR: y1 = y0 + h/2 (x1 + x0)
        let f = IntegFormula::new(IntegrationMethod::Trapezoidal, h, 1.0, 3.0);
        assert!((f.integ(5.0) - (1.0 + 0.1 * 8.0)).abs() < 1e-14);
    }

    #[test]
    fn rk4_matches_exponential() {
        let (ts, ys) = rk4(|_, y| vec![-y[0]], 0.0, &[1.0], 1.0, 100);
        let yf = ys.last().unwrap()[0];
        assert!((yf - (-1.0f64).exp()).abs() < 1e-9);
        assert_eq!(ts.len(), 101);
    }

    #[test]
    fn rk4_matches_resonator_analytics() {
        // Undamped oscillator: x'' = -ω²x, ω = 2.
        let w = 2.0;
        let (_, ys) = rk4(
            |_, y| vec![y[1], -w * w * y[0]],
            0.0,
            &[1.0, 0.0],
            std::f64::consts::PI, // half period for ω=2
            2000,
        );
        let yf = &ys[ys.len() - 1];
        // x(π) = cos(2π) = 1.
        assert!((yf[0] - 1.0).abs() < 1e-8);
        assert!(yf[1].abs() < 1e-7);
    }

    #[test]
    fn orders() {
        assert_eq!(IntegrationMethod::BackwardEuler.order(), 1);
        assert_eq!(IntegrationMethod::Trapezoidal.order(), 2);
        assert_eq!(IntegrationMethod::Gear2.order(), 2);
    }
}
