//! Shared thread budget for parallel numeric kernels.
//!
//! Two layers of this workspace want threads: the elaborate-once batch
//! engine (`mems_netlist::batch`) fans `.STEP`/`.MC` points across a
//! hand-rolled `std::thread` worker pool, and the supernodal
//! factorization ([`crate::supernodal`]) level-schedules independent
//! elimination subtrees. Running both at full width oversubscribes the
//! machine, so they share one budget:
//!
//! - the batch engine, before spawning `w` sweep workers, calls
//!   [`set_factor_thread_cap`]`(max(1, cores / w))` and clears it
//!   afterwards — each sweep worker's factorizations then stay inside
//!   its share of the machine;
//! - [`resolve_factor_threads`] is what the factorization actually
//!   consults. Precedence: the `MEMS_FACTOR_THREADS` environment
//!   variable (for deterministic CI runs) beats an explicit
//!   per-solver request, which beats the batch-engine cap, which
//!   beats [`std::thread::available_parallelism`].
//!
//! Thread count never changes results — the level scheduler is
//! deterministic by construction — so the env override exists for
//! reproducible *timing*, not reproducible answers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global cap set by outer parallel layers (0 = unset).
static FACTOR_THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Caps factorization parallelism machine-wide; `0` clears the cap.
/// Returns the previous cap so callers can restore it.
pub fn set_factor_thread_cap(cap: usize) -> usize {
    FACTOR_THREAD_CAP.swap(cap, Ordering::SeqCst)
}

/// The currently active cap (0 = none).
pub fn factor_thread_cap() -> usize {
    FACTOR_THREAD_CAP.load(Ordering::SeqCst)
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Resolves how many worker threads a factorization should use.
///
/// `requested` is the per-solver setting (0 = auto). See the module
/// docs for the precedence chain.
pub fn resolve_factor_threads(requested: usize) -> usize {
    if let Ok(v) = std::env::var("MEMS_FACTOR_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            return t.max(1);
        }
    }
    if requested > 0 {
        return requested;
    }
    let hw = hardware_threads();
    let cap = factor_thread_cap();
    if cap > 0 {
        cap.min(hw).max(1)
    } else {
        hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_set_and_restore() {
        let prev = set_factor_thread_cap(2);
        assert_eq!(factor_thread_cap(), 2);
        // Explicit request wins over the cap (absent the env var this
        // test can't control reliably, which is exercised in CI).
        if std::env::var("MEMS_FACTOR_THREADS").is_err() {
            assert_eq!(resolve_factor_threads(5), 5);
            let r = resolve_factor_threads(0);
            assert!(r >= 1 && r <= 2.min(hardware_threads()).max(1));
        }
        set_factor_thread_cap(prev);
    }
}
