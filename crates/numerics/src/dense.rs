//! Dense row-major matrices generic over a [`Scalar`].
//!
//! Circuit matrices in this tool chain are small (tens to a few
//! hundred unknowns), so a cache-friendly dense representation with a
//! robust pivoted LU is the pragmatic default; the FE assembly uses
//! the sparse types in [`crate::sparse`] instead.

use crate::complex::Complex64;
use crate::scalar::Scalar;
use crate::{NumericsError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix stored row-major.
///
/// ```
/// use mems_numerics::dense::DenseMatrix;
/// let mut m = DenseMatrix::<f64>::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m.diagonal(), vec![1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix<S: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> DenseMatrix<S> {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
        }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::one();
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[S]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in DenseMatrix::from_rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut m = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of a row.
    pub fn row(&self, i: usize) -> &[S] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of a row.
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The main diagonal.
    pub fn diagonal(&self) -> Vec<S> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Raw data slice, row-major.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Fills every entry with zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        for v in &mut self.data {
            *v = S::zero();
        }
    }

    /// Adds `v` to entry `(i, j)` (the MNA "stamp" primitive).
    pub fn add_at(&mut self, i: usize, j: usize, v: S) {
        let c = self.cols;
        self.data[i * c + j] += v;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[S]) -> Result<Vec<S>> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![S::zero(); self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = S::zero();
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] on inner-dimension
    /// disagreement.
    pub fn mul_mat(&self, b: &DenseMatrix<S>) -> Result<DenseMatrix<S>> {
        if self.cols != b.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                found: b.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == S::zero() {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix<S> {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Maximum entry modulus (the `max |a_ij|` norm).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|v| v.modulus()).fold(0.0, f64::max)
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.modulus()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Returns `true` if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite_scalar())
    }
}

impl DenseMatrix<f64> {
    /// Lifts a real matrix into the complex field.
    pub fn to_complex(&self) -> DenseMatrix<Complex64> {
        DenseMatrix::from_fn(self.rows, self.cols, |i, j| {
            Complex64::from_re(self[(i, j)])
        })
    }

    /// Symmetry defect `max |a_ij - a_ji|` (useful for SPD checks).
    pub fn symmetry_defect(&self) -> f64 {
        let mut d = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols.min(self.rows) {
                d = d.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        d
    }
}

impl<S: Scalar> Index<(usize, usize)> for DenseMatrix<S> {
    type Output = S;
    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for DenseMatrix<S> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<S: Scalar> fmt::Debug for DenseMatrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

/// Dense vector helpers shared across the crate.
pub mod vecops {
    use crate::scalar::Scalar;

    /// Euclidean norm of a real vector.
    pub fn norm2(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm of a real vector.
    pub fn norm_inf(x: &[f64]) -> f64 {
        x.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// Dot product of two real vectors.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `y ← y + alpha·x`.
    pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * *xi;
        }
    }

    /// Component-wise difference `a - b`.
    pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
        a.iter().zip(b).map(|(x, y)| x - y).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(m.is_square());
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.mul_mat(&i).unwrap(), a);
        assert_eq!(i.mul_mat(&a).unwrap(), a);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn mul_vec_rejects_bad_dims() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.mul_vec(&[1.0, 2.0]),
            Err(NumericsError::DimensionMismatch {
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0][..], &[-3.0, 0.5][..]]);
        assert_eq!(a.max_norm(), 3.0);
        assert_eq!(a.inf_norm(), 3.5);
        assert!(a.all_finite());
    }

    #[test]
    fn complex_lift() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let c = a.to_complex();
        assert_eq!(c[(1, 0)], Complex64::from_re(3.0));
    }

    #[test]
    fn stamping_accumulates() {
        let mut a = DenseMatrix::<f64>::zeros(2, 2);
        a.add_at(0, 0, 1.0);
        a.add_at(0, 0, 2.5);
        assert_eq!(a[(0, 0)], 3.5);
    }

    #[test]
    fn vecops_basics() {
        assert_eq!(vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((vecops::norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(vecops::norm_inf(&[-7.0, 2.0]), 7.0);
        let mut y = vec![1.0, 1.0];
        vecops::axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn symmetry_defect_detects_asymmetry() {
        let sym = DenseMatrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 2.0][..]]);
        assert_eq!(sym.symmetry_defect(), 0.0);
        let asym = DenseMatrix::from_rows(&[&[2.0, 1.0][..], &[0.0, 2.0][..]]);
        assert_eq!(asym.symmetry_defect(), 1.0);
    }
}
