//! Scalar abstraction allowing dense factorizations to work for both
//! real (`f64`) and complex ([`Complex64`]) matrices.

use crate::complex::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A field scalar usable by the dense factorization kernels.
///
/// This trait is sealed in spirit: it is implemented for [`f64`] and
/// [`Complex64`] and downstream code is not expected to add more
/// implementations (the solvers are only validated for these two).
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection.
    fn modulus(self) -> f64;
    /// Builds a scalar from a real value.
    fn from_f64(v: f64) -> Self;
    /// Returns `true` if the value is finite.
    fn is_finite_scalar(self) -> bool;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn modulus(self) -> f64 {
        self.abs()
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for Complex64 {
    fn zero() -> Self {
        Complex64::ZERO
    }
    fn one() -> Self {
        Complex64::ONE
    }
    fn modulus(self) -> f64 {
        self.abs()
    }
    fn from_f64(v: f64) -> Self {
        Complex64::from_re(v)
    }
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<S: Scalar>(xs: &[S]) -> S {
        let mut acc = S::zero();
        for &x in xs {
            acc += x;
        }
        acc
    }

    #[test]
    fn works_for_both_scalars() {
        assert_eq!(generic_sum(&[1.0, 2.0, 3.0]), 6.0);
        let z = generic_sum(&[Complex64::new(1.0, 1.0), Complex64::new(2.0, -1.0)]);
        assert_eq!(z, Complex64::new(3.0, 0.0));
        assert_eq!(f64::one().modulus(), 1.0);
        assert!(Complex64::from_f64(2.0).is_finite_scalar());
    }
}
