//! Scale check: ordering cost, supernodal fill parity, and cold-factor
//! time under AMD vs ND vs the ordering cache on grid MNA patterns.
use mems_numerics::ordering::{amd_order, clear_cache, nd_order, FillOrdering};
use mems_numerics::sparse_lu::{CscView, SparseLu};
use mems_numerics::supernodal::{clear_symbolic_cache, SupernodalLu};
use std::time::Instant;

fn edges_mna(nn: usize, edges: &[(usize, usize)]) -> (usize, Vec<usize>, Vec<usize>, Vec<f64>) {
    let n = nn + 2 * edges.len();
    let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut add = |r: usize, c: usize| cols[c].push(r);
    for (e, &(a, b)) in edges.iter().enumerate() {
        let vel = nn + 2 * e;
        let fb = nn + 2 * e + 1;
        add(a, a);
        add(b, b);
        add(a, b);
        add(b, a);
        add(vel, a);
        add(vel, b);
        add(a, vel);
        add(b, vel);
        add(vel, vel);
        add(vel, fb);
        add(fb, vel);
        add(fb, fb);
    }
    add(0, 0);
    add(nn - 1, nn - 1);
    let mut col_ptr = vec![0usize; n + 1];
    let mut row_idx = Vec::new();
    let mut values = Vec::new();
    for (c, mut rows) in cols.into_iter().enumerate() {
        rows.sort_unstable();
        rows.dedup();
        col_ptr[c + 1] = col_ptr[c] + rows.len();
        for &r in &rows {
            values.push(if r == c { 8.0 } else { -1.0 });
        }
        row_idx.extend(rows);
    }
    (n, col_ptr, row_idx, values)
}

fn grid_edges(rows: usize, cols: usize) -> (usize, Vec<(usize, usize)>) {
    let node = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((node(r, c), node(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((node(r, c), node(r + 1, c)));
            }
        }
    }
    (rows * cols, edges)
}

fn grid3d_edges(q: usize) -> (usize, Vec<(usize, usize)>) {
    let node = |x: usize, y: usize, z: usize| (z * q + y) * q + x;
    let mut edges = Vec::new();
    for z in 0..q {
        for y in 0..q {
            for x in 0..q {
                if x + 1 < q {
                    edges.push((node(x, y, z), node(x + 1, y, z)));
                }
                if y + 1 < q {
                    edges.push((node(x, y, z), node(x, y + 1, z)));
                }
                if z + 1 < q {
                    edges.push((node(x, y, z), node(x, y, z + 1)));
                }
            }
        }
    }
    (q * q * q, edges)
}

fn snl_report(tag: &str, a: &CscView<'_, f64>, ordering: FillOrdering, scalar_fill: usize) {
    let t = Instant::now();
    let lu = SupernodalLu::factor(a, ordering, 0).expect("factor");
    let cold = t.elapsed().as_secs_f64() * 1e3;
    let (l, u) = lu.nnz();
    let (el, eu) = lu.exact_nnz();
    println!(
        "  {tag:<12} cold {cold:8.1} ms  order {:6.1} ms ({})  stored {:>9}  exact {:>9}  pad {:.3}  vs-scalar {:.3}",
        lu.order_us() as f64 / 1e3,
        lu.order_source(),
        l + u,
        el + eu,
        (l + u) as f64 / (el + eu) as f64,
        if scalar_fill > 0 {
            (l + u) as f64 / scalar_fill as f64
        } else {
            f64::NAN
        },
    );
}

fn main() {
    let all = std::env::var_os("ND_SCALE_ALL").is_some();
    let mut tiers = vec![(
        "grid_101",
        grid_edges(101, 101).0,
        grid_edges(101, 101).1,
        true,
    )];
    if all {
        tiers.push(("grid3d_31", grid3d_edges(31).0, grid3d_edges(31).1, false));
    }
    for (tag, nn, edges, scalar) in tiers {
        let (n, cp, ri, vals) = edges_mna(nn, &edges);
        let a = CscView {
            n,
            col_ptr: &cp,
            row_idx: &ri,
            values: &vals,
        };
        let t0 = Instant::now();
        let amd = amd_order(n, &cp, &ri);
        let t_amd = t0.elapsed();
        let t1 = Instant::now();
        let nd = nd_order(n, &cp, &ri);
        let t_nd = t1.elapsed();
        drop((amd, nd));
        let scalar_fill = if scalar {
            let t = Instant::now();
            let order = amd_order(n, &cp, &ri);
            let slu = SparseLu::factor_ordered(&a, &order).expect("scalar factor");
            let (sl, su) = slu.nnz();
            println!(
                "{tag}: n={n} | raw amd {:.1} ms nd {:.1} ms | scalar cold {:.1} ms fill {}",
                t_amd.as_secs_f64() * 1e3,
                t_nd.as_secs_f64() * 1e3,
                t.elapsed().as_secs_f64() * 1e3,
                sl + su,
            );
            sl + su
        } else {
            println!(
                "{tag}: n={n} | raw amd {:.1} ms nd {:.1} ms | scalar skipped",
                t_amd.as_secs_f64() * 1e3,
                t_nd.as_secs_f64() * 1e3,
            );
            0
        };
        clear_cache();
        clear_symbolic_cache();
        snl_report("snl amd", &a, FillOrdering::Amd, scalar_fill);
        snl_report("snl nd", &a, FillOrdering::Nd, scalar_fill);
        snl_report("snl nd(hit)", &a, FillOrdering::Nd, scalar_fill);
    }
    if !all {
        return;
    }
    // The 10⁶-class tier: ND + supernodal only (AMD is impractical).
    let (nn, edges) = grid3d_edges(52);
    let (n, cp, ri, vals) = edges_mna(nn, &edges);
    let a = CscView {
        n,
        col_ptr: &cp,
        row_idx: &ri,
        values: &vals,
    };
    println!("grid3d_52: n={n}");
    clear_cache();
    clear_symbolic_cache();
    snl_report("snl nd", &a, FillOrdering::Nd, 0);
}
