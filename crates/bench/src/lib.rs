//! Shared helpers for the benchmark harness.
//!
//! Each bench in `benches/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4) and prints the reproduced rows/series
//! once before timing the underlying computation with criterion.

/// Prints a Markdown-style table header once per bench run.
pub fn print_banner(id: &str, what: &str) {
    eprintln!("\n=== {id}: {what} ===");
}
