//! `mems serve` round-trip latency: deck submission → first streamed
//! point result, over real HTTP against an in-process daemon.
//!
//! Two cases bound the artifact cache's win:
//! - **cold**: every iteration submits a never-seen deck (a comment
//!   line varies), so the server parses, elaborates, and runs the
//!   symbolic analysis from scratch;
//! - **warm**: every iteration resubmits the same deck, so the
//!   fingerprint cache supplies the parsed deck, the expanded point
//!   list, and pooled contexts whose circuits are patched in place.
//!
//! The tracked number keeps the cache honest: BENCH_*.json records
//! the cold/warm ratio instead of quoting it in prose.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

const SWEEP_DECK: &str = "serve roundtrip divider\n\
    .param rload=1k\n\
    Vs in 0 6\n\
    R1 in out 1k\n\
    R2 out 0 {rload}\n\
    .op\n\
    .print op v(out)\n\
    .step param rload 500 2000 100\n";

/// One-shot HTTP request; returns the response body.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status");
    assert!(line.contains("200") || line.contains("201"), "{line}");
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = v.trim().parse().expect("length");
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf8")
}

/// Submits a deck and blocks on the chunked results stream until the
/// first point record arrives; returns once it has. One streaming
/// GET replaces the old poll loop — the server pushes each record the
/// moment it exists, so this measures true submit→first-result
/// latency, not a poll interval.
fn submit_to_first_result(addr: SocketAddr, deck: &str) {
    let created = http(addr, "POST", "/v1/jobs", deck);
    let id: u64 = created
        .split_once("\"id\":")
        .and_then(|(_, rest)| rest.split(',').next())
        .and_then(|n| n.parse().ok())
        .expect("job id");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "GET /v1/jobs/{id}/results HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .expect("write");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status");
    assert!(line.contains("200"), "{line}");
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        if line.trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
    }
    // Prelude chunk, then record chunks; the first record carries an
    // `"index"` member.
    while let Some(chunk) = mems_serve::http::read_chunk(&mut reader).expect("chunk") {
        if String::from_utf8_lossy(&chunk).contains("\"index\"") {
            return;
        }
    }
    panic!("stream ended without a record");
}

fn bench_roundtrip(c: &mut Criterion) {
    mems_bench::print_banner(
        "serve round-trip",
        "submit → first streamed result, cold parse vs fingerprint-warm cache",
    );
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let mut group = c.benchmark_group("serve_roundtrip");
    group.sample_size(10);
    let mut serial = 0u64;
    group.bench_function("cold_submit_to_first_result", |b| {
        b.iter(|| {
            // A changed comment line is a new fingerprint: the cache
            // cannot help, the server re-parses and re-elaborates.
            serial += 1;
            let deck = format!("{SWEEP_DECK}* cold variant {serial}\n");
            submit_to_first_result(addr, &deck);
        })
    });
    // Prime the cache once, then every iteration is a pure hit.
    submit_to_first_result(addr, SWEEP_DECK);
    group.bench_function("warm_submit_to_first_result", |b| {
        b.iter(|| submit_to_first_result(addr, SWEEP_DECK))
    });
    group.finish();

    server.shutdown();
    server.join();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
