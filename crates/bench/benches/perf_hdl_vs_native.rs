//! The paper's performance claim: "The drawback is a strong penalty
//! in simulation performance (a factor of 10 was observed)" for
//! behavioral HDL models vs native circuit elements.
//!
//! Criterion times the same fixed-step Fig. 3 transient with the
//! interpreted HDL-A transducer and with the native linearized
//! equivalent circuit; the printed ratio is the reproduced "factor".

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::experiments::perf::run_comparison;
use mems_core::{ElectricalStyle, LinearizedKind, TransducerResonatorSystem, TransducerVariant};
use mems_spice::analysis::transient::{run, TranOptions};
use mems_spice::solver::SimOptions;

fn bench(c: &mut Criterion) {
    mems_bench::print_banner(
        "§Comparison",
        "behavioral HDL model vs native equivalent circuit (\"factor of 10\")",
    );
    let r = run_comparison(30e-3, 10e-6, 3).expect("comparison runs");
    eprintln!(
        "fixed-step transient, {} steps: behavioral {:.3} ms, native {:.3} ms",
        r.steps,
        r.behavioral_seconds * 1e3,
        r.native_seconds * 1e3
    );
    eprintln!(
        "slowdown factor: {:.1}x (paper observed ~10x on 1997 compilers)",
        r.slowdown
    );

    let sys = TransducerResonatorSystem::table4(TransducerResonatorSystem::fig5_pulse(10.0));
    let sim = SimOptions::default();
    let opts = TranOptions::fixed_step(20e-3, 10e-6);
    let mut group = c.benchmark_group("perf");
    group.sample_size(10);
    group.bench_function("behavioral_hdl_fixed_step", |b| {
        b.iter(|| {
            let mut ckt = sys
                .build(TransducerVariant::Behavioral(ElectricalStyle::PaperStyle))
                .unwrap();
            run(&mut ckt, &opts, &sim).unwrap()
        })
    });
    group.bench_function("native_equivalent_fixed_step", |b| {
        b.iter(|| {
            let mut ckt = sys
                .build(TransducerVariant::Linearized(LinearizedKind::Secant))
                .unwrap();
            run(&mut ckt, &opts, &sim).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
