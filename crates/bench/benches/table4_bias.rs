//! Table 4 bench: the transducer–resonator system parameters and the
//! derived bias quantities (x₀, C₀, Γ) — prints paper-vs-computed and
//! times the equilibrium solve.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::experiments::tables::{table4, Table4Paper};
use mems_core::TransverseElectrostatic;

fn bench(c: &mut Criterion) {
    mems_bench::print_banner("Table 4", "system parameters and derived bias quantities");
    let d = table4().expect("bias solve succeeds");
    eprintln!("quantity              paper           computed");
    eprintln!(
        "x0  [m]               {:<15.6e} {:<15.6e}",
        Table4Paper::X0,
        d.x0
    );
    eprintln!(
        "C0  [F]               {:<15.6e} {:<15.6e}",
        Table4Paper::C0,
        d.c0
    );
    eprintln!(
        "Γ   [N/V] (printed)   {:<15.6e} tangent {:.6e} / secant {:.6e}",
        Table4Paper::GAMMA,
        d.gamma_tangent,
        d.gamma_secant
    );
    eprintln!(
        "F0  [N]               {:<15} {:<15.6e}",
        "(not printed)", d.f0
    );
    eprintln!(
        "note: the paper's printed Γ is inconsistent with its own parameters; \
         see EXPERIMENTS.md"
    );

    let t = TransverseElectrostatic::table4();
    c.bench_function("table4/static_equilibrium_solve", |b| {
        b.iter(|| std::hint::black_box(t.static_displacement(10.0, 200.0).unwrap()))
    });
    c.bench_function("table4/derived_quantities", |b| {
        b.iter(|| std::hint::black_box(table4().unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
