//! §PXT harmonic bench: harmonic FE analysis → rational-function fit
//! → data-flow HDL model — prints the workflow metrics and times the
//! harmonic solve and the fit.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::experiments::harmonic;
use mems_fem::beam::CantileverBeam;
use mems_fem::FrequencyResponse;
use mems_pxt::fit_rational;

fn bench(c: &mut Criterion) {
    mems_bench::print_banner(
        "§PXT harmonic",
        "FE frequency response → polynomial filter → data-flow model",
    );
    let r = harmonic::run().expect("harmonic workflow runs");
    eprintln!("cantilever first mode        : {:.1} Hz", r.f1);
    eprintln!("rational fit error           : {:.3e}", r.fit_error);
    eprintln!(
        "AC roundtrip error           : {:.3e}",
        r.ac_roundtrip_error
    );
    eprintln!("generated model order        : {}", r.order);

    // Standalone pieces for timing.
    let width = 50e-6_f64;
    let thickness = 5e-6_f64;
    let inertia = width * thickness.powi(3) / 12.0;
    let beam = CantileverBeam::new(500e-6, 169e9, inertia, 2329.0 * width * thickness, 10)
        .with_rayleigh_damping(1e4, 0.0);
    let f1 = beam.natural_frequencies(1).unwrap()[0];
    let freqs: Vec<f64> = (0..40)
        .map(|i| f1 * (0.2 + 1.8 * i as f64 / 39.0))
        .collect();
    let h = beam.harmonic_tip_response(&freqs).unwrap();
    let response = FrequencyResponse::new(freqs.clone(), h);

    let mut group = c.benchmark_group("harmonic");
    group.sample_size(20);
    group.bench_function("fe_harmonic_sweep_40pts", |b| {
        b.iter(|| beam.harmonic_tip_response(&freqs).unwrap())
    });
    group.bench_function("rational_fit_2_2", |b| {
        b.iter(|| fit_rational(&response, 2, 2).unwrap())
    });
    group.bench_function("modal_analysis", |b| {
        b.iter(|| beam.natural_frequencies(2).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
