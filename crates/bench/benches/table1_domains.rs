//! Table 1 bench: generalized variables for different physical
//! domains — prints the reproduced table and times its construction.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::analogy::{map_damper, map_mass, map_spring, table1, MechanicalAnalogy};

fn bench(c: &mut Criterion) {
    mems_bench::print_banner("Table 1", "generalized variables for physical domains");
    eprintln!("{}", mems_core::analogy::render_table1());
    eprintln!("FI analogy (paper's choice): mass → C = m, spring → L = 1/k, damper → R = 1/α");

    c.bench_function("table1/build_rows", |b| {
        b.iter(|| std::hint::black_box(table1()))
    });
    c.bench_function("table1/fi_mapping", |b| {
        b.iter(|| {
            let a = MechanicalAnalogy::ForceCurrent;
            std::hint::black_box((
                map_mass(a, 1e-4),
                map_spring(a, 200.0),
                map_damper(a, 40e-3),
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
