//! Batch `.STEP` throughput: the sparse backend with shared symbolic
//! factorization against the per-point dense re-factor baseline.
//!
//! The workload is a 120-section nonlinear RC ladder (121 node
//! unknowns + the source branch — well past the dense comfort zone)
//! swept over 100 `.STEP` points of its load resistance. Every point
//! has identical topology, so the sparse path analyzes the Jacobian
//! structure once per worker and replays the numeric factorization
//! for all remaining Newton iterations and batch points; the dense
//! path pays a full `O(n³)` factorization per iteration per point.
//!
//! A second group times the raw kernels on a banded system:
//! dense factor vs sparse full factor vs sparse numeric-only
//! refactor.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_netlist::{run_batch, BatchOptions, Deck};
use mems_numerics::dense::DenseMatrix;
use mems_numerics::lu::LuFactors;
use mems_numerics::sparse_lu::{CscMatrix, SparseLu};
use std::fmt::Write as _;

const SECTIONS: usize = 120;
const STEP_POINTS: usize = 100;

/// Generates the ladder deck, optionally forcing a backend.
fn ladder_deck(sections: usize, sparse: bool) -> String {
    let mut d = String::new();
    let _ = writeln!(d, "nonlinear rc ladder .step sweep");
    let _ = writeln!(d, ".options sparse={}", if sparse { 1 } else { 0 });
    let _ = writeln!(d, ".param rload=1k");
    let _ = writeln!(d, "Vs n0 0 5");
    for i in 1..=sections {
        let _ = writeln!(d, "R{i} n{} n{i} 100", i - 1);
        let _ = writeln!(d, "C{i} n{i} 0 1n");
    }
    // Quadratic sink at the ladder tail: keeps the operating point
    // nonlinear so each batch point costs several Newton iterations.
    let _ = writeln!(d, "Bq n{sections} 0 n{sections} 0 n{sections} 0 1e-4");
    let _ = writeln!(d, "Rl n{sections} 0 {{rload}}");
    let _ = writeln!(d, ".op");
    let _ = writeln!(d, ".print op v(n{sections})");
    // 100 inclusive points: 500 Ω → 2480 Ω in 20 Ω steps.
    let step = 1980 / (STEP_POINTS - 1);
    let _ = writeln!(
        d,
        ".step param rload 500 {} {}",
        500 + step * (STEP_POINTS - 1),
        step
    );
    d
}

fn bench_batch(c: &mut Criterion) {
    mems_bench::print_banner(
        "batch .STEP sweep",
        "sparse + shared-symbolic batch path vs per-point dense re-factor",
    );
    for (id, sparse) in [("dense_per_point", false), ("sparse_shared_symbolic", true)] {
        let src = ladder_deck(SECTIONS, sparse);
        let deck = Deck::parse(&src).expect("ladder deck parses");
        // Sanity outside the timed region: every point must simulate.
        let check = run_batch(&deck, &BatchOptions::with_threads(1)).expect("batch runs");
        assert_eq!(check.ok_count(), STEP_POINTS, "{id}: points failed");
        let mut group = c.benchmark_group("step_sweep_100pt_121unknowns");
        group.sample_size(10);
        group.bench_function(id, |b| {
            b.iter(|| run_batch(&deck, &BatchOptions::with_threads(1)).expect("batch runs"))
        });
        group.finish();
    }
}

fn bench_kernels(c: &mut Criterion) {
    mems_bench::print_banner(
        "LU kernels",
        "dense factor vs sparse full factor vs sparse numeric refactor",
    );
    // Banded SPD-ish system, n = 400, bandwidth 4.
    let n = 400;
    let mut triplets = Vec::new();
    for i in 0..n {
        triplets.push((i, i, 8.0 + (i % 7) as f64));
        for k in 1..=4usize {
            if i >= k {
                triplets.push((i, i - k, -1.0 / k as f64));
                triplets.push((i - k, i, -1.0 / k as f64));
            }
        }
    }
    let csc = CscMatrix::from_triplets(n, &triplets);
    let mut dense = DenseMatrix::<f64>::zeros(n, n);
    for &(i, j, v) in &triplets {
        dense[(i, j)] += v;
    }

    let mut group = c.benchmark_group("lu_banded_n400");
    group.sample_size(10);
    group.bench_function("dense_factor", |b| {
        b.iter(|| LuFactors::factor(&dense).expect("factors"))
    });
    group.bench_function("sparse_full_factor", |b| {
        b.iter(|| SparseLu::factor(&csc.view()).expect("factors"))
    });
    let mut lu = SparseLu::factor(&csc.view()).expect("factors");
    group.bench_function("sparse_numeric_refactor", |b| {
        b.iter(|| lu.refactor(&csc.view()).expect("refactors"))
    });
    group.finish();
}

criterion_group!(benches, bench_batch, bench_kernels);
criterion_main!(benches);
