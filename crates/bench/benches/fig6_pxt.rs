//! Figure 6 bench: PXT force extraction from the FE field solution —
//! prints FE-vs-analytic force (the figure's headline number) and
//! times the field solve + Maxwell stress integration.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::experiments::fig6;
use mems_pxt::recipes::PlateGapDut;

fn bench(c: &mut Criterion) {
    mems_bench::print_banner(
        "Figure 6",
        "PXT electrostatic force extraction from FE analysis",
    );
    let r = fig6::run().expect("fig6 workflow runs");
    eprintln!(
        "FE force (Maxwell stress) at 10 V, x = 0 : {:.6e} N",
        r.force_fe
    );
    eprintln!(
        "analytic Table 3 force at the same point : {:.6e} N",
        r.force_analytic
    );
    eprintln!(
        "relative error                           : {:.3e}",
        r.force_rel_error
    );
    eprintln!(
        "C(x) polynomial fit error                : {:.3e}",
        r.cap_fit_error
    );
    eprintln!(
        "generated-model roundtrip force error    : {:.3e}",
        r.roundtrip_error
    );

    let dut = PlateGapDut::table4();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(20);
    group.bench_function("fe_solve_and_force", |b| {
        b.iter(|| dut.force(10.0, 0.0).unwrap())
    });
    group.bench_function("fe_capacitance", |b| {
        b.iter(|| dut.capacitance(0.0).unwrap())
    });
    group.bench_function("full_workflow", |b| b.iter(|| fig6::run().unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
