//! Table 3 bench: effort expressions derived from the transducer
//! energies — prints the symbolic-vs-closed-form verification and
//! times the full energy-recipe derivation (symbolic differentiation
//! + simplification + HDL generation).

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::experiments::tables::table3;
use mems_core::{ElectricalStyle, TransverseElectrostatic};

fn bench(c: &mut Criterion) {
    mems_bench::print_banner(
        "Table 3",
        "voltages and forces derived from transducer energies",
    );
    eprintln!(
        "{:<30} {:>16} {:>16} {:>12}",
        "transducer", "force derived", "force closed", "rel error"
    );
    for row in table3().expect("derivations succeed") {
        eprintln!(
            "{:<30} {:>16.6e} {:>16.6e} {:>12.3e}",
            row.label, row.force_derived, row.force_closed, row.rel_error
        );
    }

    let model = TransverseElectrostatic::table4().energy_model();
    c.bench_function("table3/symbolic_derivation", |b| {
        b.iter(|| std::hint::black_box(model.derive().unwrap()))
    });
    c.bench_function("table3/full_hdl_generation", |b| {
        b.iter(|| std::hint::black_box(model.to_hdl_source(ElectricalStyle::PaperStyle).unwrap()))
    });
    c.bench_function("table3/verify_all_rows", |b| {
        b.iter(|| std::hint::black_box(table3().unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
