//! Figure 5 bench: the headline transient comparison — prints the
//! reproduced series (match at 10 V, overshoot at 5 V, undershoot at
//! 15 V) and times one behavioral and one linearized transient.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::experiments::fig5::{run, Fig5Options};
use mems_core::{ElectricalStyle, LinearizedKind, TransducerResonatorSystem, TransducerVariant};
use mems_spice::solver::SimOptions;

fn bench(c: &mut Criterion) {
    mems_bench::print_banner(
        "Figure 5",
        "linearized equivalent circuit vs behavioral HDL-A model",
    );
    let result = run(&Fig5Options::default()).expect("fig5 runs");
    eprintln!("{}", result.render());

    let sys = TransducerResonatorSystem::table4(TransducerResonatorSystem::fig5_pulse(10.0));
    let sim = SimOptions::default();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("behavioral_transient_90ms", |b| {
        b.iter(|| {
            sys.simulate(
                TransducerVariant::Behavioral(ElectricalStyle::PaperStyle),
                90e-3,
                &sim,
            )
            .unwrap()
        })
    });
    group.bench_function("linearized_transient_90ms", |b| {
        b.iter(|| {
            sys.simulate(
                TransducerVariant::Linearized(LinearizedKind::Secant),
                90e-3,
                &sim,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
