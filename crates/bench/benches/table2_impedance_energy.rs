//! Table 2 bench: input impedances and internal energies of the four
//! transducers — prints the reproduced rows and times the model
//! evaluations.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_core::experiments::tables::table2;
use mems_core::TransverseElectrostatic;

fn bench(c: &mut Criterion) {
    mems_bench::print_banner(
        "Table 2",
        "impedances and energies of electromechanical transducers",
    );
    eprintln!(
        "{:<30} {:<28} {:>14} {:>14}",
        "transducer", "impedance", "value", "energy [J]"
    );
    for row in table2() {
        eprintln!(
            "{:<30} {:<28} {:>14.6e} {:>14.6e}",
            row.label, row.impedance_desc, row.impedance_value, row.energy_value
        );
    }
    eprintln!("(paper prints C0 = 5.8637 pF; we compute 5.9028 pF — see EXPERIMENTS.md)");

    let t = TransverseElectrostatic::table4();
    c.bench_function("table2/all_rows", |b| {
        b.iter(|| std::hint::black_box(table2()))
    });
    c.bench_function("table2/capacitance_eval", |b| {
        b.iter(|| std::hint::black_box(t.capacitance(std::hint::black_box(1e-8))))
    });
    c.bench_function("table2/coenergy_eval", |b| {
        b.iter(|| std::hint::black_box(t.coenergy(10.0, std::hint::black_box(1e-8))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
