//! Fill-reducing ordering and the supernodal engine on the meshed
//! scale tiers: natural-order vs AMD-permuted scalar LU at n ≈ 100 /
//! 400 / 1600, then scalar-AMD vs supernodal at n ≈ 6.4k (3-D grid),
//! 8.2k (FEM quad mesh), 12.8k and 50.6k (2-D grids).
//!
//! Kernel groups factor the MNA matrix of a grid of electromechanical
//! cells (the same structure `mems_netlist::gen::grid_deck` /
//! `grid3d_deck` elaborate: an electrical stencil with a
//! gyrator-coupled velocity node and spring-force branch per edge),
//! timing the full symbolic+numeric factorization and the
//! numeric-only refactor. The fill (nnz of L and U) is printed per
//! size — the quantity the ordering actually optimizes.
//!
//! A deck-level group runs the generated grid deck end-to-end
//! (`.OP` through the netlist frontend) with `order=natural` vs
//! `order=amd` vs `order=nd` on the forced-sparse backend.
//!
//! The supernodal tiers carry three cold-factor series per mesh: the
//! true-cold AMD and ND paths (ordering + symbolic caches cleared
//! every iteration — what a never-seen pattern costs end to end) and
//! the cached path (both caches warm — what a resubmitted pattern
//! costs, which should land near the numeric-only refactor). The
//! scale group adds the n ≈ 2·10⁵ 3-D tier; the ~10⁶ tier runs its
//! ordering series always and its (multi-minute) factor only outside
//! `MEMS_BENCH_QUICK`.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_fem::mesh::StructuredQuadMesh;
use mems_netlist::gen::{grid_deck_with, GridDeckOptions};
use mems_netlist::{run_deck, Deck};
use mems_numerics::ordering::{amd_order, clear_cache, nd_order, FillOrdering};
use mems_numerics::sparse_lu::{CscMatrix, SparseLu};
use mems_numerics::supernodal::{clear_symbolic_cache, SupernodalLu};

/// Assembles the DC/transient-style MNA matrix of an
/// electromechanical cell graph over `nn` electrical nodes and the
/// given edge list: per edge an R‖C link (conductance stamp), a
/// gyrator coupling into a private velocity unknown (mass/damper on
/// the diagonal), and a spring-force branch row. Matches the sparsity
/// structure the deck generators produce, at `n = nn + 2·edges`.
fn edges_mna(nn: usize, edges: &[(usize, usize)]) -> (usize, CscMatrix<f64>) {
    let n = nn + 2 * edges.len();
    let (g, gm, alpha, m_h, k_h) = (1e-3, 2e-4, 2e-3, 1e-2, 5e-2);
    let mut t: Vec<(usize, usize, f64)> = Vec::with_capacity(12 * edges.len());
    for (e, &(a, b)) in edges.iter().enumerate() {
        let vel = nn + 2 * e;
        let fb = nn + 2 * e + 1;
        // Electrical link.
        t.push((a, a, g));
        t.push((b, b, g));
        t.push((a, b, -g));
        t.push((b, a, -g));
        // Gyrator coupling (skew): current into the electrical nodes
        // from the velocity, force into the velocity from the
        // electrical across.
        t.push((vel, a, gm));
        t.push((vel, b, -gm));
        t.push((a, vel, -gm));
        t.push((b, vel, gm));
        // Mass + damper on the velocity diagonal.
        t.push((vel, vel, alpha + m_h));
        // Spring-force branch: vel row carries the force, the branch
        // row relates force and integrated velocity.
        t.push((vel, fb, 1.0));
        t.push((fb, vel, -k_h));
        t.push((fb, fb, 1.0));
    }
    // Drive tie at one corner, load at the other: keeps the system
    // nonsingular exactly like the deck's source + load do.
    t.push((0, 0, 1.0));
    t.push((nn - 1, nn - 1, 1e-3));
    (n, CscMatrix::from_triplets(n, &t))
}

/// 5-point-stencil edge list of a `rows × cols` grid.
fn grid_edges(rows: usize, cols: usize) -> (usize, Vec<(usize, usize)>) {
    let node = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((node(r, c), node(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((node(r, c), node(r + 1, c)));
            }
        }
    }
    (rows * cols, edges)
}

/// 7-point-stencil edge list of an `nx × ny × nz` grid — the
/// structure `grid3d_deck` elaborates.
fn grid3d_edges(nx: usize, ny: usize, nz: usize) -> (usize, Vec<(usize, usize)>) {
    let node = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((node(x, y, z), node(x + 1, y, z)));
                }
                if y + 1 < ny {
                    edges.push((node(x, y, z), node(x, y + 1, z)));
                }
                if z + 1 < nz {
                    edges.push((node(x, y, z), node(x, y, z + 1)));
                }
            }
        }
    }
    (nx * ny * nz, edges)
}

/// Unique element edges of a structured FEM quad mesh — the
/// "imported mesh" tier: cells riding a mesh that came from the
/// plate/membrane discretization rather than a synthetic grid.
fn fem_mesh_edges(nx: usize, ny: usize) -> (usize, Vec<(usize, usize)>) {
    let mesh = StructuredQuadMesh::rectangle(0.0, 0.0, 1.0, 1.0, nx, ny);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for quad in mesh.elems() {
        for k in 0..4 {
            let (a, b) = (quad[k], quad[(k + 1) % 4]);
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    (mesh.n_nodes(), edges)
}

/// Grid MNA by grid shape (the historic n ≈ 100/400/1600 tiers).
fn grid_mna(rows: usize, cols: usize) -> (usize, CscMatrix<f64>) {
    let (nn, edges) = grid_edges(rows, cols);
    edges_mna(nn, &edges)
}

fn bench_kernels(c: &mut Criterion) {
    mems_bench::print_banner(
        "batch_ordering",
        "natural vs AMD fill/factor/refactor on grid-cell MNA matrices",
    );
    // n = rows·cols + 2·edges ⇒ 105 / 412 / 1636 unknowns.
    for (rows, cols) in [(5usize, 5usize), (9, 10), (18, 19)] {
        let (n, csc) = grid_mna(rows, cols);
        let order = amd_order(n, &csc.col_ptr, &csc.row_idx);
        let lu_nat = SparseLu::factor(&csc.view()).expect("natural factors");
        let lu_amd = SparseLu::factor_ordered(&csc.view(), &order).expect("amd factors");
        let (ln, un) = lu_nat.nnz();
        let (la, ua) = lu_amd.nnz();
        eprintln!(
            "  n={n} ({rows}x{cols} grid): fill natural L+U = {} | amd L+U = {} ({:.2}x less)",
            ln + un,
            la + ua,
            (ln + un) as f64 / (la + ua) as f64
        );
        let mut group = c.benchmark_group(&format!("ordering_lu_n{n}"));
        group.sample_size(10);
        group.bench_function("natural_factor", |b| {
            b.iter(|| SparseLu::factor(&csc.view()).expect("factors"))
        });
        group.bench_function("amd_factor", |b| {
            b.iter(|| SparseLu::factor_ordered(&csc.view(), &order).expect("factors"))
        });
        group.bench_function("amd_order_symbolic", |b| {
            b.iter(|| amd_order(n, &csc.col_ptr, &csc.row_idx))
        });
        let mut nat = lu_nat.clone();
        group.bench_function("natural_refactor", |b| {
            b.iter(|| nat.refactor(&csc.view()).expect("refactors"))
        });
        let mut amd = lu_amd.clone();
        group.bench_function("amd_refactor", |b| {
            b.iter(|| amd.refactor(&csc.view()).expect("refactors"))
        });
        group.finish();
    }
}

/// The scale tiers the supernodal engine was built for: scalar-AMD vs
/// supernodal factor/refactor on meshed MNA systems at n ≈ 6.4k–50k.
/// `threads = 0` lets [`mems_numerics::par`] resolve the budget
/// (hardware cores, `MEMS_FACTOR_THREADS` override) — on a single-core
/// host every level runs inline, so the numbers isolate the
/// algorithmic win (symbolic-once + dense panels over per-column DFS).
fn bench_supernodal(c: &mut Criterion) {
    mems_bench::print_banner(
        "supernodal tiers",
        "scalar-AMD vs supernodal level-scheduled LU on large meshed MNA",
    );
    let tiers = vec![
        ("grid3d_10", grid3d_edges(10, 10, 10)),
        ("femquad_40", fem_mesh_edges(40, 40)),
        ("grid_51", grid_edges(51, 51)),
        ("grid_101", grid_edges(101, 101)),
    ];
    for (tag, (nn, edges)) in &tiers {
        let (n, csc) = edges_mna(*nn, edges);
        let view = csc.view();
        let snl = SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 0).expect("snl factors");
        let (lnz, unz) = snl.nnz();
        eprintln!(
            "  n={n} ({tag}): supernodal fill L+U = {} | {} supernodes, {} levels, {} thread(s)",
            lnz + unz,
            snl.supernodes(),
            snl.levels(),
            snl.threads_used(),
        );
        let mut group = c.benchmark_group(&format!("ordering_lu_n{n}_{tag}"));
        group.sample_size(10);
        // The scalar engine is the PR-6 baseline; past ~20k unknowns a
        // single factor takes whole seconds, so the largest tier is
        // supernodal-only (the baseline datum exists at n≈13k).
        if n < 60_000 {
            let order = amd_order(n, &csc.col_ptr, &csc.row_idx);
            let mut scalar = SparseLu::factor_ordered(&view, &order).expect("factors");
            let (sl, su) = scalar.nnz();
            eprintln!("    scalar-AMD fill L+U = {}", sl + su);
            group.bench_function("scalar_amd_factor", |b| {
                b.iter(|| SparseLu::factor_ordered(&view, &order).expect("factors"))
            });
            group.bench_function("scalar_amd_refactor", |b| {
                b.iter(|| scalar.refactor(&view).expect("refactors"))
            });
        }
        group.bench_function("amd_order_symbolic", |b| {
            b.iter(|| amd_order(n, &csc.col_ptr, &csc.row_idx))
        });
        group.bench_function("snl_factor", |b| {
            b.iter(|| SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 0).expect("factors"))
        });
        let mut warm = SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 0).expect("factors");
        group.bench_function("snl_refactor", |b| {
            b.iter(|| warm.refactor(&view).expect("refactors"))
        });
        group.bench_function("nd_order_symbolic", |b| {
            b.iter(|| nd_order(n, &csc.col_ptr, &csc.row_idx))
        });
        // True-cold paths: both machine-wide caches dropped every
        // iteration, so the series is ordering + analysis + numeric —
        // what a never-seen pattern costs on first contact.
        group.bench_function("snl_amd_cold_factor", |b| {
            b.iter(|| {
                clear_cache();
                clear_symbolic_cache();
                SupernodalLu::<f64>::factor(&view, FillOrdering::Amd, 0).expect("factors")
            })
        });
        group.bench_function("snl_nd_cold_factor", |b| {
            b.iter(|| {
                clear_cache();
                clear_symbolic_cache();
                SupernodalLu::<f64>::factor(&view, FillOrdering::Nd, 0).expect("factors")
            })
        });
        // Cached path: a cold factor of a *seen* pattern — the
        // symbolic cache replays the whole analysis, so this should
        // land near the numeric-only refactor.
        let mut nd_warm = SupernodalLu::<f64>::factor(&view, FillOrdering::Nd, 0).expect("factors");
        let (nl, nu) = nd_warm.nnz();
        eprintln!("    supernodal-ND fill L+U = {}", nl + nu);
        group.bench_function("snl_nd_cached_factor", |b| {
            b.iter(|| SupernodalLu::<f64>::factor(&view, FillOrdering::Nd, 0).expect("factors"))
        });
        group.bench_function("snl_nd_refactor", |b| {
            b.iter(|| nd_warm.refactor(&view).expect("refactors"))
        });
        group.finish();
    }
}

/// The tiers the ND ordering exists for: 3-D meshes at n ≈ 2·10⁵ and
/// ~10⁶, where minimum degree's ordering time and separator-tree fill
/// both fall behind nested dissection. Scalar LU and the AMD ordering
/// are out of reach here (AMD alone takes ~24 s at n ≈ 2·10⁵ on one
/// core), so the series are ND + cached + refactor only; the ~10⁶
/// tier times its ordering always and its multi-minute factor only
/// outside `MEMS_BENCH_QUICK` (`examples/nd_scale.rs` in
/// `mems-numerics` exercises the full 10⁶ factor standalone).
fn bench_scale_tiers(c: &mut Criterion) {
    mems_bench::print_banner(
        "ND scale tiers",
        "nested-dissection cold/cached supernodal LU on 3-D meshes at n = 2e5 and 1e6",
    );
    let quick = std::env::var_os("MEMS_BENCH_QUICK").is_some();
    {
        let (nn, edges) = grid3d_edges(31, 31, 31);
        let (n, csc) = edges_mna(nn, &edges);
        let view = csc.view();
        let mut group = c.benchmark_group(&format!("ordering_lu_n{n}_grid3d_31"));
        group.sample_size(10);
        group.bench_function("nd_order_symbolic", |b| {
            b.iter(|| nd_order(n, &csc.col_ptr, &csc.row_idx))
        });
        group.bench_function("snl_nd_cold_factor", |b| {
            b.iter(|| {
                clear_cache();
                clear_symbolic_cache();
                SupernodalLu::<f64>::factor(&view, FillOrdering::Nd, 0).expect("factors")
            })
        });
        let mut warm = SupernodalLu::<f64>::factor(&view, FillOrdering::Nd, 0).expect("factors");
        let (lnz, unz) = warm.nnz();
        eprintln!(
            "  n={n} (grid3d_31): supernodal-ND fill L+U = {} | {} supernodes, {} levels",
            lnz + unz,
            warm.supernodes(),
            warm.levels(),
        );
        group.bench_function("snl_nd_cached_factor", |b| {
            b.iter(|| SupernodalLu::<f64>::factor(&view, FillOrdering::Nd, 0).expect("factors"))
        });
        group.bench_function("snl_nd_refactor", |b| {
            b.iter(|| warm.refactor(&view).expect("refactors"))
        });
        group.finish();
    }
    {
        let (nn, edges) = grid3d_edges(52, 52, 52);
        let (n, csc) = edges_mna(nn, &edges);
        let mut group = c.benchmark_group(&format!("ordering_lu_n{n}_grid3d_52"));
        group.sample_size(10);
        group.bench_function("nd_order_symbolic", |b| {
            b.iter(|| nd_order(n, &csc.col_ptr, &csc.row_idx))
        });
        if quick {
            eprintln!(
                "  n={n} (grid3d_52): factor series skipped under MEMS_BENCH_QUICK \
                 (single cold factor runs ~7 min serial; see mems-numerics \
                 examples/nd_scale.rs with ND_SCALE_ALL=1)"
            );
        } else {
            let view = csc.view();
            group.bench_function("snl_nd_cold_factor", |b| {
                b.iter(|| {
                    clear_cache();
                    clear_symbolic_cache();
                    SupernodalLu::<f64>::factor(&view, FillOrdering::Nd, 0).expect("factors")
                })
            });
        }
        group.finish();
    }
}

fn bench_grid_deck(c: &mut Criterion) {
    mems_bench::print_banner(
        "grid deck .OP",
        "end-to-end generated grid deck, sparse backend, order=natural vs amd vs nd",
    );
    for order in ["natural", "amd", "nd"] {
        let src = grid_deck_with(
            18,
            19,
            &GridDeckOptions {
                options: format!("sparse=1 order={order}"),
                ac: false,
                tran: false,
                step_points: 0,
            },
        );
        let deck = Deck::parse(&src).expect("grid deck parses");
        run_deck(&deck).expect("grid deck solves"); // sanity, untimed
        let mut group = c.benchmark_group("grid_deck_op_1637unknowns");
        group.sample_size(10);
        group.bench_function(&format!("order_{order}"), |b| {
            b.iter(|| run_deck(&deck).expect("solves"))
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_kernels,
    bench_supernodal,
    bench_scale_tiers,
    bench_grid_deck
);
criterion_main!(benches);
