//! Fill-reducing ordering on the meshed scale tier: natural-order vs
//! AMD-permuted sparse LU.
//!
//! Kernel groups factor the MNA matrix of an N×M grid of
//! electromechanical cells (the same structure
//! `mems_netlist::gen::grid_deck` elaborates: a 5-point electrical
//! stencil with a gyrator-coupled velocity node and spring-force
//! branch per edge) at n ≈ 100 / 400 / 1600 unknowns, timing the full
//! symbolic+numeric factorization and the numeric-only refactor under
//! both orderings. The fill (nnz of L and U) is printed per size —
//! the quantity the ordering actually optimizes.
//!
//! A deck-level group runs the generated grid deck end-to-end
//! (`.OP` through the netlist frontend) with `order=natural` vs
//! `order=amd` on the forced-sparse backend.

use criterion::{criterion_group, criterion_main, Criterion};
use mems_netlist::gen::{grid_deck_with, GridDeckOptions};
use mems_netlist::{run_deck, Deck};
use mems_numerics::ordering::amd_order;
use mems_numerics::sparse_lu::{CscMatrix, SparseLu};

/// Assembles the DC/transient-style MNA matrix of a `rows × cols`
/// electromechanical cell grid: per edge an R‖C link (conductance
/// stamp), a gyrator coupling into a private velocity unknown
/// (mass/damper on the diagonal), and a spring-force branch row.
/// Matches the sparsity structure `grid_deck` produces, at
/// `n = rows·cols + 2·edges`.
fn grid_mna(rows: usize, cols: usize) -> (usize, CscMatrix<f64>) {
    let nn = rows * cols;
    let node = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((node(r, c), node(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((node(r, c), node(r + 1, c)));
            }
        }
    }
    let n = nn + 2 * edges.len();
    let (g, gm, alpha, m_h, k_h) = (1e-3, 2e-4, 2e-3, 1e-2, 5e-2);
    let mut t: Vec<(usize, usize, f64)> = Vec::with_capacity(12 * edges.len());
    for (e, &(a, b)) in edges.iter().enumerate() {
        let vel = nn + 2 * e;
        let fb = nn + 2 * e + 1;
        // Electrical link.
        t.push((a, a, g));
        t.push((b, b, g));
        t.push((a, b, -g));
        t.push((b, a, -g));
        // Gyrator coupling (skew): current into the electrical nodes
        // from the velocity, force into the velocity from the
        // electrical across.
        t.push((vel, a, gm));
        t.push((vel, b, -gm));
        t.push((a, vel, -gm));
        t.push((b, vel, gm));
        // Mass + damper on the velocity diagonal.
        t.push((vel, vel, alpha + m_h));
        // Spring-force branch: vel row carries the force, the branch
        // row relates force and integrated velocity.
        t.push((vel, fb, 1.0));
        t.push((fb, vel, -k_h));
        t.push((fb, fb, 1.0));
    }
    // Drive tie at one corner, load at the other: keeps the system
    // nonsingular exactly like the deck's source + load do.
    t.push((0, 0, 1.0));
    t.push((nn - 1, nn - 1, 1e-3));
    (n, CscMatrix::from_triplets(n, &t))
}

fn bench_kernels(c: &mut Criterion) {
    mems_bench::print_banner(
        "batch_ordering",
        "natural vs AMD fill/factor/refactor on grid-cell MNA matrices",
    );
    // n = rows·cols + 2·edges ⇒ 105 / 412 / 1636 unknowns.
    for (rows, cols) in [(5usize, 5usize), (9, 10), (18, 19)] {
        let (n, csc) = grid_mna(rows, cols);
        let order = amd_order(n, &csc.col_ptr, &csc.row_idx);
        let lu_nat = SparseLu::factor(&csc.view()).expect("natural factors");
        let lu_amd = SparseLu::factor_ordered(&csc.view(), &order).expect("amd factors");
        let (ln, un) = lu_nat.nnz();
        let (la, ua) = lu_amd.nnz();
        eprintln!(
            "  n={n} ({rows}x{cols} grid): fill natural L+U = {} | amd L+U = {} ({:.2}x less)",
            ln + un,
            la + ua,
            (ln + un) as f64 / (la + ua) as f64
        );
        let mut group = c.benchmark_group(&format!("ordering_lu_n{n}"));
        group.sample_size(10);
        group.bench_function("natural_factor", |b| {
            b.iter(|| SparseLu::factor(&csc.view()).expect("factors"))
        });
        group.bench_function("amd_factor", |b| {
            b.iter(|| SparseLu::factor_ordered(&csc.view(), &order).expect("factors"))
        });
        group.bench_function("amd_order_symbolic", |b| {
            b.iter(|| amd_order(n, &csc.col_ptr, &csc.row_idx))
        });
        let mut nat = lu_nat.clone();
        group.bench_function("natural_refactor", |b| {
            b.iter(|| nat.refactor(&csc.view()).expect("refactors"))
        });
        let mut amd = lu_amd.clone();
        group.bench_function("amd_refactor", |b| {
            b.iter(|| amd.refactor(&csc.view()).expect("refactors"))
        });
        group.finish();
    }
}

fn bench_grid_deck(c: &mut Criterion) {
    mems_bench::print_banner(
        "grid deck .OP",
        "end-to-end generated grid deck, sparse backend, order=natural vs order=amd",
    );
    for order in ["natural", "amd"] {
        let src = grid_deck_with(
            18,
            19,
            &GridDeckOptions {
                options: format!("sparse=1 order={order}"),
                ac: false,
                tran: false,
                step_points: 0,
            },
        );
        let deck = Deck::parse(&src).expect("grid deck parses");
        run_deck(&deck).expect("grid deck solves"); // sanity, untimed
        let mut group = c.benchmark_group("grid_deck_op_1637unknowns");
        group.sample_size(10);
        group.bench_function(&format!("order_{order}"), |b| {
            b.iter(|| run_deck(&deck).expect("solves"))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_kernels, bench_grid_deck);
criterion_main!(benches);
