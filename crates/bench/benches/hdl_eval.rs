//! The behavioral hot path: HDL evaluation and batch elaboration.
//!
//! Group 1 times one Newton-iteration evaluation pass of the paper's
//! Listing-1 transducer (plus a beefier nonlinear variant) through
//! the reference tree-walking interpreter and through the bytecode VM
//! with its reusable register banks — the per-iteration cost every
//! DC/transient solve pays per behavioral device.
//!
//! Group 2 times a 40-point `.STEP` batch of an HDL deck with
//! per-point re-elaboration (parse tree → circuit per point, the
//! PR 2 behavior) against the elaborate-once `set_param` path (one
//! circuit per worker, parameters re-bound in place).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mems_hdl::eval::{DualReal, EvalEnv};
use mems_hdl::model::{EvalMode, HdlModel, Instance};
use mems_netlist::{run_batch, BatchOptions, Deck};
use mems_numerics::ode::IntegrationMethod;

const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

/// A denser model: branch logic, selection builtins, a table lookup,
/// and transcendentals on top of the Listing-1 structure.
const GNARLY: &str = r#"
ENTITY gnarly IS
 GENERIC (A, d, er : analog; vsat : analog := 12.0);
 PIN (a, b : electrical; c, dd : mechanical1);
END ENTITY gnarly;
ARCHITECTURE a OF gnarly IS
VARIABLE e0, x, v, cap, fmag : analog;
STATE S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      v := limit([a, b].v, -vsat, vsat);
      S := [c, dd].tv;
      x := integ(S);
      cap := e0*er*A/(d + x) * (1.0 + 0.02*tanh(v/vsat));
      IF v < 0.0 THEN
        fmag := -cap*v*v/(2.0*(d+x)) * table1d(v, -12.0, 0.8, 0.0, 1.0, 12.0, 1.2);
      ELSE
        fmag := -cap*v*v/(2.0*(d+x)) * (1.0 + 0.1*sin(v));
      END IF;
      [a, b].i %= cap*ddt(v) + 1.0e-12*tanh(v)*sqrt(1.0 + abs(v));
      [c, dd].f %= min(fmag, 0.0);
  END RELATION;
END ARCHITECTURE a;
"#;

/// Minimal simulator stand-in: two across quantities, contributions
/// summed into a sink so nothing is optimized away.
struct SinkEnv {
    v_elec: f64,
    v_mech: f64,
    sink: f64,
}

impl EvalEnv<DualReal> for SinkEnv {
    fn n_grad(&self) -> usize {
        2
    }
    fn across(&self, branch: usize) -> DualReal {
        let v = if branch == 0 {
            self.v_elec
        } else {
            self.v_mech
        };
        DualReal::variable(v, 2, branch)
    }
    fn unknown(&self, _index: usize) -> DualReal {
        unreachable!("bench models declare no unknowns")
    }
    fn contribute(&mut self, _branch: usize, value: DualReal) {
        self.sink += value.v + value.g[0] + value.g[1];
    }
    fn residual(&mut self, _index: usize, _value: DualReal) {}
    fn report(&mut self, _message: &str) {}
}

fn primed_instance(src: &str, entity: &str, mode: EvalMode) -> Instance {
    let model = HdlModel::compile(src, entity, None).expect("bench model compiles");
    let mut inst = model
        .instantiate("i1", &[("a", 1.0e-4), ("d", 0.15e-3), ("er", 1.0)])
        .expect("bench model instantiates");
    inst.set_eval_mode(mode);
    let mut env = SinkEnv {
        v_elec: 0.0,
        v_mech: 0.0,
        sink: 0.0,
    };
    inst.eval_dc(&mut env).expect("dc pass");
    inst.commit_dc();
    inst
}

fn bench_eval(c: &mut Criterion) {
    mems_bench::print_banner(
        "HDL evaluation",
        "per-Newton-iteration pass: tree-walk interpreter vs bytecode VM",
    );
    for (entity, src) in [("eletran", LISTING1), ("gnarly", GNARLY)] {
        let group_name = format!("hdl_eval_{entity}_transient_pass");
        let mut group = c.benchmark_group(&group_name);
        for (id, mode) in [
            ("tree_walk", EvalMode::TreeWalk),
            ("bytecode", EvalMode::Bytecode),
        ] {
            let mut inst = primed_instance(src, entity, mode);
            let mut env = SinkEnv {
                v_elec: 0.0,
                v_mech: 1e-6,
                sink: 0.0,
            };
            let h = 1e-6;
            let mut k = 0u64;
            group.bench_function(id, |b| {
                b.iter(|| {
                    k += 1;
                    env.v_elec = 5.0 + (k % 7) as f64;
                    inst.eval_transient(h, h, IntegrationMethod::Trapezoidal, &mut env)
                        .expect("transient pass");
                    black_box(env.sink)
                })
            });
        }
        group.finish();
    }
}

/// A `.STEP` batch over an HDL deck: 40 operating points of the
/// Listing-1 transducer loaded by the Fig. 3 resonator.
fn hdl_step_deck() -> String {
    format!(
        "eletran bias .step\n.param vbias=10 area=1e-4 gap=0.15e-3 mass=1e-4 k=200 alpha=40e-3\n\
         .HDL{LISTING1}.ENDHDL\n\
         Vs drive 0 {{vbias}}\n\
         Xducer drive 0 vel 0 eletran a={{area}} d={{gap}} er=1\n\
         Mm vel 0 {{mass}}\nKk vel 0 {{k}}\nDd vel 0 {{alpha}}\n\
         .op\n.print op v(vel) i(kk,0)\n\
         .step param vbias 1 40 1\n"
    )
}

fn bench_batch(c: &mut Criterion) {
    mems_bench::print_banner(
        "HDL batch elaboration",
        "40-point .STEP: per-point re-elaboration vs elaborate-once set_param",
    );
    let src = hdl_step_deck();
    let deck = Deck::parse(&src).expect("bench deck parses");
    for (id, reelaborate) in [("reelaborate_per_point", true), ("elaborate_once", false)] {
        let opts = BatchOptions {
            threads: 1,
            reelaborate,
            cancel: None,
        };
        // Sanity outside the timed region.
        let check = run_batch(&deck, &opts).expect("batch runs");
        assert_eq!(check.ok_count(), 40, "{id}: points failed");
        let mut group = c.benchmark_group("hdl_step_40pt");
        group.sample_size(10);
        group.bench_function(id, |b| {
            b.iter(|| run_batch(&deck, &opts).expect("batch runs"))
        });
        group.finish();
    }
}

/// The elaboration-time `init` program: tree interpreter vs the
/// compiled init tape — the cost `set_generics` pays at every batch
/// point re-instantiation.
fn bench_init(c: &mut Criterion) {
    mems_bench::print_banner(
        "HDL init program",
        "per-instantiation init pass: tree interpreter vs init tape",
    );
    const BRANCHY: &str = r#"
ENTITY gapcell IS
  GENERIC (g0, mode : analog);
  PIN (p, q : electrical);
END ENTITY gapcell;
ARCHITECTURE a OF gapcell IS
VARIABLE e0, gap, c0, guard : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
      IF mode > 1.5 THEN
        gap := g0 * 2.0;
      ELSIF mode > 0.5 THEN
        gap := limit(g0, 1.0e-6, 1.0e-3);
      ELSE
        gap := max(g0, 1.0e-6);
      END IF;
      guard := min(gap, 1.0e-3);
      ASSERT gap > 0.0 REPORT "gap must be positive";
      c0 := e0 / gap;
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= c0 * [p, q].v;
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(BRANCHY, "gapcell", None).expect("bench model compiles");
    let mut group = c.benchmark_group("hdl_init_pass");
    for (id, bytecode) in [("tree_walk", false), ("init_tape", true)] {
        let mut k = 0u64;
        group.bench_function(id, |b| {
            b.iter(|| {
                k += 1;
                let bound = [0.1e-3 + (k % 5) as f64 * 1e-5, (k % 3) as f64];
                black_box(model.init_values_with(&bound, bytecode).expect("init runs"))
            })
        });
    }
    group.finish();
}

fn bench_table_fold(c: &mut Criterion) {
    mems_bench::print_banner(
        "HDL table fold",
        "per-instantiation table1d breakpoint folding: tree folder vs fold tape",
    );
    // A breakpoint-heavy model: two 8-segment tables derived from
    // generics and init constants — the per-point cost of `.STEP`/`.MC`
    // re-instantiation for table-based device models.
    const TABLED: &str = r#"
ENTITY pwlcell IS
  GENERIC (scale, span : analog);
  PIN (p, q : electrical);
END ENTITY pwlcell;
ARCHITECTURE a OF pwlcell IS
VARIABLE gain : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      gain := max(scale, 0.1);
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= table1d([p, q].v,
        0.0 - span, 0.0 - gain,
        0.0 - span * 0.75, 0.0 - gain * 0.9,
        0.0 - span * 0.5, 0.0 - gain * 0.7,
        0.0 - span * 0.25, 0.0 - gain * 0.4,
        0.0, 0.0,
        span * 0.25, gain * 0.4,
        span * 0.5, gain * 0.7,
        span, gain)
        + table1d([p, q].v,
        0.0 - span * 2.0, 0.0 - gain,
        0.0, 0.0,
        span * 2.0, gain);
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(TABLED, "pwlcell", None).expect("bench model compiles");
    assert!(model.bytecode().table_fold.is_some());
    let mut group = c.benchmark_group("hdl_table_fold");
    for (id, bytecode) in [("tree_folder", false), ("fold_tape", true)] {
        let mut k = 0u64;
        group.bench_function(id, |b| {
            b.iter(|| {
                k += 1;
                let bound = [1.0 + (k % 7) as f64 * 0.25, 0.5 + (k % 5) as f64 * 0.1];
                let init = model.init_values_with(&bound, true).expect("init runs");
                black_box(
                    model
                        .fold_tables_with(&bound, &init, bytecode)
                        .expect("fold runs"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eval,
    bench_batch,
    bench_init,
    bench_table_fold
);
criterion_main!(benches);
