//! The Fig. 3 system: an electrostatic transducer coupled to a
//! mechanical resonator, built either with the behavioral HDL-A model
//! (Listing 1) or with a linearized equivalent circuit (Fig. 4).

use crate::energy::ElectricalStyle;
use crate::resonator::MechanicalResonator;
use crate::transducers::{LinearizedKind, TransverseElectrostatic};
use mems_hdl::HdlModel;
use mems_spice::analysis::transient::{run, TranOptions};
use mems_spice::circuit::Circuit;
use mems_spice::devices::{HdlDevice, VoltageSource};
use mems_spice::solver::SimOptions;
use mems_spice::wave::Waveform;
use mems_spice::{Result, SpiceError};

/// Which transducer realization drives the resonator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransducerVariant {
    /// Non-linear behavioral HDL-A model (the paper's approach).
    Behavioral(ElectricalStyle),
    /// Linearized equivalent circuit biased at the system's
    /// `(v0, x0)`.
    Linearized(LinearizedKind),
}

/// The complete Fig. 3 system description.
#[derive(Debug, Clone)]
pub struct TransducerResonatorSystem {
    /// The transducer (Table 4 geometry by default).
    pub transducer: TransverseElectrostatic,
    /// The resonator (Table 4 values by default).
    pub resonator: MechanicalResonator,
    /// Drive waveform.
    pub drive: Waveform,
    /// Linearization bias voltage (Table 4's `v0 = 10 V`).
    pub bias_voltage: f64,
}

/// A simulated displacement trace.
#[derive(Debug, Clone)]
pub struct DisplacementTrace {
    /// Time points [s].
    pub time: Vec<f64>,
    /// Displacement `x(t)` [m] (spring force / k).
    pub x: Vec<f64>,
    /// Drive voltage `v(t)` [V].
    pub v: Vec<f64>,
    /// Solver statistics: total Newton iterations.
    pub newton_iterations: usize,
}

impl TransducerResonatorSystem {
    /// The paper's Table 4 system with a given drive.
    pub fn table4(drive: Waveform) -> Self {
        TransducerResonatorSystem {
            transducer: TransverseElectrostatic::table4(),
            resonator: MechanicalResonator::table4(),
            drive,
            bias_voltage: 10.0,
        }
    }

    /// The Fig. 5 pulse at a given level: 5 ms rise/fall, 120 ms top,
    /// starting at 2 ms.
    pub fn fig5_pulse(level: f64) -> Waveform {
        Waveform::Pulse {
            v1: 0.0,
            v2: level,
            delay: 2e-3,
            rise: 5e-3,
            fall: 5e-3,
            width: 120e-3,
            period: 0.0,
        }
    }

    /// Builds the circuit for a variant.
    ///
    /// # Errors
    ///
    /// Propagates model-generation and circuit-building failures.
    pub fn build(&self, variant: TransducerVariant) -> Result<Circuit> {
        let mut ckt = Circuit::new();
        let e = ckt.enode("drive")?;
        let vel = ckt.mnode("vel")?;
        let gnd = ckt.ground();
        ckt.add(VoltageSource::new("vsrc", e, gnd, self.drive.clone()))?;
        match variant {
            TransducerVariant::Behavioral(style) => {
                let src = self
                    .transducer
                    .hdl_source(style)
                    .map_err(|err| SpiceError::Build(format!("model generation: {err}")))?;
                let model = HdlModel::compile(&src, "eletran", None)
                    .map_err(|err| SpiceError::Build(format!("model compile: {err}")))?;
                ckt.add(HdlDevice::new("xducer", &model, &[], &[e, gnd, vel, gnd])?)?;
            }
            TransducerVariant::Linearized(kind) => {
                let x0 = self
                    .transducer
                    .static_displacement(self.bias_voltage, self.resonator.stiffness)
                    .map_err(|err| SpiceError::Build(format!("bias solve: {err}")))?;
                let lin = self.transducer.linearized(self.bias_voltage, x0, kind);
                lin.build(&mut ckt, "lin", e, vel)?;
            }
        }
        self.resonator.build(&mut ckt, "res", vel)?;
        Ok(ckt)
    }

    /// Simulates a variant to `t_stop`, returning the displacement
    /// trace (read from the resonator spring, as the paper plots the
    /// "integrals of velocities").
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn simulate(
        &self,
        variant: TransducerVariant,
        t_stop: f64,
        sim: &SimOptions,
    ) -> Result<DisplacementTrace> {
        let mut ckt = self.build(variant)?;
        let result = run(&mut ckt, &TranOptions::new(t_stop), sim)?;
        let spring_force = result
            .trace("i(res_k,0)")
            .ok_or_else(|| SpiceError::Build("missing spring force trace".into()))?;
        let v = result
            .node_trace("drive")
            .ok_or_else(|| SpiceError::Build("missing drive trace".into()))?;
        Ok(DisplacementTrace {
            time: result.time,
            x: spring_force
                .iter()
                .map(|f| f / self.resonator.stiffness)
                .collect(),
            v,
            newton_iterations: result.total_newton_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_numerics::stats::settled_value;

    #[test]
    fn behavioral_and_secant_linear_agree_at_bias() {
        let sys = TransducerResonatorSystem::table4(TransducerResonatorSystem::fig5_pulse(10.0));
        let sim = SimOptions::default();
        let nl = sys
            .simulate(
                TransducerVariant::Behavioral(ElectricalStyle::PaperStyle),
                90e-3,
                &sim,
            )
            .unwrap();
        let lin = sys
            .simulate(
                TransducerVariant::Linearized(LinearizedKind::Secant),
                90e-3,
                &sim,
            )
            .unwrap();
        let xs_nl = settled_value(&nl.x, 0.05);
        let xs_lin = settled_value(&lin.x, 0.05);
        assert!(
            (xs_nl - xs_lin).abs() < xs_nl.abs() * 0.02,
            "nl {xs_nl:e} vs lin {xs_lin:e}"
        );
        // Both settle at the Table 4 static displacement.
        assert!((xs_nl - 1.0e-8).abs() < 5e-10, "x = {xs_nl:e}");
    }

    #[test]
    fn full_style_behavioral_matches_paper_style() {
        // The motional current term is negligible here; both styles
        // give the same mechanical response.
        let sys = TransducerResonatorSystem::table4(TransducerResonatorSystem::fig5_pulse(10.0));
        let sim = SimOptions::default();
        let a = sys
            .simulate(
                TransducerVariant::Behavioral(ElectricalStyle::PaperStyle),
                40e-3,
                &sim,
            )
            .unwrap();
        let b = sys
            .simulate(
                TransducerVariant::Behavioral(ElectricalStyle::Full),
                40e-3,
                &sim,
            )
            .unwrap();
        let xa = settled_value(&a.x, 0.2);
        let xb = settled_value(&b.x, 0.2);
        assert!((xa - xb).abs() < xa.abs() * 0.01);
    }
}
