//! Table 1: generalized variables for different physical domains, and
//! the force–voltage / force–current analogies.
//!
//! "It is possible to derive two analogies relating the dynamic
//! behavior of electrical and mechanical systems, the force-voltage
//! (FV) and the force-current (FI) analogy. The FI analogy is used
//! here for all models as the mechanical and electrical nets have the
//! same topology."

use mems_hdl::Nature;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainVariables {
    /// The physical domain.
    pub nature: Nature,
    /// Effort variable (name, unit).
    pub effort: (&'static str, &'static str),
    /// Flow variable (name, unit).
    pub flow: (&'static str, &'static str),
    /// Momentum variable (name, unit).
    pub momentum: (&'static str, &'static str),
    /// State variable (name, unit).
    pub state: (&'static str, &'static str),
}

/// Returns Table 1 (all domains, paper order).
pub fn table1() -> Vec<DomainVariables> {
    Nature::ALL
        .iter()
        .map(|&nature| DomainVariables {
            nature,
            effort: nature.effort_desc(),
            flow: nature.flow_desc(),
            momentum: nature.momentum_desc(),
            state: nature.state_desc(),
        })
        .collect()
}

/// Renders Table 1 as aligned text (used by the Table 1 bench).
pub fn render_table1() -> String {
    let rows = table1();
    let mut out =
        String::from("Domain                  Effort              Flow                 State\n");
    for r in rows {
        out.push_str(&format!(
            "{:<22}  {:<18}  {:<19}  {} [{}]\n",
            r.nature.name(),
            format!("{} [{}]", r.effort.0, r.effort.1),
            format!("{} [{}]", r.flow.0, r.flow.1),
            r.state.0,
            r.state.1,
        ));
    }
    out
}

/// Which electrical analogy maps a mechanical network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanicalAnalogy {
    /// Force ↔ voltage: mass → inductor, spring → capacitor `1/k`,
    /// damper → resistor `α`; mechanical *loops* become electrical
    /// loops (topology changes).
    ForceVoltage,
    /// Force ↔ current (the paper's choice): mass → capacitor `m`,
    /// spring → inductor `1/k`, damper → resistor `1/α`; mechanical
    /// and electrical nets share topology.
    ForceCurrent,
}

/// The electrical element equivalent to a mechanical one under an
/// analogy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElectricalEquivalent {
    /// A resistor with the given resistance [Ω].
    Resistor(f64),
    /// A capacitor with the given capacitance [F].
    Capacitor(f64),
    /// An inductor with the given inductance [H].
    Inductor(f64),
}

/// Maps a point mass `m` [kg].
pub fn map_mass(analogy: MechanicalAnalogy, m: f64) -> ElectricalEquivalent {
    match analogy {
        MechanicalAnalogy::ForceVoltage => ElectricalEquivalent::Inductor(m),
        MechanicalAnalogy::ForceCurrent => ElectricalEquivalent::Capacitor(m),
    }
}

/// Maps a spring of stiffness `k` [N/m].
pub fn map_spring(analogy: MechanicalAnalogy, k: f64) -> ElectricalEquivalent {
    match analogy {
        MechanicalAnalogy::ForceVoltage => ElectricalEquivalent::Capacitor(1.0 / k),
        MechanicalAnalogy::ForceCurrent => ElectricalEquivalent::Inductor(1.0 / k),
    }
}

/// Maps a viscous damper `α` [N·s/m].
pub fn map_damper(analogy: MechanicalAnalogy, alpha: f64) -> ElectricalEquivalent {
    match analogy {
        MechanicalAnalogy::ForceVoltage => ElectricalEquivalent::Resistor(alpha),
        MechanicalAnalogy::ForceCurrent => ElectricalEquivalent::Resistor(1.0 / alpha),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_paper_domains() {
        let t = table1();
        assert_eq!(t.len(), 6);
        let mech = t
            .iter()
            .find(|r| r.nature == Nature::MechanicalTranslation)
            .unwrap();
        assert_eq!(mech.effort.0, "force");
        assert_eq!(mech.flow.0, "velocity");
        assert_eq!(mech.state.0, "translation");
        let elec = t.iter().find(|r| r.nature == Nature::Electrical).unwrap();
        assert_eq!(elec.effort.0, "voltage");
        assert_eq!(elec.state.0, "charge");
        assert_eq!(elec.momentum.0, "flux linkage");
        let hyd = t.iter().find(|r| r.nature == Nature::Hydraulic).unwrap();
        assert_eq!(hyd.effort.0, "pressure");
        assert_eq!(hyd.flow.0, "volume flow rate");
    }

    #[test]
    fn fi_analogy_matches_fig4() {
        // Fig. 4: C = m, R = 1/α, L = 1/K.
        assert_eq!(
            map_mass(MechanicalAnalogy::ForceCurrent, 1e-4),
            ElectricalEquivalent::Capacitor(1e-4)
        );
        assert_eq!(
            map_spring(MechanicalAnalogy::ForceCurrent, 200.0),
            ElectricalEquivalent::Inductor(1.0 / 200.0)
        );
        assert_eq!(
            map_damper(MechanicalAnalogy::ForceCurrent, 40e-3),
            ElectricalEquivalent::Resistor(25.0)
        );
    }

    #[test]
    fn fv_analogy_is_the_dual() {
        assert_eq!(
            map_mass(MechanicalAnalogy::ForceVoltage, 2.0),
            ElectricalEquivalent::Inductor(2.0)
        );
        assert_eq!(
            map_spring(MechanicalAnalogy::ForceVoltage, 4.0),
            ElectricalEquivalent::Capacitor(0.25)
        );
        assert_eq!(
            map_damper(MechanicalAnalogy::ForceVoltage, 3.0),
            ElectricalEquivalent::Resistor(3.0)
        );
    }

    #[test]
    fn rendered_table_lines_up() {
        let s = render_table1();
        assert!(s.contains("mechanical1"));
        assert!(s.contains("voltage [V]"));
        assert!(s.contains("charge [C]"));
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn effort_times_flow_is_power_in_every_domain() {
        // Dimensional spot checks for the power product of Table 1.
        let units: Vec<(&str, &str)> = table1().iter().map(|r| (r.effort.1, r.flow.1)).collect();
        assert!(units.contains(&("N", "m/s")));
        assert!(units.contains(&("V", "A")));
        assert!(units.contains(&("Pa", "m³/s")));
        assert!(units.contains(&("N·m", "rad/s")));
    }
}
