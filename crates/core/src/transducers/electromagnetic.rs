//! Fig. 2c: the electromagnetic (variable-reluctance) transducer — a
//! coil of `N` turns on a fixed yoke attracting a free plate across a
//! gap `d + x`.

use super::MU0;
use crate::energy::{ElectricalKind, ElectricalStyle, EnergyTransducer};
use mems_hdl::ast::Expr;
use mems_hdl::Result;
use mems_numerics::rootfind::brent;

/// The variable-gap reluctance transducer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectromagneticGap {
    /// Magnetic cross-section `A` [m²].
    pub area: f64,
    /// Rest gap `d` [m].
    pub gap: f64,
    /// Coil turns `N`.
    pub turns: f64,
}

impl ElectromagneticGap {
    /// A small-relay-scale example: 1 mm² core, 0.1 mm gap, 500 turns.
    pub fn example() -> Self {
        ElectromagneticGap {
            area: 1e-6,
            gap: 1e-4,
            turns: 500.0,
        }
    }

    /// Input inductance at displacement `x` (Table 2c):
    /// `L = µ0·A·N²/(2(d + x))`.
    pub fn inductance(&self, x: f64) -> f64 {
        MU0 * self.area * self.turns * self.turns / (2.0 * (self.gap + x))
    }

    /// Co-energy `W* = µ0·A·N²·i²/(4(d + x))` (Table 2c).
    pub fn coenergy(&self, i: f64, x: f64) -> f64 {
        0.5 * self.inductance(x) * i * i
    }

    /// Transducer force (Table 3c):
    /// `F = −µ0·A·N²·i²/(4(d + x)²)` — attraction closing the gap.
    pub fn force(&self, i: f64, x: f64) -> f64 {
        let g = self.gap + x;
        -MU0 * self.area * self.turns * self.turns * i * i / (4.0 * g * g)
    }

    /// Flux linkage `λ = L(x)·i`.
    pub fn flux_linkage(&self, i: f64, x: f64) -> f64 {
        self.inductance(x) * i
    }

    /// Static displacement against a spring `k` (solves
    /// `k·x = |F(i, x)|`).
    ///
    /// # Errors
    ///
    /// Propagates bracketing failures.
    pub fn static_displacement(&self, i: f64, k: f64) -> mems_numerics::Result<f64> {
        brent(
            |x| k * x + self.force(i, x),
            0.0,
            self.gap * 0.999,
            self.gap * 1e-15,
        )
    }

    /// The energy-methodology description (current-controlled:
    /// realized with an `UNKNOWN` current plus an implicit voltage
    /// equation).
    pub fn energy_model(&self) -> EnergyTransducer {
        EnergyTransducer {
            entity: "magtran".into(),
            generics: vec![
                ("area".into(), Some(self.area)),
                ("d".into(), Some(self.gap)),
                ("n".into(), Some(self.turns)),
            ],
            coenergy: Expr::div(
                Expr::mul(
                    Expr::mul(
                        Expr::mul(Expr::num(MU0), Expr::ident("area")),
                        Expr::mul(Expr::ident("n"), Expr::ident("n")),
                    ),
                    Expr::mul(Expr::ident("i"), Expr::ident("i")),
                ),
                Expr::mul(
                    Expr::num(4.0),
                    Expr::add(Expr::ident("d"), Expr::ident("x")),
                ),
            ),
            electrical: ElectricalKind::CurrentControlled,
            electrical_symbol: "i".into(),
        }
    }

    /// Generates the HDL-A model source.
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn hdl_source(&self, style: ElectricalStyle) -> Result<String> {
        self.energy_model().to_hdl_source(style)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_c_inductance_and_energy() {
        let t = ElectromagneticGap::example();
        let l = t.inductance(0.0);
        let expect = MU0 * 1e-6 * 250000.0 / (2.0 * 1e-4);
        assert!((l - expect).abs() < expect * 1e-12);
        assert!((t.coenergy(0.1, 0.0) - 0.5 * l * 0.01).abs() < 1e-18);
    }

    #[test]
    fn table3_row_c_force() {
        let t = ElectromagneticGap::example();
        let f = t.force(0.1, 0.0);
        let expect = -MU0 * 1e-6 * 250000.0 * 0.01 / (4.0 * 1e-8);
        assert!((f - expect).abs() < expect.abs() * 1e-12, "{f} vs {expect}");
        // Quadratic in current, attractive either polarity.
        assert!((t.force(-0.1, 0.0) - f).abs() < f.abs() * 1e-12);
    }

    #[test]
    fn energy_derivation_matches_closed_forms() {
        let t = ElectromagneticGap::example();
        let derived = t.energy_model().derive().unwrap();
        let bindings = [
            ("i", 0.2),
            ("x", 1e-5),
            ("area", t.area),
            ("d", t.gap),
            ("n", t.turns),
        ];
        let lam = mems_hdl::symbolic::eval_closed(&derived.state_conjugate, &bindings).unwrap();
        assert!((lam - t.flux_linkage(0.2, 1e-5)).abs() < lam.abs() * 1e-12);
        let f = mems_hdl::symbolic::eval_closed(&derived.force, &bindings).unwrap();
        assert!((f - t.force(0.2, 1e-5)).abs() < f.abs() * 1e-12);
    }

    #[test]
    fn hdl_model_compiles_with_unknown_current() {
        let t = ElectromagneticGap::example();
        for style in [ElectricalStyle::Full, ElectricalStyle::PaperStyle] {
            let src = t.hdl_source(style).unwrap();
            let model = mems_hdl::HdlModel::compile(&src, "magtran", None).unwrap();
            assert_eq!(model.compiled().n_unknowns, 1);
        }
    }

    #[test]
    fn static_displacement_exists_below_pull_in() {
        let t = ElectromagneticGap::example();
        let x = t.static_displacement(0.05, 5000.0).unwrap();
        assert!(x > 0.0 && x < t.gap);
        // Equilibrium holds.
        assert!((5000.0 * x + t.force(0.05, x)).abs() < 1e-9);
    }
}
