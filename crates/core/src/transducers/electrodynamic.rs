//! Fig. 2d: the electrodynamic (voice-coil) transducer — `N` turns of
//! radius `r` in a radial field `B`; force proportional to current
//! (Table 3d: `F = 2π·N·r·B·i`), constant inductance (Table 2d).

use super::MU0;
use crate::energy::{ElectricalKind, ElectricalStyle, EnergyTransducer};
use mems_hdl::ast::Expr;
use mems_hdl::Result;

/// The voice-coil transducer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectrodynamicVoiceCoil {
    /// Coil turns `N`.
    pub turns: f64,
    /// Coil radius `r` [m].
    pub radius: f64,
    /// Radial flux density `B` [T].
    pub b_field: f64,
}

impl ElectrodynamicVoiceCoil {
    /// A miniature-speaker-scale example: 50 turns, 5 mm radius,
    /// 0.8 T.
    pub fn example() -> Self {
        ElectrodynamicVoiceCoil {
            turns: 50.0,
            radius: 5e-3,
            b_field: 0.8,
        }
    }

    /// Input inductance (Table 2d, displacement-independent):
    /// `L = µ0·N·r/2` per the paper's table.
    pub fn inductance(&self) -> f64 {
        MU0 * self.turns * self.radius / 2.0
    }

    /// Wire length in the field: `l = 2π·N·r`.
    pub fn wire_length(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.turns * self.radius
    }

    /// Motor constant `B·l` [N/A] (= back-EMF constant [V·s/m]).
    pub fn bl(&self) -> f64 {
        self.b_field * self.wire_length()
    }

    /// Internal magnetic energy `W = µ0·N·r·i²/4` (Table 2d).
    pub fn energy(&self, i: f64) -> f64 {
        0.5 * self.inductance() * i * i
    }

    /// Transducer force (Table 3d): `F = 2π·N·r·B·i` — linear in the
    /// current, sign following the current direction.
    pub fn force(&self, i: f64) -> f64 {
        self.bl() * i
    }

    /// Back EMF at plate velocity `s`: `e = B·l·s`.
    ///
    /// (The paper's Table 3 prints only the `L·di/dt` term; the
    /// motional EMF is required for a conservative two-port and is
    /// included by the `Full` generated model.)
    pub fn back_emf(&self, s: f64) -> f64 {
        self.bl() * s
    }

    /// The energy-methodology description. The co-energy
    /// `W* = ½L·i² + B·l·i·x` yields `F = ∂W*/∂x = B·l·i` and
    /// `λ = ∂W*/∂i = L·i + B·l·x` (whose `ddt` produces the motional
    /// EMF automatically).
    pub fn energy_model(&self) -> EnergyTransducer {
        EnergyTransducer {
            entity: "dyntran".into(),
            generics: vec![
                ("n".into(), Some(self.turns)),
                ("r".into(), Some(self.radius)),
                ("b".into(), Some(self.b_field)),
            ],
            // µ0·n·r·i²/4 + 2π·n·r·b·i·x
            coenergy: Expr::add(
                Expr::div(
                    Expr::mul(
                        Expr::mul(
                            Expr::num(MU0),
                            Expr::mul(Expr::ident("n"), Expr::ident("r")),
                        ),
                        Expr::mul(Expr::ident("i"), Expr::ident("i")),
                    ),
                    Expr::num(4.0),
                ),
                Expr::mul(
                    Expr::mul(
                        Expr::num(2.0 * std::f64::consts::PI),
                        Expr::mul(Expr::ident("n"), Expr::ident("r")),
                    ),
                    Expr::mul(
                        Expr::ident("b"),
                        Expr::mul(Expr::ident("i"), Expr::ident("x")),
                    ),
                ),
            ),
            electrical: ElectricalKind::CurrentControlled,
            electrical_symbol: "i".into(),
        }
    }

    /// Generates the HDL-A model source.
    ///
    /// # Errors
    ///
    /// Propagates generation failures. Note `PaperStyle` drops the
    /// motional EMF (as the paper's Table 3 does); `Full` keeps it.
    pub fn hdl_source(&self, style: ElectricalStyle) -> Result<String> {
        self.energy_model().to_hdl_source(style)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_d_inductance() {
        let t = ElectrodynamicVoiceCoil::example();
        let expect = MU0 * 50.0 * 5e-3 / 2.0;
        assert!((t.inductance() - expect).abs() < expect * 1e-12);
        assert!((t.energy(0.3) - 0.5 * expect * 0.09).abs() < 1e-18);
    }

    #[test]
    fn table3_row_d_force_is_linear_in_current() {
        let t = ElectrodynamicVoiceCoil::example();
        let expect = 2.0 * std::f64::consts::PI * 50.0 * 5e-3 * 0.8;
        assert!((t.force(1.0) - expect).abs() < expect * 1e-12);
        assert!((t.force(-2.0) + 2.0 * expect).abs() < expect * 1e-12);
    }

    #[test]
    fn energy_derivation_matches_table3_row_d() {
        let t = ElectrodynamicVoiceCoil::example();
        let derived = t.energy_model().derive().unwrap();
        let bindings = [
            ("i", 0.7),
            ("x", 1e-3),
            ("n", t.turns),
            ("r", t.radius),
            ("b", t.b_field),
        ];
        let f = mems_hdl::symbolic::eval_closed(&derived.force, &bindings).unwrap();
        assert!((f - t.force(0.7)).abs() < f.abs() * 1e-12);
        // λ = L·i + B·l·x → its time derivative carries the back EMF.
        let lam = mems_hdl::symbolic::eval_closed(&derived.state_conjugate, &bindings).unwrap();
        let expect = t.inductance() * 0.7 + t.bl() * 1e-3;
        assert!((lam - expect).abs() < expect.abs() * 1e-12);
    }

    #[test]
    fn hdl_model_compiles() {
        let t = ElectrodynamicVoiceCoil::example();
        let src = t.hdl_source(ElectricalStyle::Full).unwrap();
        let model = mems_hdl::HdlModel::compile(&src, "dyntran", None).unwrap();
        assert_eq!(model.compiled().n_unknowns, 1);
    }

    #[test]
    fn motor_and_emf_constants_match() {
        // B·l reciprocity: force per ampere equals EMF per m/s.
        let t = ElectrodynamicVoiceCoil::example();
        assert!((t.force(1.0) - t.back_emf(1.0)).abs() < 1e-12);
    }
}
