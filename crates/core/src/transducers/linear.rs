//! Linearized equivalent-circuit transducer models — the classical
//! approach the paper compares against ("Usually, all components are
//! linearized around an operating (bias) point, limiting the validity
//! of these models to small-signal analysis").
//!
//! Under the force–current analogy the electrostatic transducer
//! linearizes to a capacitor `C₀` plus an electromechanical coupling
//! with transduction factor `Γ` (a gyrator between the electrical
//! voltage port and the mechanical velocity port). Two flavours of
//! `Γ` are provided:
//!
//! - [`LinearizedKind::Secant`]: `Γ = |F₀|/v₀ = ε₀εrA·v₀/(2(d+x₀)²)`.
//!   Driven by the *full* source voltage it reproduces the bias force
//!   exactly at `v₀`, overshoots below and undershoots above — the
//!   behaviour Fig. 5 describes.
//! - [`LinearizedKind::TangentBias`]: the textbook small-signal
//!   two-port (Tilmans, the paper's ref. [1]): `Γ = ∂F/∂v = 2·Γ_sec`,
//!   driven by the *deviation* `v − v₀`, with the bias force `F₀` and
//!   the electrostatic spring constant `k_e` included.

use mems_spice::circuit::{Circuit, NodeId};
use mems_spice::devices::{Capacitor, CurrentSource, Gyrator, Spring, VoltageSource};
use mems_spice::wave::Waveform;
use mems_spice::Result;

/// Which linearization the equivalent circuit realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearizedKind {
    /// Secant transduction factor, full-voltage drive.
    Secant,
    /// Tangent factor around the bias, deviation drive, with bias
    /// force and electrostatic spring.
    TangentBias,
}

/// A linearized transducer two-port about a bias `(v₀, x₀)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearizedTransducer {
    /// Which realization to build.
    pub kind: LinearizedKind,
    /// Bias capacitance `C₀` [F].
    pub c0: f64,
    /// Secant transduction factor [N/V].
    pub gamma_secant: f64,
    /// Tangent transduction factor `∂F/∂v` [N/V].
    pub gamma_tangent: f64,
    /// Electrostatic spring constant `|∂F/∂x|` [N/m].
    pub k_e: f64,
    /// Bias voltage [V].
    pub v0: f64,
    /// Bias displacement [m].
    pub x0: f64,
    /// Bias force [N] (negative: attraction).
    pub f0: f64,
}

impl LinearizedTransducer {
    /// The active transduction factor for this realization.
    pub fn gamma(&self) -> f64 {
        match self.kind {
            LinearizedKind::Secant => self.gamma_secant,
            LinearizedKind::TangentBias => self.gamma_tangent,
        }
    }

    /// Builds the equivalent circuit between an electrical node and a
    /// mechanical (velocity) node, adding devices prefixed with
    /// `name`.
    ///
    /// For [`LinearizedKind::TangentBias`] an internal node carrying
    /// `v − v₀` is created (series `−v₀` source), the bias force is a
    /// constant mechanical current source, and `k_e` is a spring on
    /// the mechanical node.
    ///
    /// # Errors
    ///
    /// Propagates circuit-building failures.
    pub fn build(
        &self,
        circuit: &mut Circuit,
        name: &str,
        elec: NodeId,
        mech: NodeId,
    ) -> Result<()> {
        let gnd = circuit.ground();
        circuit.add(Capacitor::new(&format!("{name}_c0"), elec, gnd, self.c0))?;
        match self.kind {
            LinearizedKind::Secant => {
                // i₁ = Γ·(velocity) on the electrical side,
                // F = +Γ·v delivered to the mechanical node.
                circuit.add(Gyrator::new(
                    &format!("{name}_gy"),
                    elec,
                    gnd,
                    mech,
                    gnd,
                    self.gamma(),
                ))?;
            }
            LinearizedKind::TangentBias => {
                // Deviation node: v_dev = v − v₀.
                let dev = circuit.node(&format!("{name}_dev"), mems_hdl::Nature::Electrical)?;
                circuit.add(VoltageSource::new(
                    &format!("{name}_vbias"),
                    elec,
                    dev,
                    Waveform::Dc(self.v0),
                ))?;
                circuit.add(Gyrator::new(
                    &format!("{name}_gy"),
                    dev,
                    gnd,
                    mech,
                    gnd,
                    self.gamma(),
                ))?;
                // Bias force |F₀| pushing the node positive (the
                // Listing-1 convention's settled direction).
                circuit.add(CurrentSource::new(
                    &format!("{name}_f0"),
                    gnd,
                    mech,
                    Waveform::Dc(-self.f0),
                ))?;
                // Electrostatic spring.
                if self.k_e > 0.0 {
                    circuit.add(Spring::new(&format!("{name}_ke"), mech, gnd, self.k_e))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducers::TransverseElectrostatic;
    use mems_spice::analysis::transient::{run, TranOptions};
    use mems_spice::devices::{Damper, Mass};
    use mems_spice::solver::SimOptions;

    fn fig3_linear(kind: LinearizedKind, level: f64) -> (Circuit, f64) {
        let t = TransverseElectrostatic::table4();
        let x0 = t.static_displacement(10.0, 200.0).unwrap();
        let lin = t.linearized(10.0, x0, kind);
        let mut ckt = Circuit::new();
        let e = ckt.enode("drive").unwrap();
        let vel = ckt.mnode("vel").unwrap();
        let gnd = ckt.ground();
        ckt.add(VoltageSource::new(
            "vsrc",
            e,
            gnd,
            Waveform::Pulse {
                v1: 0.0,
                v2: level,
                delay: 2e-3,
                rise: 5e-3,
                fall: 5e-3,
                width: 120e-3,
                period: 0.0,
            },
        ))
        .unwrap();
        lin.build(&mut ckt, "lin", e, vel).unwrap();
        ckt.add(Mass::new("m1", vel, gnd, 1e-4)).unwrap();
        ckt.add(Spring::new("k1", vel, gnd, 200.0)).unwrap();
        ckt.add(Damper::new("d1", vel, gnd, 40e-3)).unwrap();
        (ckt, x0)
    }

    fn settled_displacement(ckt: &mut Circuit) -> f64 {
        let res = run(ckt, &TranOptions::new(90e-3), &SimOptions::default()).unwrap();
        let f = res.trace("i(k1,0)").unwrap();
        mems_numerics::stats::settled_value(&f.iter().map(|v| v / 200.0).collect::<Vec<_>>(), 0.05)
    }

    #[test]
    fn secant_matches_bias_exactly_at_10v() {
        let (mut ckt, x0) = fig3_linear(LinearizedKind::Secant, 10.0);
        let x = settled_displacement(&mut ckt);
        assert!((x - x0).abs() < x0 * 0.01, "x = {x:e} vs x0 = {x0:e}");
    }

    #[test]
    fn secant_overshoots_at_5v_and_undershoots_at_15v() {
        let t = TransverseElectrostatic::table4();
        // Nonlinear settled references.
        let x5 = t.static_displacement(5.0, 200.0).unwrap();
        let x15 = t.static_displacement(15.0, 200.0).unwrap();
        let (mut c5, _) = fig3_linear(LinearizedKind::Secant, 5.0);
        let (mut c15, _) = fig3_linear(LinearizedKind::Secant, 15.0);
        let xl5 = settled_displacement(&mut c5);
        let xl15 = settled_displacement(&mut c15);
        assert!(xl5 > x5 * 1.5, "linear {xl5:e} vs nonlinear {x5:e}");
        assert!(xl15 < x15 * 0.75, "linear {xl15:e} vs nonlinear {x15:e}");
    }

    #[test]
    fn tangent_bias_matches_bias_point() {
        let (mut ckt, x0) = fig3_linear(LinearizedKind::TangentBias, 10.0);
        let x = settled_displacement(&mut ckt);
        assert!((x - x0).abs() < x0 * 0.02, "x = {x:e} vs x0 = {x0:e}");
    }

    #[test]
    fn gamma_selection() {
        let t = TransverseElectrostatic::table4();
        let lin_s = t.linearized(10.0, 0.0, LinearizedKind::Secant);
        let lin_t = t.linearized(10.0, 0.0, LinearizedKind::TangentBias);
        assert!((lin_t.gamma() - 2.0 * lin_s.gamma()).abs() < lin_t.gamma() * 1e-12);
    }
}
