//! Fig. 2a: the transverse electrostatic transducer — the paper's
//! worked example (Listing 1, Tables 2–4, Fig. 5).
//!
//! Plate of area `A`, rest gap `d`, relative permittivity `εr`; the
//! displacement `x` opens the gap to `d + x`.

use super::linear::{LinearizedKind, LinearizedTransducer};
use super::EPS0;
use crate::energy::{ElectricalKind, ElectricalStyle, EnergyTransducer};
use mems_hdl::ast::Expr;
use mems_hdl::Result;
use mems_numerics::rootfind::brent;

/// The transverse electrostatic transducer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransverseElectrostatic {
    /// Active plate area `A` [m²].
    pub area: f64,
    /// Rest gap `d` [m].
    pub gap: f64,
    /// Relative permittivity `εr`.
    pub eps_r: f64,
}

impl TransverseElectrostatic {
    /// The paper's Table 4 device: `A = 1 cm²`, `d = 0.15 mm`,
    /// `εr = 1`.
    pub fn table4() -> Self {
        TransverseElectrostatic {
            area: 1.0e-4,
            gap: 0.15e-3,
            eps_r: 1.0,
        }
    }

    /// Input capacitance at displacement `x` (Table 2a):
    /// `C = ε0·εr·A/(d + x)`.
    pub fn capacitance(&self, x: f64) -> f64 {
        EPS0 * self.eps_r * self.area / (self.gap + x)
    }

    /// Internal co-energy at voltage `v`, displacement `x` (Table 2a):
    /// `W* = ε0·εr·A·v²/(2(d + x))`.
    pub fn coenergy(&self, v: f64, x: f64) -> f64 {
        0.5 * self.capacitance(x) * v * v
    }

    /// Stored energy in the charge formulation,
    /// `W = q²·(d + x)/(2·ε0·εr·A)`.
    pub fn energy_of_charge(&self, q: f64, x: f64) -> f64 {
        q * q / (2.0 * self.capacitance(x))
    }

    /// Transducer force at `(v, x)` (Table 3a):
    /// `F = −ε0·εr·A·v²/(2(d + x)²)` — negative: the plates attract,
    /// opposing gap opening.
    pub fn force(&self, v: f64, x: f64) -> f64 {
        let g = self.gap + x;
        -EPS0 * self.eps_r * self.area * v * v / (2.0 * g * g)
    }

    /// Port voltage in the charge formulation (Table 3a):
    /// `v = q·(d + x)/(ε0·εr·A)`.
    pub fn voltage_of_charge(&self, q: f64, x: f64) -> f64 {
        q / self.capacitance(x)
    }

    /// Charge at `(v, x)`.
    pub fn charge(&self, v: f64, x: f64) -> f64 {
        self.capacitance(x) * v
    }

    /// Static displacement against a spring `k`: solves
    /// `k·x = |F(v, x)|` (Table 4's `x₀` for `v = 10 V`, `k = 200`).
    ///
    /// # Errors
    ///
    /// Propagates root bracketing failures (e.g. pull-in — no stable
    /// equilibrium below `d`).
    pub fn static_displacement(&self, v: f64, k: f64) -> mems_numerics::Result<f64> {
        brent(
            |x| k * x + self.force(v, x),
            0.0,
            self.gap * 0.999,
            self.gap * 1e-15,
        )
    }

    /// The energy-methodology description (recipe steps 1–2): the
    /// co-energy expression over `(v, x)` with symbolic generics.
    pub fn energy_model(&self) -> EnergyTransducer {
        EnergyTransducer {
            entity: "eletran".into(),
            generics: vec![
                ("area".into(), Some(self.area)),
                ("d".into(), Some(self.gap)),
                ("er".into(), Some(self.eps_r)),
            ],
            coenergy: Expr::div(
                Expr::mul(
                    Expr::mul(
                        Expr::mul(Expr::num(EPS0), Expr::ident("er")),
                        Expr::ident("area"),
                    ),
                    Expr::mul(Expr::ident("v"), Expr::ident("v")),
                ),
                Expr::mul(
                    Expr::num(2.0),
                    Expr::add(Expr::ident("d"), Expr::ident("x")),
                ),
            ),
            electrical: ElectricalKind::VoltageControlled,
            electrical_symbol: "v".into(),
        }
    }

    /// Generates the HDL-A model source (PaperStyle reproduces
    /// Listing 1's equations).
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn hdl_source(&self, style: ElectricalStyle) -> Result<String> {
        self.energy_model().to_hdl_source(style)
    }

    /// Linearized equivalent circuit about a bias `(v0, x0)`.
    pub fn linearized(&self, v0: f64, x0: f64, kind: LinearizedKind) -> LinearizedTransducer {
        let g0 = self.gap + x0;
        let c0 = EPS0 * self.eps_r * self.area / g0;
        let f0 = self.force(v0, x0);
        // Tangent transduction factor |∂F/∂v| = ε0·εr·A·v0/g0².
        let gamma_tangent = EPS0 * self.eps_r * self.area * v0 / (g0 * g0);
        // Secant factor |F0|/v0 = ε0·εr·A·v0/(2g0²).
        let gamma_secant = gamma_tangent / 2.0;
        // Electrostatic spring constant |∂F/∂x| (softening toward
        // closing, stiffening toward opening in this convention).
        let k_e = EPS0 * self.eps_r * self.area * v0 * v0 / (g0 * g0 * g0);
        LinearizedTransducer {
            kind,
            c0,
            gamma_secant,
            gamma_tangent,
            k_e,
            v0,
            x0,
            f0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_a_values() {
        let t = TransverseElectrostatic::table4();
        // C at x = 0: ε0·A/d ≈ 5.9028 pF (paper prints 5.8637 pF; see
        // EXPERIMENTS.md for the 0.7 % discrepancy note).
        let c = t.capacitance(0.0);
        assert!((c - 5.9028e-12).abs() < 1e-15, "C = {c:e}");
        // Energy at 10 V: ½CV² ≈ 2.95e-10 J.
        let w = t.coenergy(10.0, 0.0);
        assert!((w - 0.5 * c * 100.0).abs() < 1e-24);
    }

    #[test]
    fn table3_row_a_force_and_voltage() {
        let t = TransverseElectrostatic::table4();
        let f = t.force(10.0, 0.0);
        assert!((f + 1.9676e-6).abs() < 1e-9, "F = {f:e}");
        // Charge/voltage round trip.
        let q = t.charge(10.0, 0.0);
        assert!((t.voltage_of_charge(q, 0.0) - 10.0).abs() < 1e-12);
        // Energy identity: W(q) + W*(v) = q·v for the linear capacitor.
        let w_sum = t.energy_of_charge(q, 0.0) + t.coenergy(10.0, 0.0);
        assert!((w_sum - q * 10.0).abs() < q * 10.0 * 1e-12);
    }

    #[test]
    fn table4_static_displacement() {
        let t = TransverseElectrostatic::table4();
        let x0 = t.static_displacement(10.0, 200.0).unwrap();
        assert!((x0 - 1.0e-8).abs() < 2e-10, "x0 = {x0:e}");
    }

    #[test]
    fn linearization_factors() {
        let t = TransverseElectrostatic::table4();
        let x0 = t.static_displacement(10.0, 200.0).unwrap();
        let lin = t.linearized(10.0, x0, LinearizedKind::Secant);
        // Γ_tan = ε0·A·v0/(d+x0)² ≈ 3.935e-7 N/V; Γ_sec is half.
        assert!((lin.gamma_tangent - 3.9345e-7).abs() < 1e-10);
        assert!((lin.gamma_secant * 2.0 - lin.gamma_tangent).abs() < 1e-20);
        // Secant factor reproduces the bias force exactly.
        assert!((lin.gamma_secant * 10.0 + lin.f0).abs() < lin.f0.abs() * 1e-9);
        // C0 ≈ 5.902 pF at the bias gap.
        assert!((lin.c0 - 5.9024e-12).abs() < 1e-15, "C0 = {:e}", lin.c0);
        // Spring softening constant is small vs k = 200 N/m.
        assert!(lin.k_e < 0.05, "k_e = {}", lin.k_e);
    }

    #[test]
    fn energy_model_derives_same_force() {
        let t = TransverseElectrostatic::table4();
        let derived = t.energy_model().derive().unwrap();
        let f_sym = mems_hdl::symbolic::eval_closed(
            &derived.force,
            &[
                ("v", 7.0),
                ("x", 2e-5),
                ("area", t.area),
                ("d", t.gap),
                ("er", t.eps_r),
            ],
        )
        .unwrap();
        let f_closed = t.force(7.0, 2e-5);
        assert!((f_sym - f_closed).abs() < f_closed.abs() * 1e-12);
    }

    #[test]
    fn hdl_sources_generate() {
        let t = TransverseElectrostatic::table4();
        let paper = t.hdl_source(ElectricalStyle::PaperStyle).unwrap();
        assert!(paper.contains("ENTITY eletran"));
        assert!(paper.contains("ddt(vv)"));
        let full = t.hdl_source(ElectricalStyle::Full).unwrap();
        assert!(full.contains("ddt("));
    }
}
