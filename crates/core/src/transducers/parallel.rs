//! Fig. 2b: the parallel-motion (sliding-plate) electrostatic
//! transducer — the plate slides sideways, changing the overlap
//! length `l − x` at constant gap `d`.

use super::EPS0;
use crate::energy::{ElectricalKind, ElectricalStyle, EnergyTransducer};
use mems_hdl::ast::Expr;
use mems_hdl::Result;

/// The sliding-plate electrostatic transducer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelPlateElectrostatic {
    /// Plate depth `h` [m] (out of plane).
    pub height: f64,
    /// Overlap length at rest `l` [m].
    pub length: f64,
    /// Gap `d` [m].
    pub gap: f64,
    /// Relative permittivity `εr`.
    pub eps_r: f64,
}

impl ParallelPlateElectrostatic {
    /// A representative comb-like device: 1 mm × 1 mm plates, 2 µm gap.
    pub fn example() -> Self {
        ParallelPlateElectrostatic {
            height: 1e-3,
            length: 1e-3,
            gap: 2e-6,
            eps_r: 1.0,
        }
    }

    /// Input capacitance at displacement `x` (Table 2b):
    /// `C = ε0·εr·h·(l − x)/d`.
    pub fn capacitance(&self, x: f64) -> f64 {
        EPS0 * self.eps_r * self.height * (self.length - x) / self.gap
    }

    /// Co-energy `W* = ε0·εr·h·(l − x)·v²/(2d)` (Table 2b).
    pub fn coenergy(&self, v: f64, x: f64) -> f64 {
        0.5 * self.capacitance(x) * v * v
    }

    /// Transducer force (Table 3b): `F = −ε0·εr·h·v²/(2d)` —
    /// independent of `x` (constant force pulling the plate *into*
    /// overlap), the defining property of comb drives.
    pub fn force(&self, v: f64, _x: f64) -> f64 {
        -EPS0 * self.eps_r * self.height * v * v / (2.0 * self.gap)
    }

    /// Port voltage in the charge formulation (Table 3b):
    /// `v = q·d/(ε0·εr·h·(l − x))`.
    pub fn voltage_of_charge(&self, q: f64, x: f64) -> f64 {
        q / self.capacitance(x)
    }

    /// The energy-methodology description.
    pub fn energy_model(&self) -> EnergyTransducer {
        EnergyTransducer {
            entity: "partran".into(),
            generics: vec![
                ("h".into(), Some(self.height)),
                ("l".into(), Some(self.length)),
                ("d".into(), Some(self.gap)),
                ("er".into(), Some(self.eps_r)),
            ],
            coenergy: Expr::div(
                Expr::mul(
                    Expr::mul(
                        Expr::mul(Expr::num(EPS0), Expr::ident("er")),
                        Expr::mul(
                            Expr::ident("h"),
                            Expr::sub(Expr::ident("l"), Expr::ident("x")),
                        ),
                    ),
                    Expr::mul(Expr::ident("v"), Expr::ident("v")),
                ),
                Expr::mul(Expr::num(2.0), Expr::ident("d")),
            ),
            electrical: ElectricalKind::VoltageControlled,
            electrical_symbol: "v".into(),
        }
    }

    /// Generates the HDL-A model source.
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn hdl_source(&self, style: ElectricalStyle) -> Result<String> {
        self.energy_model().to_hdl_source(style)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_shrinks_with_sliding_out() {
        let t = ParallelPlateElectrostatic::example();
        assert!(t.capacitance(0.0) > t.capacitance(1e-4));
        let expect = EPS0 * 1e-3 * 1e-3 / 2e-6;
        assert!((t.capacitance(0.0) - expect).abs() < expect * 1e-12);
    }

    #[test]
    fn force_is_displacement_independent() {
        let t = ParallelPlateElectrostatic::example();
        let f1 = t.force(10.0, 0.0);
        let f2 = t.force(10.0, 5e-4);
        assert_eq!(f1, f2);
        let expect = -EPS0 * 1e-3 * 100.0 / (2.0 * 2e-6);
        assert!((f1 - expect).abs() < expect.abs() * 1e-12);
    }

    #[test]
    fn energy_derivation_matches_table3_row_b() {
        let t = ParallelPlateElectrostatic::example();
        let derived = t.energy_model().derive().unwrap();
        let bindings = [
            ("v", 10.0),
            ("x", 1e-4),
            ("h", t.height),
            ("l", t.length),
            ("d", t.gap),
            ("er", 1.0),
        ];
        let f_sym = mems_hdl::symbolic::eval_closed(&derived.force, &bindings).unwrap();
        assert!((f_sym - t.force(10.0, 1e-4)).abs() < f_sym.abs() * 1e-12);
        let q_sym = mems_hdl::symbolic::eval_closed(&derived.state_conjugate, &bindings).unwrap();
        assert!((q_sym - t.capacitance(1e-4) * 10.0).abs() < q_sym.abs() * 1e-12);
    }

    #[test]
    fn hdl_model_compiles() {
        let t = ParallelPlateElectrostatic::example();
        let src = t.hdl_source(ElectricalStyle::PaperStyle).unwrap();
        let model = mems_hdl::HdlModel::compile(&src, "partran", None).unwrap();
        assert_eq!(model.compiled().pins.len(), 4);
    }

    #[test]
    fn voltage_of_charge_round_trip() {
        let t = ParallelPlateElectrostatic::example();
        let q = t.capacitance(2e-4) * 7.5;
        assert!((t.voltage_of_charge(q, 2e-4) - 7.5).abs() < 1e-12);
    }
}
