//! The four electromechanical transducers of Fig. 2, with the
//! closed-form impedances and energies of Table 2, the effort
//! expressions of Table 3, generated HDL-A models, and linearized
//! equivalent circuits.

pub mod electrodynamic;
pub mod electromagnetic;
pub mod linear;
pub mod parallel;
pub mod transverse;

pub use electrodynamic::ElectrodynamicVoiceCoil;
pub use electromagnetic::ElectromagneticGap;
pub use linear::{LinearizedKind, LinearizedTransducer};
pub use parallel::ParallelPlateElectrostatic;
pub use transverse::TransverseElectrostatic;

/// Vacuum permittivity ε₀ [F/m], as written in Listing 1.
pub const EPS0: f64 = 8.8542e-12;

/// Vacuum permeability µ₀ [H/m].
pub const MU0: f64 = 1.256_637_061_4e-6;
