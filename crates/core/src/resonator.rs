//! The mechanical resonator of Fig. 3: mass, spring, damper on one
//! velocity node, realized through the force–current analogy
//! (Fig. 4: `C = m`, `R = 1/α`, `L = 1/K`).

use mems_spice::circuit::{Circuit, NodeId};
use mems_spice::devices::{Damper, Mass, Spring};
use mems_spice::Result;

/// A 1-DOF mass–spring–damper resonator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanicalResonator {
    /// Mass `m` [kg].
    pub mass: f64,
    /// Spring constant `k` [N/m].
    pub stiffness: f64,
    /// Damping coefficient `α` [N·s/m].
    pub damping: f64,
}

impl MechanicalResonator {
    /// The paper's Table 4 resonator: `m = 1e-4 kg`, `k = 200 N/m`,
    /// `α = 40e-3 N·s/m`.
    pub fn table4() -> Self {
        MechanicalResonator {
            mass: 1.0e-4,
            stiffness: 200.0,
            damping: 40e-3,
        }
    }

    /// Undamped natural frequency [Hz] (≈ 225 Hz for Table 4).
    pub fn natural_frequency(&self) -> f64 {
        (self.stiffness / self.mass).sqrt() / (2.0 * std::f64::consts::PI)
    }

    /// Damping ratio ζ (≈ 0.141 for Table 4: under-critical, as the
    /// paper notes).
    pub fn damping_ratio(&self) -> f64 {
        self.damping / (2.0 * (self.stiffness * self.mass).sqrt())
    }

    /// Damped ringing frequency [Hz].
    pub fn damped_frequency(&self) -> f64 {
        let z = self.damping_ratio();
        self.natural_frequency() * (1.0 - z * z).sqrt()
    }

    /// Static deflection under a force [m].
    pub fn static_deflection(&self, force: f64) -> f64 {
        force / self.stiffness
    }

    /// Adds the resonator to a circuit on the given velocity node.
    /// Devices are named `{name}_m`, `{name}_k`, `{name}_a`; the
    /// spring's branch unknown label `i({name}_k,0)` carries the
    /// spring force (displacement × k).
    ///
    /// # Errors
    ///
    /// Propagates circuit-building failures.
    pub fn build(&self, circuit: &mut Circuit, name: &str, vel: NodeId) -> Result<()> {
        let gnd = circuit.ground();
        circuit.add(Mass::new(&format!("{name}_m"), vel, gnd, self.mass))?;
        circuit.add(Spring::new(&format!("{name}_k"), vel, gnd, self.stiffness))?;
        circuit.add(Damper::new(&format!("{name}_a"), vel, gnd, self.damping))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_characteristics() {
        let r = MechanicalResonator::table4();
        assert!((r.natural_frequency() - 225.079).abs() < 0.01);
        assert!((r.damping_ratio() - 0.1414).abs() < 1e-3);
        assert!(r.damping_ratio() < 1.0, "under-critical, as the paper says");
        assert!(r.damped_frequency() < r.natural_frequency());
        assert!((r.static_deflection(2e-6) - 1e-8).abs() < 1e-12);
    }

    #[test]
    fn builds_into_circuit() {
        let r = MechanicalResonator::table4();
        let mut c = Circuit::new();
        let vel = c.mnode("vel").unwrap();
        r.build(&mut c, "res", vel).unwrap();
        assert!(c.device_index("res_m").is_some());
        assert!(c.device_index("res_k").is_some());
        assert!(c.device_index("res_a").is_some());
    }
}
