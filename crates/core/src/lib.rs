//! # mems-core — the paper's methodology
//!
//! Reproduction of the modeling methodology of Romanowicz et al.,
//! *Modeling and Simulation of Electromechanical Transducers in
//! Microsystems using an Analog Hardware Description Language*
//! (ED&TC 1997):
//!
//! - [`analogy`] — Table 1 and the force–voltage/force–current
//!   analogies;
//! - [`energy`] — the 4-step energy recipe mechanized: symbolic
//!   co-energy → differentiation → complete HDL-A model generation;
//! - [`transducers`] — the four devices of Fig. 2 with Table 2/3
//!   closed forms, generated models, and linearized equivalents;
//! - [`resonator`] / [`system`] — the Fig. 3 transducer–resonator
//!   system, buildable with the behavioral or the linearized
//!   transducer;
//! - [`experiments`] — the paper's evaluation (Tables 1–4, Figs. 5–6,
//!   the harmonic workflow, the performance comparison).
//!
//! # Example: reproduce Fig. 5's headline behaviour
//!
//! ```no_run
//! use mems_core::experiments::fig5;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let result = fig5::run(&fig5::Fig5Options::default())?;
//! let at_bias = result.row(10.0).unwrap();
//! assert!(at_bias.static_rel_err() < 0.02); // "converge perfectly"
//! let low = result.row(5.0).unwrap();
//! assert!(low.linear_over_nonlinear() > 1.0); // linear overshoots
//! let high = result.row(15.0).unwrap();
//! assert!(high.linear_over_nonlinear() < 1.0); // linear undershoots
//! # Ok(())
//! # }
//! ```

pub mod analogy;
pub mod energy;
pub mod experiments;
pub mod resonator;
pub mod system;
pub mod transducers;

pub use energy::{ElectricalKind, ElectricalStyle, EnergyTransducer};
pub use resonator::MechanicalResonator;
pub use system::{TransducerResonatorSystem, TransducerVariant};
pub use transducers::{
    ElectrodynamicVoiceCoil, ElectromagneticGap, LinearizedKind, ParallelPlateElectrostatic,
    TransverseElectrostatic,
};
