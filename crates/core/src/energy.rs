//! The paper's energy-based modeling recipe, mechanized.
//!
//! > 1. List the effort, flow and state variables for each port.
//! > 2. Express the total energy in the transducer as a sum of the
//! >    partial energies.
//! > 3. Derive the energy with respect to the state variable of each
//! >    port to obtain the respective effort variable.
//! > 4. Replace time derivatives of state variables by the
//! >    corresponding flow variables.
//!
//! [`EnergyTransducer`] holds the co-energy expression symbolically;
//! [`EnergyTransducer::derive`] performs step 3 with the symbolic
//! differentiator, and [`EnergyTransducer::to_hdl_source`] emits a
//! complete HDL-A model (step 4 appears as `integ`/`ddt` operators and
//! branch flows), generating Listing-1-style models for all four
//! transducers of Fig. 2.

use mems_hdl::ast::{
    Architecture, Block, BranchRef, Ctx, Entity, EquationStmt, Expr, GenericDecl, Module,
    ObjectDecl, ObjectKind, PinDecl, Relation, Stmt,
};
use mems_hdl::print::print_module;
use mems_hdl::span::Span;
use mems_hdl::symbolic::{diff, simplify};
use mems_hdl::{HdlError, Result};

/// How the electrical port enters the co-energy expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectricalKind {
    /// Capacitive transducer: co-energy is a function of the port
    /// *voltage* (electrostatic devices, Fig. 2a/b).
    VoltageControlled,
    /// Inductive transducer: co-energy is a function of the port
    /// *current*, realized with an `UNKNOWN` current and an implicit
    /// voltage equation (electromagnetic/electrodynamic, Fig. 2c/d).
    CurrentControlled,
}

/// How the electrical flow is emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectricalStyle {
    /// As the paper's Listing 1 writes it: `i = C(x)·ddt(v)` (or
    /// `v = L(x)·ddt(i)`), omitting the motional term.
    PaperStyle,
    /// Energetically complete: `i = ddt(q(v, x))` (or
    /// `v = ddt(λ(i, x))`), including the motional contribution.
    Full,
}

/// A two-port electromechanical transducer described by its
/// co-energy.
#[derive(Debug, Clone)]
pub struct EnergyTransducer {
    /// Entity name for the generated model.
    pub entity: String,
    /// Generic parameters (name, optional default).
    pub generics: Vec<(String, Option<f64>)>,
    /// Co-energy expression in the electrical symbol, `x`, and the
    /// generics.
    pub coenergy: Expr,
    /// Electrical port kind.
    pub electrical: ElectricalKind,
    /// Symbol used for the electrical quantity in [`Self::coenergy`]
    /// (`v` for capacitive, `i` for inductive).
    pub electrical_symbol: String,
}

/// The closed-form results of the derivation (step 3).
#[derive(Debug, Clone)]
pub struct DerivedEfforts {
    /// `∂W*/∂(v|i)` — charge (capacitive) or flux linkage (inductive).
    pub state_conjugate: Expr,
    /// The transducer force contribution, `+∂W*/∂x` in the paper's
    /// Listing-1 sign convention (the force the transducer exerts on
    /// the mechanical net; negative for gap-closing attraction).
    pub force: Expr,
}

impl EnergyTransducer {
    /// Performs the symbolic derivation (recipe step 3).
    ///
    /// # Errors
    ///
    /// Propagates symbolic-differentiation failures (unsupported
    /// operators in the co-energy).
    pub fn derive(&self) -> Result<DerivedEfforts> {
        let state_conjugate = simplify(&diff(&self.coenergy, &self.electrical_symbol)?);
        let force = simplify(&diff(&self.coenergy, "x")?);
        Ok(DerivedEfforts {
            state_conjugate,
            force,
        })
    }

    /// Generates the complete HDL-A module.
    ///
    /// # Errors
    ///
    /// Propagates derivation failures and, for [`ElectricalStyle::PaperStyle`],
    /// failure to factor `C(x) = q/v` (or `L(x) = λ/i`).
    pub fn to_hdl_module(&self, style: ElectricalStyle) -> Result<Module> {
        let derived = self.derive()?;
        let sp = Span::default();
        let entity = Entity {
            name: self.entity.clone(),
            generics: self
                .generics
                .iter()
                .map(|(name, default)| GenericDecl {
                    name: name.clone(),
                    default: default.map(Expr::num),
                    span: sp,
                })
                .collect(),
            pins: vec![
                PinDecl {
                    name: "a".into(),
                    nature: "electrical".into(),
                    span: sp,
                },
                PinDecl {
                    name: "b".into(),
                    nature: "electrical".into(),
                    span: sp,
                },
                PinDecl {
                    name: "c".into(),
                    nature: "mechanical1".into(),
                    span: sp,
                },
                PinDecl {
                    name: "d".into(),
                    nature: "mechanical1".into(),
                    span: sp,
                },
            ],
            span: sp,
        };
        let arch = match self.electrical {
            ElectricalKind::VoltageControlled => self.capacitive_arch(&derived, style)?,
            ElectricalKind::CurrentControlled => self.inductive_arch(&derived, style)?,
        };
        Ok(Module {
            entities: vec![entity],
            architectures: vec![arch],
        })
    }

    /// Generates the model source text.
    ///
    /// # Errors
    ///
    /// Same as [`Self::to_hdl_module`].
    pub fn to_hdl_source(&self, style: ElectricalStyle) -> Result<String> {
        Ok(print_module(&self.to_hdl_module(style)?))
    }

    fn capacitive_arch(
        &self,
        derived: &DerivedEfforts,
        style: ElectricalStyle,
    ) -> Result<Architecture> {
        let sp = Span::default();
        // Rename the electrical symbol to the state variable `vv`.
        let q_expr = rename(&derived.state_conjugate, &self.electrical_symbol, "vv");
        let f_expr = rename(&derived.force, &self.electrical_symbol, "vv");
        let current = match style {
            ElectricalStyle::PaperStyle => {
                // i = C(x)·ddt(v) with C = ∂q/∂v = ∂²W*/∂v², which is
                // v-free exactly when the co-energy is quadratic in v.
                let c_expr = simplify(&diff(&q_expr, "vv")?);
                if contains_ident(&c_expr, "vv") {
                    return Err(HdlError::Elab(format!(
                        "co-energy of `{}` is not quadratic in `{}`; \
                         use ElectricalStyle::Full",
                        self.entity, self.electrical_symbol
                    )));
                }
                Expr::mul(c_expr, Expr::call("ddt", vec![Expr::ident("vv")]))
            }
            ElectricalStyle::Full => Expr::call("ddt", vec![q_expr]),
        };
        let stmts = vec![
            Stmt::Assign {
                target: "vv".into(),
                value: Expr::Branch(BranchRef {
                    pin_a: "a".into(),
                    pin_b: "b".into(),
                    quantity: "v".into(),
                    span: sp,
                }),
                span: sp,
            },
            Stmt::Assign {
                target: "s".into(),
                value: Expr::Branch(BranchRef {
                    pin_a: "c".into(),
                    pin_b: "d".into(),
                    quantity: "tv".into(),
                    span: sp,
                }),
                span: sp,
            },
            Stmt::Assign {
                target: "x".into(),
                value: Expr::call("integ", vec![Expr::ident("s")]),
                span: sp,
            },
            Stmt::Contribute {
                branch: BranchRef {
                    pin_a: "a".into(),
                    pin_b: "b".into(),
                    quantity: "i".into(),
                    span: sp,
                },
                value: current,
                span: sp,
            },
            Stmt::Contribute {
                branch: BranchRef {
                    pin_a: "c".into(),
                    pin_b: "d".into(),
                    quantity: "f".into(),
                    span: sp,
                },
                value: f_expr,
                span: sp,
            },
        ];
        Ok(Architecture {
            name: "energy".into(),
            entity: self.entity.clone(),
            decls: vec![
                ObjectDecl {
                    kind: ObjectKind::Variable,
                    names: vec!["x".into()],
                    init: None,
                    span: sp,
                },
                ObjectDecl {
                    kind: ObjectKind::State,
                    names: vec!["vv".into(), "s".into()],
                    init: None,
                    span: sp,
                },
            ],
            relation: Relation {
                blocks: vec![Block::Procedural {
                    contexts: vec![Ctx::Dc, Ctx::Ac, Ctx::Transient],
                    stmts,
                    span: sp,
                }],
            },
            span: sp,
        })
    }

    fn inductive_arch(
        &self,
        derived: &DerivedEfforts,
        style: ElectricalStyle,
    ) -> Result<Architecture> {
        let sp = Span::default();
        let lambda = rename(&derived.state_conjugate, &self.electrical_symbol, "cur");
        let f_expr = rename(&derived.force, &self.electrical_symbol, "cur");
        // Voltage equation: v == ddt(λ(i, x)) (full) or, paper style,
        // v == L(x)·ddt(i) with L = ∂λ/∂i = ∂²W*/∂i².
        let v_rhs = match style {
            ElectricalStyle::Full => Expr::call("ddt", vec![lambda]),
            ElectricalStyle::PaperStyle => {
                let l_expr = simplify(&diff(&lambda, "cur")?);
                Expr::mul(l_expr, Expr::call("ddt", vec![Expr::ident("cur")]))
            }
        };
        let stmts = vec![
            Stmt::Assign {
                target: "s".into(),
                value: Expr::Branch(BranchRef {
                    pin_a: "c".into(),
                    pin_b: "d".into(),
                    quantity: "tv".into(),
                    span: sp,
                }),
                span: sp,
            },
            Stmt::Assign {
                target: "x".into(),
                value: Expr::call("integ", vec![Expr::ident("s")]),
                span: sp,
            },
            Stmt::Contribute {
                branch: BranchRef {
                    pin_a: "a".into(),
                    pin_b: "b".into(),
                    quantity: "i".into(),
                    span: sp,
                },
                value: Expr::ident("cur"),
                span: sp,
            },
            Stmt::Contribute {
                branch: BranchRef {
                    pin_a: "c".into(),
                    pin_b: "d".into(),
                    quantity: "f".into(),
                    span: sp,
                },
                value: f_expr,
                span: sp,
            },
        ];
        let equations = vec![EquationStmt {
            lhs: Expr::Branch(BranchRef {
                pin_a: "a".into(),
                pin_b: "b".into(),
                quantity: "v".into(),
                span: sp,
            }),
            rhs: v_rhs,
            span: sp,
        }];
        Ok(Architecture {
            name: "energy".into(),
            entity: self.entity.clone(),
            decls: vec![
                ObjectDecl {
                    kind: ObjectKind::Unknown,
                    names: vec!["cur".into()],
                    init: None,
                    span: sp,
                },
                ObjectDecl {
                    kind: ObjectKind::Variable,
                    names: vec!["x".into()],
                    init: None,
                    span: sp,
                },
                ObjectDecl {
                    kind: ObjectKind::State,
                    names: vec!["s".into()],
                    init: None,
                    span: sp,
                },
            ],
            relation: Relation {
                blocks: vec![
                    Block::Procedural {
                        contexts: vec![Ctx::Dc, Ctx::Ac, Ctx::Transient],
                        stmts,
                        span: sp,
                    },
                    Block::Equation {
                        contexts: vec![Ctx::Dc, Ctx::Ac, Ctx::Transient],
                        equations,
                        span: sp,
                    },
                ],
            },
            span: sp,
        })
    }
}

/// Renames every occurrence of identifier `from` to `to`.
pub fn rename(e: &Expr, from: &str, to: &str) -> Expr {
    let from = from.to_ascii_lowercase();
    match e {
        Expr::Ident(name, sp) => {
            if *name == from {
                Expr::Ident(to.to_ascii_lowercase(), *sp)
            } else {
                e.clone()
            }
        }
        Expr::Unary { op, expr, span } => Expr::Unary {
            op: *op,
            expr: Box::new(rename(expr, &from, to)),
            span: *span,
        },
        Expr::Binary { op, lhs, rhs, span } => Expr::Binary {
            op: *op,
            lhs: Box::new(rename(lhs, &from, to)),
            rhs: Box::new(rename(rhs, &from, to)),
            span: *span,
        },
        Expr::Call { name, args, span } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| rename(a, &from, to)).collect(),
            span: *span,
        },
        other => other.clone(),
    }
}

fn contains_ident(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Ident(n, _) => n == name,
        Expr::Unary { expr, .. } => contains_ident(expr, name),
        Expr::Binary { lhs, rhs, .. } => contains_ident(lhs, name) || contains_ident(rhs, name),
        Expr::Call { args, .. } => args.iter().any(|a| contains_ident(a, name)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_hdl::model::HdlModel;
    use mems_hdl::parser::parse_expr;
    use mems_hdl::symbolic::eval_closed;

    fn transverse() -> EnergyTransducer {
        EnergyTransducer {
            entity: "eletran".into(),
            generics: vec![
                ("area".into(), None),
                ("d".into(), None),
                ("er".into(), Some(1.0)),
            ],
            coenergy: parse_expr("8.8542e-12 * er * area * v * v / (2.0 * (d + x))").unwrap(),
            electrical: ElectricalKind::VoltageControlled,
            electrical_symbol: "v".into(),
        }
    }

    #[test]
    fn derivation_matches_table3_row_a() {
        let t = transverse();
        let derived = t.derive().unwrap();
        let bindings = [
            ("v", 10.0),
            ("x", 0.0),
            ("area", 1.0e-4),
            ("d", 0.15e-3),
            ("er", 1.0),
        ];
        // q = ∂W*/∂v = ε0·A·v/(d+x)
        let q = eval_closed(&derived.state_conjugate, &bindings).unwrap();
        let q_expect = 8.8542e-12 * 1e-4 * 10.0 / 0.15e-3;
        assert!((q - q_expect).abs() < q_expect * 1e-12);
        // F = ∂W*/∂x = −ε0·A·v²/(2(d+x)²) — Table 3's expression.
        let f = eval_closed(&derived.force, &bindings).unwrap();
        let f_expect = -8.8542e-12 * 1e-4 * 100.0 / (2.0 * 0.15e-3 * 0.15e-3);
        assert!((f - f_expect).abs() < f_expect.abs() * 1e-12);
    }

    #[test]
    fn generated_capacitive_model_compiles_both_styles() {
        let t = transverse();
        for style in [ElectricalStyle::PaperStyle, ElectricalStyle::Full] {
            let src = t.to_hdl_source(style).unwrap();
            let model = HdlModel::compile(&src, "eletran", None).unwrap();
            assert_eq!(model.compiled().pins.len(), 4);
            // PaperStyle: ddt(v); Full: ddt(q(v,x)).
            assert_eq!(model.compiled().n_ddt_sites, 1);
        }
    }

    #[test]
    fn paper_style_rejects_non_quadratic_energy() {
        let t = EnergyTransducer {
            entity: "cubic".into(),
            generics: vec![("k".into(), Some(1.0))],
            coenergy: parse_expr("k * v * v * v / (d0 + x)").unwrap(),
            electrical: ElectricalKind::VoltageControlled,
            electrical_symbol: "v".into(),
        };
        // d0 is undeclared, but the quadratic check fires first.
        assert!(t.to_hdl_source(ElectricalStyle::PaperStyle).is_err());
    }

    #[test]
    fn generated_inductive_model_compiles_with_dae() {
        // Fig. 2c: W* = µ0·A·N²·i²/(4(d+x)).
        let t = EnergyTransducer {
            entity: "magtran".into(),
            generics: vec![
                ("area".into(), None),
                ("d".into(), None),
                ("n".into(), None),
            ],
            coenergy: parse_expr("1.2566370614e-6 * area * n * n * i * i / (4.0 * (d + x))")
                .unwrap(),
            electrical: ElectricalKind::CurrentControlled,
            electrical_symbol: "i".into(),
        };
        let src = t.to_hdl_source(ElectricalStyle::Full).unwrap();
        let model = HdlModel::compile(&src, "magtran", None).unwrap();
        assert_eq!(model.compiled().n_unknowns, 1);
        // Force from the derivation matches Table 3 row c.
        let derived = t.derive().unwrap();
        let bindings = [
            ("i", 0.5),
            ("x", 0.0),
            ("area", 1e-6),
            ("d", 1e-4),
            ("n", 100.0),
        ];
        let f = eval_closed(&derived.force, &bindings).unwrap();
        let mu0 = 1.2566370614e-6;
        let expect = -mu0 * 1e-6 * 100.0 * 100.0 * 0.25 / (4.0 * 1e-4 * 1e-4);
        assert!((f - expect).abs() < expect.abs() * 1e-10, "{f} vs {expect}");
    }

    #[test]
    fn rename_preserves_structure() {
        let e = parse_expr("v * v + sin(v) - other").unwrap();
        let r = rename(&e, "v", "volt");
        assert!(r.structurally_eq(&parse_expr("volt * volt + sin(volt) - other").unwrap()));
        assert!(!contains_ident(&r, "v"));
        assert!(contains_ident(&r, "volt"));
    }
}
