//! The paper's evaluation, one module per table/figure (see
//! `DESIGN.md` §4 for the experiment index):
//!
//! - [`tables`] — Tables 1–4 (domains, impedances/energies, derived
//!   efforts, bias quantities);
//! - [`fig5`] — the linear-vs-behavioral transient comparison;
//! - [`fig6`] — PXT force extraction from FE fields + model roundtrip;
//! - [`harmonic`] — the harmonic-analysis → data-flow-model workflow;
//! - [`perf`] — the "factor of 10" behavioral-model slowdown.

pub mod fig5;
pub mod fig6;
pub mod harmonic;
pub mod perf;
pub mod tables;
