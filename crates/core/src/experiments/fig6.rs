//! Figure 6 reproduction: PXT extracting the electrostatic force from
//! a finite-element field solution, validating against the analytic
//! Table 3 force, then generating and round-trip-verifying an HDL-A
//! model.

use crate::transducers::TransverseElectrostatic;
use mems_pxt::codegen::poly::generate_poly_capacitance_model;
use mems_pxt::recipes::{capacitance_vs_displacement, PlateGapDut};
use mems_pxt::verify::verify_static_force;
use mems_pxt::Result;

/// Results of the Fig. 6 workflow.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// FE-extracted force at `(10 V, x = 0)` [N].
    pub force_fe: f64,
    /// Analytic Table 3 force at the same point [N].
    pub force_analytic: f64,
    /// Relative FE-vs-analytic error.
    pub force_rel_error: f64,
    /// Fit error of the generated `C(x)` polynomial model.
    pub cap_fit_error: f64,
    /// Worst force error of the generated model against the analytic
    /// transducer over the verification samples.
    pub roundtrip_error: f64,
    /// The generated HDL-A source.
    pub generated_source: String,
}

/// Runs the Fig. 6 workflow on the Table 4 device.
///
/// # Errors
///
/// Propagates FE, fitting and verification failures.
pub fn run() -> Result<Fig6Result> {
    let dut = PlateGapDut::table4();
    let analytic = TransverseElectrostatic::table4();

    // Step 1 (the figure itself): FE force at 10 V, x = 0.
    let force_fe = dut.force(10.0, 0.0)?;
    let force_analytic = analytic.force(10.0, 0.0);
    let force_rel_error = (force_fe - force_analytic).abs() / force_analytic.abs();

    // Step 2: "By repeating this procedure for different voltages and
    // displacements, a behavioral model is generated."
    let displacements: Vec<f64> = (0..9).map(|i| -2e-5 + 1e-5 * i as f64).collect();
    let cap = capacitance_vs_displacement(&dut, &displacements)?;
    let model = generate_poly_capacitance_model("pxtgen", &cap, 4, 1e-4)?;

    // Step 3: round-trip verification against the analytic transducer.
    let samples: Vec<(f64, f64, f64)> = [(5.0, 0.0), (10.0, 1e-5), (15.0, -1e-5)]
        .iter()
        .map(|&(v, x)| (v, x, analytic.force(v, x)))
        .collect();
    let roundtrip_error = verify_static_force(&model.source, "pxtgen", &samples)?;

    Ok(Fig6Result {
        force_fe,
        force_analytic,
        force_rel_error,
        cap_fit_error: model.max_rel_error,
        roundtrip_error,
        generated_source: model.source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_force_extraction_matches_table3() {
        let r = run().unwrap();
        // "the fringe field was not modeled" → the uniform-gap FE
        // solution reproduces the analytic force almost exactly.
        assert!(
            r.force_rel_error < 1e-6,
            "FE force error {}",
            r.force_rel_error
        );
        assert!((r.force_analytic + 1.9676e-6).abs() < 1e-9);
        assert!(r.cap_fit_error < 1e-4);
        assert!(r.roundtrip_error < 5e-3, "roundtrip {}", r.roundtrip_error);
        assert!(r.generated_source.contains("ENTITY pxtgen"));
    }
}
