//! The §PXT harmonic workflow: harmonic FE analysis of a cantilever,
//! rational-function fit ("a polynomial filter is fitted"), data-flow
//! HDL-A model generation, and AC round-trip verification in the
//! circuit simulator.

use mems_fem::beam::CantileverBeam;
use mems_fem::FrequencyResponse;
use mems_numerics::Complex64;
use mems_pxt::codegen::dataflow::generate_dataflow_model;
use mems_pxt::verify::verify_admittance_ac;
use mems_pxt::{fit_rational, stabilize, PxtError, Result};

/// Results of the harmonic extraction workflow.
#[derive(Debug, Clone)]
pub struct HarmonicResult {
    /// First natural frequency of the beam [Hz].
    pub f1: f64,
    /// Rational-fit relative error over the sampled response.
    pub fit_error: f64,
    /// AC verification error of the generated model in the simulator.
    pub ac_roundtrip_error: f64,
    /// Fitted model order.
    pub order: usize,
    /// Generated HDL-A source.
    pub generated_source: String,
}

/// Runs the workflow on a silicon cantilever.
///
/// # Errors
///
/// Propagates FE, fitting and verification failures.
pub fn run() -> Result<HarmonicResult> {
    // 500 µm silicon cantilever with light damping.
    let length = 500e-6_f64;
    let width = 50e-6_f64;
    let thickness = 5e-6_f64;
    let youngs = 169e9_f64;
    let rho = 2329.0_f64;
    let inertia = width * thickness.powi(3) / 12.0;
    let undamped = CantileverBeam::new(length, youngs, inertia, rho * width * thickness, 10);
    let f1 = undamped.natural_frequencies(1).map_err(PxtError::from)?[0];
    // Set mass-proportional Rayleigh damping for ζ₁ ≈ 0.1 (a gentle
    // Q ≈ 5 peak that a modest frequency grid resolves well).
    let w1 = 2.0 * std::f64::consts::PI * f1;
    let beam = undamped.with_rayleigh_damping(0.2 * w1, 0.0);

    // Harmonic FE sweep around the first mode (linear, well below the
    // second mode at ≈ 6.27·f1).
    let freqs: Vec<f64> = (0..60)
        .map(|i| f1 * (0.2 + 1.8 * i as f64 / 59.0))
        .collect();
    let h = beam.harmonic_tip_response(&freqs).map_err(PxtError::from)?;
    let response = FrequencyResponse::new(freqs.clone(), h);

    // Fit a second-order rational function; the degree-2 numerator
    // absorbs the quasi-static contribution of the higher modes.
    let fit = fit_rational(&response, 2, 2)?;
    let fit = stabilize(&fit, &response)?;

    // Generate the data-flow model and verify it by AC analysis.
    let model = generate_dataflow_model("beamtf", &fit)?;
    let reference: Vec<Complex64> = freqs.iter().map(|&f| fit.eval(f)).collect();
    let ac_roundtrip_error = verify_admittance_ac(&model.source, "beamtf", &freqs, &reference)?;

    Ok(HarmonicResult {
        f1,
        fit_error: fit.max_rel_error,
        ac_roundtrip_error,
        order: model.order,
        generated_source: model.source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_workflow_round_trips() {
        let r = run().unwrap();
        assert!(r.f1 > 1e3, "f1 = {}", r.f1);
        assert_eq!(r.order, 2);
        // Single mode dominates near resonance: the fit is tight.
        assert!(r.fit_error < 0.05, "fit error {}", r.fit_error);
        // The generated model reproduces the fitted response in AC.
        assert!(
            r.ac_roundtrip_error < 1e-6,
            "AC roundtrip {}",
            r.ac_roundtrip_error
        );
        assert!(r.generated_source.contains("UNKNOWN x1, x2"));
    }
}
