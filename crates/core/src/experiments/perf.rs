//! The paper's performance observation: "The drawback is a strong
//! penalty in simulation performance (a factor of 10 was observed)"
//! for behavioral HDL models versus native equivalent-circuit
//! elements.
//!
//! This experiment times the same Fig. 3 transient with (a) the
//! interpreted behavioral HDL-A transducer and (b) the native
//! linearized equivalent circuit, under identical fixed-step
//! trapezoidal integration so both do the same number of steps.

use crate::energy::ElectricalStyle;
use crate::system::{TransducerResonatorSystem, TransducerVariant};
use crate::transducers::LinearizedKind;
use mems_spice::analysis::transient::{run, TranOptions};
use mems_spice::solver::SimOptions;
use mems_spice::Result;
use std::time::Instant;

/// Timing results.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Wall time of the behavioral-model run [s].
    pub behavioral_seconds: f64,
    /// Wall time of the native equivalent-circuit run [s].
    pub native_seconds: f64,
    /// Slowdown factor (paper observed ≈ 10).
    pub slowdown: f64,
    /// Accepted steps (identical for both by construction).
    pub steps: usize,
}

/// Runs the comparison: `repeats` timed transients per variant over
/// `t_stop` with a fixed step `h`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_comparison(t_stop: f64, h: f64, repeats: usize) -> Result<PerfResult> {
    let sys = TransducerResonatorSystem::table4(TransducerResonatorSystem::fig5_pulse(10.0));
    let sim = SimOptions::default();
    let opts = TranOptions::fixed_step(t_stop, h);

    // Warm-up + build outside the timed region.
    let mut behavioral_seconds = f64::INFINITY;
    let mut steps = 0;
    for _ in 0..repeats {
        let mut ckt = sys.build(TransducerVariant::Behavioral(ElectricalStyle::PaperStyle))?;
        let start = Instant::now();
        let res = run(&mut ckt, &opts, &sim)?;
        behavioral_seconds = behavioral_seconds.min(start.elapsed().as_secs_f64());
        steps = res.time.len();
    }
    let mut native_seconds = f64::INFINITY;
    for _ in 0..repeats {
        let mut ckt = sys.build(TransducerVariant::Linearized(LinearizedKind::Secant))?;
        let start = Instant::now();
        run(&mut ckt, &opts, &sim)?;
        native_seconds = native_seconds.min(start.elapsed().as_secs_f64());
    }
    Ok(PerfResult {
        behavioral_seconds,
        native_seconds,
        slowdown: behavioral_seconds / native_seconds,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavioral_model_is_slower_than_native() {
        // A short run is enough to see the interpretation overhead.
        let r = run_comparison(10e-3, 10e-6, 2).unwrap();
        assert!(r.steps > 500);
        assert!(
            r.slowdown > 1.2,
            "behavioral {} s vs native {} s (x{:.1})",
            r.behavioral_seconds,
            r.native_seconds,
            r.slowdown
        );
    }
}
