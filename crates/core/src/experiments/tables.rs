//! Tables 1–4 reproduction: generalized variables, transducer
//! impedances/energies, derived efforts, and the bias quantities of
//! the transducer–resonator system.

use crate::analogy;
use crate::transducers::{
    ElectrodynamicVoiceCoil, ElectromagneticGap, LinearizedKind, ParallelPlateElectrostatic,
    TransverseElectrostatic,
};
use mems_hdl::symbolic::eval_closed;
use mems_numerics::Result;

/// Table 1 rendering (delegates to [`crate::analogy`]).
pub fn table1_text() -> String {
    analogy::render_table1()
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Transducer label (paper's a–d).
    pub label: &'static str,
    /// Impedance description.
    pub impedance_desc: String,
    /// Impedance value at the reference operating point.
    pub impedance_value: f64,
    /// Internal (co-)energy value at the reference operating point.
    pub energy_value: f64,
}

/// Computes Table 2 at reference operating points (Table 4 values for
/// the transverse device; the module examples for the others).
pub fn table2() -> Vec<Table2Row> {
    let a = TransverseElectrostatic::table4();
    let b = ParallelPlateElectrostatic::example();
    let c = ElectromagneticGap::example();
    let d = ElectrodynamicVoiceCoil::example();
    vec![
        Table2Row {
            label: "a) transverse electrostatic",
            impedance_desc: "C = e0·er·A/(d+x) [F]".into(),
            impedance_value: a.capacitance(0.0),
            energy_value: a.coenergy(10.0, 0.0),
        },
        Table2Row {
            label: "b) parallel electrostatic",
            impedance_desc: "C = e0·er·h·(l−x)/d [F]".into(),
            impedance_value: b.capacitance(0.0),
            energy_value: b.coenergy(10.0, 0.0),
        },
        Table2Row {
            label: "c) electromagnetic",
            impedance_desc: "L = µ0·A·N²/(2(d+x)) [H]".into(),
            impedance_value: c.inductance(0.0),
            energy_value: c.coenergy(0.1, 0.0),
        },
        Table2Row {
            label: "d) electrodynamic",
            impedance_desc: "L = µ0·N·r/2 [H]".into(),
            impedance_value: d.inductance(),
            energy_value: d.energy(0.1),
        },
    ]
}

/// One row of the Table 3 verification: the symbolic derivative of the
/// Table 2 energy versus the closed-form effort expression.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Transducer label.
    pub label: &'static str,
    /// Force from the energy derivation [N].
    pub force_derived: f64,
    /// Force from the closed form (Table 3) [N].
    pub force_closed: f64,
    /// Relative error between the two.
    pub rel_error: f64,
}

/// Verifies Table 3: derives every transducer's force symbolically
/// from its energy and compares with the closed forms.
///
/// # Errors
///
/// Propagates symbolic evaluation failures.
pub fn table3() -> Result<Vec<Table3Row>> {
    let mut rows = Vec::new();
    let a = TransverseElectrostatic::table4();
    {
        let derived = a
            .energy_model()
            .derive()
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let bindings = [
            ("v", 10.0),
            ("x", 0.0),
            ("area", a.area),
            ("d", a.gap),
            ("er", a.eps_r),
        ];
        let fd = eval_closed(&derived.force, &bindings)
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let fc = a.force(10.0, 0.0);
        rows.push(Table3Row {
            label: "a) transverse electrostatic",
            force_derived: fd,
            force_closed: fc,
            rel_error: (fd - fc).abs() / fc.abs(),
        });
    }
    let b = ParallelPlateElectrostatic::example();
    {
        let derived = b
            .energy_model()
            .derive()
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let bindings = [
            ("v", 10.0),
            ("x", 1e-4),
            ("h", b.height),
            ("l", b.length),
            ("d", b.gap),
            ("er", b.eps_r),
        ];
        let fd = eval_closed(&derived.force, &bindings)
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let fc = b.force(10.0, 1e-4);
        rows.push(Table3Row {
            label: "b) parallel electrostatic",
            force_derived: fd,
            force_closed: fc,
            rel_error: (fd - fc).abs() / fc.abs(),
        });
    }
    let c = ElectromagneticGap::example();
    {
        let derived = c
            .energy_model()
            .derive()
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let bindings = [
            ("i", 0.1),
            ("x", 0.0),
            ("area", c.area),
            ("d", c.gap),
            ("n", c.turns),
        ];
        let fd = eval_closed(&derived.force, &bindings)
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let fc = c.force(0.1, 0.0);
        rows.push(Table3Row {
            label: "c) electromagnetic",
            force_derived: fd,
            force_closed: fc,
            rel_error: (fd - fc).abs() / fc.abs(),
        });
    }
    let d = ElectrodynamicVoiceCoil::example();
    {
        let derived = d
            .energy_model()
            .derive()
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let bindings = [
            ("i", 0.1),
            ("x", 0.0),
            ("n", d.turns),
            ("r", d.radius),
            ("b", d.b_field),
        ];
        let fd = eval_closed(&derived.force, &bindings)
            .map_err(|e| mems_numerics::NumericsError::InvalidInput(e.to_string()))?;
        let fc = d.force(0.1);
        rows.push(Table3Row {
            label: "d) electrodynamic",
            force_derived: fd,
            force_closed: fc,
            rel_error: (fd - fc).abs() / fc.abs(),
        });
    }
    Ok(rows)
}

/// The Table 4 derived quantities: paper values vs computed.
#[derive(Debug, Clone)]
pub struct Table4Derived {
    /// Computed static displacement `x₀` [m] (paper: 1.0e-8).
    pub x0: f64,
    /// Computed bias capacitance `C₀` [F] (paper: 5.8637e-12).
    pub c0: f64,
    /// Secant transduction factor [N/V].
    pub gamma_secant: f64,
    /// Tangent transduction factor [N/V] (paper prints 3.34675e-9,
    /// inconsistent with its own parameters; see EXPERIMENTS.md).
    pub gamma_tangent: f64,
    /// Bias force [N].
    pub f0: f64,
}

/// Paper-printed values for comparison.
pub struct Table4Paper;

impl Table4Paper {
    /// Paper's `x0`.
    pub const X0: f64 = 1.0e-8;
    /// Paper's `C0`.
    pub const C0: f64 = 5.8637e-12;
    /// Paper's printed Γ.
    pub const GAMMA: f64 = 3.34675e-9;
}

/// Computes the Table 4 derived quantities from the table's input
/// parameters.
///
/// # Errors
///
/// Propagates the static-equilibrium solve.
pub fn table4() -> Result<Table4Derived> {
    let t = TransverseElectrostatic::table4();
    let x0 = t.static_displacement(10.0, 200.0)?;
    let lin = t.linearized(10.0, x0, LinearizedKind::Secant);
    Ok(Table4Derived {
        x0,
        c0: lin.c0,
        gamma_secant: lin.gamma_secant,
        gamma_tangent: lin.gamma_tangent,
        f0: lin.f0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders() {
        let t = table1_text();
        assert!(t.contains("electrical"));
        assert!(t.contains("hydraulic"));
    }

    #[test]
    fn table2_values_match_closed_forms() {
        let rows = table2();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].impedance_value - 5.9028e-12).abs() < 1e-15);
        // Energy = ½CV² consistency on every capacitive/inductive row.
        assert!((rows[0].energy_value - 0.5 * rows[0].impedance_value * 100.0).abs() < 1e-22);
        assert!((rows[2].energy_value - 0.5 * rows[2].impedance_value * 0.01).abs() < 1e-18);
    }

    #[test]
    fn table3_derivations_are_exact() {
        for row in table3().unwrap() {
            assert!(
                row.rel_error < 1e-10,
                "{}: rel error {}",
                row.label,
                row.rel_error
            );
        }
    }

    #[test]
    fn table4_derived_quantities() {
        let d = table4().unwrap();
        // x0 matches the paper.
        assert!((d.x0 - Table4Paper::X0).abs() < 2e-10);
        // C0 close to the paper's print (0.7 % discrepancy documented).
        assert!((d.c0 - Table4Paper::C0).abs() / Table4Paper::C0 < 0.01);
        // The printed Γ is *not* reproduced by the formula — document,
        // don't hide: both our factors differ from it by >50×.
        assert!(d.gamma_tangent / Table4Paper::GAMMA > 50.0);
        assert!((d.gamma_tangent - 3.9345e-7).abs() < 1e-10);
        // Secant factor gives the bias force exactly.
        assert!((d.gamma_secant * 10.0 + d.f0).abs() < d.f0.abs() * 1e-9);
    }
}
