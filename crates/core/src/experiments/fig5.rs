//! Figure 5 reproduction: transient comparison of the linearized
//! equivalent circuit against the behavioral HDL-A model for 5, 10
//! and 15 V excitation pulses.
//!
//! Expected shape (paper): "The displacements converge perfectly for
//! a quasi-static load of 10 V …, which was the linearization point.
//! For a lower exciting voltage (5 V), the linear model overshoots
//! …, and undershoots for a greater voltage (15 V)."

use crate::energy::ElectricalStyle;
use crate::system::{TransducerResonatorSystem, TransducerVariant};
use crate::transducers::LinearizedKind;
use mems_numerics::stats::settled_value;
use mems_spice::solver::SimOptions;
use mems_spice::{Result, Waveform};

/// Options for the Fig. 5 run.
#[derive(Debug, Clone)]
pub struct Fig5Options {
    /// Pulse levels [V] (paper: 5, 10, 15).
    pub levels: Vec<f64>,
    /// Simulation horizon per level [s].
    pub t_stop: f64,
    /// Linearization flavour (see `DESIGN.md` §6; `Secant` reproduces
    /// the figure's described over/undershoot pattern in the settled
    /// displacements).
    pub linearized: LinearizedKind,
    /// Electrical style of the behavioral model.
    pub style: ElectricalStyle,
}

impl Default for Fig5Options {
    fn default() -> Self {
        Fig5Options {
            levels: vec![5.0, 10.0, 15.0],
            t_stop: 90e-3,
            linearized: LinearizedKind::Secant,
            style: ElectricalStyle::PaperStyle,
        }
    }
}

impl Fig5Options {
    /// A faster variant for doc tests and smoke tests.
    pub fn fast() -> Self {
        Fig5Options {
            t_stop: 50e-3,
            ..Fig5Options::default()
        }
    }
}

/// One level of the comparison.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Pulse level [V].
    pub level: f64,
    /// Settled displacement of the behavioral (non-linear) model [m].
    pub x_nonlinear: f64,
    /// Settled displacement of the linearized model [m].
    pub x_linear: f64,
    /// Peak displacement of the behavioral model [m].
    pub peak_nonlinear: f64,
    /// Peak displacement of the linearized model [m].
    pub peak_linear: f64,
    /// Behavioral trace (time, x).
    pub trace_nonlinear: (Vec<f64>, Vec<f64>),
    /// Linearized trace (time, x).
    pub trace_linear: (Vec<f64>, Vec<f64>),
}

impl Fig5Row {
    /// Relative settled-displacement error of the linear model.
    pub fn static_rel_err(&self) -> f64 {
        (self.x_linear - self.x_nonlinear).abs() / self.x_nonlinear.abs().max(1e-300)
    }

    /// Ratio `x_linear / x_nonlinear` (> 1 = linear overshoots).
    pub fn linear_over_nonlinear(&self) -> f64 {
        self.x_linear / self.x_nonlinear
    }
}

/// The full Fig. 5 result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One row per level.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// Looks up the row for a level.
    pub fn row(&self, level: f64) -> Option<&Fig5Row> {
        self.rows.iter().find(|r| (r.level - level).abs() < 1e-9)
    }

    /// Renders the comparison as a Markdown-ish table (used by the
    /// bench and EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut out = String::from("level [V]  x_nonlinear [m]  x_linear [m]   lin/nl   verdict\n");
        for r in &self.rows {
            let ratio = r.linear_over_nonlinear();
            let verdict = if (ratio - 1.0).abs() < 0.05 {
                "match"
            } else if ratio > 1.0 {
                "linear overshoots"
            } else {
                "linear undershoots"
            };
            out.push_str(&format!(
                "{:>8.1}   {:>14.6e}  {:>13.6e}  {:>6.3}  {}\n",
                r.level, r.x_nonlinear, r.x_linear, ratio, verdict
            ));
        }
        out
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run(opts: &Fig5Options) -> Result<Fig5Result> {
    let sim = SimOptions::default();
    let mut rows = Vec::with_capacity(opts.levels.len());
    for &level in &opts.levels {
        let sys = TransducerResonatorSystem::table4(TransducerResonatorSystem::fig5_pulse(level));
        let nl = sys.simulate(TransducerVariant::Behavioral(opts.style), opts.t_stop, &sim)?;
        let lin = sys.simulate(
            TransducerVariant::Linearized(opts.linearized),
            opts.t_stop,
            &sim,
        )?;
        let x_nonlinear = settled_value(&nl.x, 0.05);
        let x_linear = settled_value(&lin.x, 0.05);
        let peak = |xs: &[f64]| xs.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        rows.push(Fig5Row {
            level,
            x_nonlinear,
            x_linear,
            peak_nonlinear: peak(&nl.x),
            peak_linear: peak(&lin.x),
            trace_nonlinear: (nl.time, nl.x),
            trace_linear: (lin.time, lin.x),
        });
    }
    Ok(Fig5Result { rows })
}

/// Builds the paper's single-timeline drive: three consecutive pulses
/// at 5, 10 and 15 V over 0.18 s (as the upper plot of Fig. 5 shows).
pub fn paper_timeline_drive() -> Waveform {
    // Each pulse: 10 ms rise, 30 ms top, 10 ms fall, 10 ms rest.
    let mut pts = vec![(0.0, 0.0)];
    let mut t = 5e-3;
    for level in [5.0, 10.0, 15.0] {
        pts.push((t, 0.0));
        pts.push((t + 10e-3, level));
        pts.push((t + 40e-3, level));
        pts.push((t + 50e-3, 0.0));
        t += 55e-3;
    }
    Waveform::Pwl(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let result = run(&Fig5Options::default()).unwrap();
        // 10 V: perfect convergence at the linearization point.
        let r10 = result.row(10.0).unwrap();
        assert!(
            r10.static_rel_err() < 0.02,
            "10 V mismatch: {}",
            r10.static_rel_err()
        );
        // 5 V: linear overshoots (secant model gives 2× settled).
        let r5 = result.row(5.0).unwrap();
        assert!(
            r5.linear_over_nonlinear() > 1.5,
            "5 V: lin/nl = {}",
            r5.linear_over_nonlinear()
        );
        // 15 V: linear undershoots (2/3 of nonlinear).
        let r15 = result.row(15.0).unwrap();
        assert!(
            r15.linear_over_nonlinear() < 0.75,
            "15 V: lin/nl = {}",
            r15.linear_over_nonlinear()
        );
        // Quantitative: settled ratios follow V²/V-scaling: 1/2, 1, 3/2
        // for linear vs 1/4, 1, 9/4 for nonlinear (up to gap change).
        assert!((r5.linear_over_nonlinear() - 2.0).abs() < 0.1);
        assert!((r15.linear_over_nonlinear() - 2.0 / 3.0).abs() < 0.05);
        // The table renders all three verdicts.
        let table = result.render();
        assert!(table.contains("match"));
        assert!(table.contains("overshoots"));
        assert!(table.contains("undershoots"));
    }

    #[test]
    fn paper_timeline_covers_three_pulses() {
        let w = paper_timeline_drive();
        assert_eq!(w.at(0.0), 0.0);
        assert!((w.at(30e-3) - 5.0).abs() < 1e-12);
        assert!((w.at(85e-3) - 10.0).abs() < 1e-12);
        assert!((w.at(140e-3) - 15.0).abs() < 1e-12);
        assert_eq!(w.at(0.18), 0.0);
    }
}
